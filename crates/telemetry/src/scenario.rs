//! Scripted facility scenario packs.
//!
//! A [`ScenarioPack`] is a deterministic script of operational
//! disturbances — set-point changes, actuator events, workload bursts,
//! calibration faults — replayed against a seeded
//! [`TelemetryGenerator`]. Packs are the test substrate for the online
//! detectors: each standard pack has a known disturbance window, and the
//! integration suite pins the alerts it must raise as golden
//! `expected_alerts` fixtures.
//!
//! Determinism contract: for a fixed pack and seed, the emitted batch
//! stream is byte-for-byte reproducible. Scripted actions are RNG-free
//! (they never consume generator entropy), so a pack perturbs *what the
//! facility does*, not the noise stream it is observed through.

use crate::error::TelemetryError;
use crate::generator::{TelemetryBatch, TelemetryGenerator};
use crate::jobs::{ApplicationArchetype, Job};
use crate::system::SystemModel;

/// The four standard facility scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScenarioKind {
    /// Coolant supply set point excursion: +6.5 C for ~2.5 minutes.
    CoolingExcursion,
    /// Facility power-cap event clamping every node mid-run.
    PowerCapEvent,
    /// A burst of scripted jobs saturating the machine at once.
    JobStorm,
    /// A bad firmware rollout skewing one sensor on part of the fleet,
    /// drifting worse over time.
    SensorFirmwareSkew,
}

impl ScenarioKind {
    /// All standard scenarios, in canonical order.
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::CoolingExcursion,
        ScenarioKind::PowerCapEvent,
        ScenarioKind::JobStorm,
        ScenarioKind::SensorFirmwareSkew,
    ];

    /// Stable kebab-case name (CLI flags, fixture file names).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::CoolingExcursion => "cooling-excursion",
            ScenarioKind::PowerCapEvent => "power-cap",
            ScenarioKind::JobStorm => "job-storm",
            ScenarioKind::SensorFirmwareSkew => "firmware-skew",
        }
    }

    /// Parse a scenario name; unknown names are an error, not a panic.
    pub fn from_name(name: &str) -> Result<ScenarioKind, TelemetryError> {
        ScenarioKind::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| TelemetryError::InvalidConfig(format!("unknown scenario {name:?}")))
    }
}

/// One scripted action against the running generator.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioAction {
    /// Move the coolant supply set point (C).
    SetCoolantSupplyC(f64),
    /// Set or clear the per-node power cap (W).
    SetPowerCapW(Option<f64>),
    /// Submit `count` identical scripted jobs.
    SubmitJobs {
        /// How many jobs to queue at once.
        count: u32,
        /// Nodes each job requests.
        nodes_each: usize,
        /// Utilization shape the jobs run.
        archetype: ApplicationArchetype,
        /// Wall time of each job (ms).
        duration_ms: i64,
    },
    /// Apply a calibration bias to `sensor` on nodes `node_lo..node_hi`.
    SetSensorScale {
        /// Catalog sensor name.
        sensor: String,
        /// First biased node (inclusive).
        node_lo: u32,
        /// One past the last biased node (exclusive).
        node_hi: u32,
        /// Multiplicative bias (absolute, not compounding).
        scale: f64,
    },
}

/// A scripted action bound to the tick it fires before.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStep {
    /// Tick index (0-based) the action applies ahead of.
    pub at_tick: u32,
    /// What happens.
    pub action: ScenarioAction,
}

/// A deterministic scenario script over a reference system.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPack {
    kind: ScenarioKind,
    ticks: u32,
    script: Vec<ScenarioStep>,
    /// Tick range `[lo, hi)` in which the disturbance is live — the
    /// window detectors are expected to fire inside.
    disturbance: (u32, u32),
}

/// Length of every standard pack, in 1 s ticks (10 simulated minutes —
/// 40 closed 15 s windows).
pub const STANDARD_TICKS: u32 = 600;

impl ScenarioPack {
    /// The standard script for `kind` (see module docs for the shapes).
    pub fn standard(kind: ScenarioKind) -> ScenarioPack {
        let step = |at_tick: u32, action: ScenarioAction| ScenarioStep { at_tick, action };
        let (script, disturbance) = match kind {
            ScenarioKind::CoolingExcursion => (
                vec![
                    step(300, ScenarioAction::SetCoolantSupplyC(27.5)),
                    step(450, ScenarioAction::SetCoolantSupplyC(21.0)),
                ],
                (300, 470),
            ),
            ScenarioKind::PowerCapEvent => (
                vec![
                    // Sustained near-peak load so the cap has bite.
                    // Single-node jobs so the burst starts even when the
                    // background workload already holds part of the
                    // machine (per-node power peaks the same either way).
                    step(
                        2,
                        ScenarioAction::SubmitJobs {
                            count: 4,
                            nodes_each: 1,
                            archetype: ApplicationArchetype::Hpl,
                            duration_ms: 560_000,
                        },
                    ),
                    // The cap lands late enough that online detectors'
                    // rolling statistics have re-converged on the loaded
                    // baseline after the job-start power step.
                    step(420, ScenarioAction::SetPowerCapW(Some(1_100.0))),
                    step(545, ScenarioAction::SetPowerCapW(None)),
                ],
                (420, 565),
            ),
            ScenarioKind::JobStorm => (
                vec![step(
                    300,
                    ScenarioAction::SubmitJobs {
                        count: 8,
                        nodes_each: 1,
                        archetype: ApplicationArchetype::DlTraining,
                        duration_ms: 150_000,
                    },
                )],
                (300, 480),
            ),
            ScenarioKind::SensorFirmwareSkew => (
                vec![
                    step(240, skew("node_inlet_temp_c", 1.03)),
                    step(300, skew("node_inlet_temp_c", 1.05)),
                    step(360, skew("node_inlet_temp_c", 1.08)),
                    step(420, skew("node_inlet_temp_c", 1.10)),
                ],
                (240, 600),
            ),
        };
        ScenarioPack {
            kind,
            ticks: STANDARD_TICKS,
            script,
            disturbance,
        }
    }

    /// A custom pack. The script is sorted by tick at start time;
    /// actions are validated eagerly against the target system.
    pub fn custom(
        kind: ScenarioKind,
        ticks: u32,
        script: Vec<ScenarioStep>,
        disturbance: (u32, u32),
    ) -> ScenarioPack {
        ScenarioPack {
            kind,
            ticks,
            script,
            disturbance,
        }
    }

    /// Which scenario this pack scripts.
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// Stable scenario name.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Total ticks the pack runs for.
    pub fn ticks(&self) -> u32 {
        self.ticks
    }

    /// Tick range `[lo, hi)` the disturbance is live in.
    pub fn disturbance_ticks(&self) -> (u32, u32) {
        self.disturbance
    }

    /// Begin a deterministic run of this pack on the tiny reference
    /// system. Every scripted action is validated eagerly — a pack that
    /// names an unknown sensor or an impossible node range fails here,
    /// not half way through a run.
    pub fn start(&self, seed: u64) -> Result<ScenarioRun, TelemetryError> {
        self.start_on(SystemModel::tiny(), seed)
    }

    /// Begin a run against an explicit system model.
    pub fn start_on(&self, system: SystemModel, seed: u64) -> Result<ScenarioRun, TelemetryError> {
        let gen = TelemetryGenerator::new(system, seed);
        for s in &self.script {
            if s.at_tick >= self.ticks {
                return Err(TelemetryError::InvalidConfig(format!(
                    "step at tick {} beyond pack length {}",
                    s.at_tick, self.ticks
                )));
            }
            match &s.action {
                ScenarioAction::SetCoolantSupplyC(c) => {
                    if !c.is_finite() {
                        return Err(TelemetryError::InvalidConfig(format!(
                            "coolant set point must be finite, got {c}"
                        )));
                    }
                }
                ScenarioAction::SetPowerCapW(cap) => {
                    if let Some(c) = cap {
                        if !c.is_finite() || *c <= 0.0 {
                            return Err(TelemetryError::InvalidConfig(format!(
                                "power cap must be finite and > 0 W, got {c}"
                            )));
                        }
                    }
                }
                ScenarioAction::SubmitJobs {
                    count,
                    nodes_each,
                    duration_ms,
                    ..
                } => {
                    if *count == 0
                        || *nodes_each == 0
                        || *nodes_each > gen.system().node_count() as usize
                        || *duration_ms <= 0
                    {
                        return Err(TelemetryError::InvalidConfig(format!(
                            "scripted burst of {count} x {nodes_each}-node jobs \
                             ({duration_ms} ms) invalid for this system"
                        )));
                    }
                }
                ScenarioAction::SetSensorScale {
                    sensor,
                    node_lo,
                    node_hi,
                    scale,
                } => {
                    gen.catalog().require(sensor)?;
                    if *node_lo >= *node_hi
                        || *node_hi > gen.system().node_count()
                        || !scale.is_finite()
                        || *scale <= 0.0
                    {
                        return Err(TelemetryError::InvalidConfig(format!(
                            "bias {sensor}[{node_lo}..{node_hi}] x{scale} invalid"
                        )));
                    }
                }
            }
        }
        let mut script = self.script.clone();
        script.sort_by_key(|s| s.at_tick);
        Ok(ScenarioRun {
            gen,
            script,
            cursor: 0,
            tick: 0,
            ticks: self.ticks,
            kind: self.kind,
            disturbance: self.disturbance,
        })
    }
}

fn skew(sensor: &str, scale: f64) -> ScenarioAction {
    ScenarioAction::SetSensorScale {
        sensor: sensor.to_string(),
        node_lo: 0,
        node_hi: 2,
        scale,
    }
}

/// An in-progress scenario run: a generator plus the script cursor.
pub struct ScenarioRun {
    gen: TelemetryGenerator,
    script: Vec<ScenarioStep>,
    cursor: usize,
    tick: u32,
    ticks: u32,
    kind: ScenarioKind,
    disturbance: (u32, u32),
}

impl ScenarioRun {
    /// Scenario being run.
    pub fn kind(&self) -> ScenarioKind {
        self.kind
    }

    /// The underlying generator (catalog, system, scheduler access).
    pub fn generator(&self) -> &TelemetryGenerator {
        &self.gen
    }

    /// Ticks emitted so far.
    pub fn tick(&self) -> u32 {
        self.tick
    }

    /// Total ticks the pack runs for.
    pub fn ticks(&self) -> u32 {
        self.ticks
    }

    /// The disturbance window in event-time milliseconds `[lo, hi)`.
    pub fn disturbance_ms(&self) -> (i64, i64) {
        let (lo, hi) = self.disturbance;
        (i64::from(lo) * 1_000, i64::from(hi) * 1_000)
    }

    /// Apply any due scripted actions, then advance the generator one
    /// tick. Script application errors surface here (they are already
    /// excluded for packs validated by [`ScenarioPack::start`]).
    pub fn next_batch(&mut self) -> Result<TelemetryBatch, TelemetryError> {
        while self.cursor < self.script.len() && self.script[self.cursor].at_tick <= self.tick {
            let action = self.script[self.cursor].action.clone();
            self.cursor += 1;
            match action {
                ScenarioAction::SetCoolantSupplyC(c) => self.gen.set_coolant_supply_c(c),
                ScenarioAction::SetPowerCapW(cap) => self.gen.set_power_cap_w(cap)?,
                ScenarioAction::SubmitJobs {
                    count,
                    nodes_each,
                    archetype,
                    duration_ms,
                } => {
                    for _ in 0..count {
                        self.gen.submit_job(nodes_each, archetype, duration_ms)?;
                    }
                }
                ScenarioAction::SetSensorScale {
                    sensor,
                    node_lo,
                    node_hi,
                    scale,
                } => self
                    .gen
                    .set_sensor_scale(&sensor, node_lo, node_hi, scale)?,
            }
        }
        self.tick += 1;
        Ok(self.gen.next_batch())
    }

    /// Run the remaining ticks and collect the batches.
    pub fn run_to_end(&mut self) -> Result<Vec<TelemetryBatch>, TelemetryError> {
        let mut out = Vec::with_capacity((self.ticks.saturating_sub(self.tick)) as usize);
        while self.tick < self.ticks {
            out.push(self.next_batch()?);
        }
        Ok(out)
    }

    /// Every job the run has seen — completed then running, by id.
    /// (The twin replays these against the measured power series.)
    pub fn jobs(&self) -> Vec<Job> {
        let sched = self.gen.scheduler();
        let mut jobs: Vec<Job> = sched.completed().to_vec();
        jobs.extend(sched.running().cloned());
        jobs.sort_by_key(|j| j.id);
        jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Quality;

    #[test]
    fn standard_packs_run_deterministically() -> Result<(), TelemetryError> {
        for kind in ScenarioKind::ALL {
            let pack = ScenarioPack::standard(kind);
            let a = pack.start(17)?.run_to_end()?;
            let b = pack.start(17)?.run_to_end()?;
            assert_eq!(a, b, "{} not reproducible", kind.name());
            assert_eq!(a.len(), STANDARD_TICKS as usize);
            let c = pack.start(18)?.run_to_end()?;
            assert_ne!(a, c, "{} ignores its seed", kind.name());
        }
        Ok(())
    }

    #[test]
    fn names_round_trip_and_unknown_is_error() {
        for kind in ScenarioKind::ALL {
            assert_eq!(ScenarioKind::from_name(kind.name()).unwrap(), kind);
        }
        assert!(matches!(
            ScenarioKind::from_name("meteor-strike"),
            Err(TelemetryError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_packs_fail_eagerly_at_start() {
        let bad_sensor = ScenarioPack::custom(
            ScenarioKind::SensorFirmwareSkew,
            100,
            vec![ScenarioStep {
                at_tick: 10,
                action: ScenarioAction::SetSensorScale {
                    sensor: "node_powr_w".into(),
                    node_lo: 0,
                    node_hi: 2,
                    scale: 1.1,
                },
            }],
            (10, 100),
        );
        assert!(matches!(
            bad_sensor.start(1),
            Err(TelemetryError::UnknownSensor(_))
        ));
        let late_step = ScenarioPack::custom(
            ScenarioKind::JobStorm,
            100,
            vec![ScenarioStep {
                at_tick: 100,
                action: ScenarioAction::SetCoolantSupplyC(25.0),
            }],
            (0, 100),
        );
        assert!(matches!(
            late_step.start(1),
            Err(TelemetryError::InvalidConfig(_))
        ));
        let oversubscribed = ScenarioPack::custom(
            ScenarioKind::JobStorm,
            100,
            vec![ScenarioStep {
                at_tick: 1,
                action: ScenarioAction::SubmitJobs {
                    count: 1,
                    nodes_each: 9_999,
                    archetype: ApplicationArchetype::Debug,
                    duration_ms: 60_000,
                },
            }],
            (0, 100),
        );
        assert!(matches!(
            oversubscribed.start(1),
            Err(TelemetryError::InvalidConfig(_))
        ));
    }

    #[test]
    fn cooling_excursion_moves_thermal_telemetry() -> Result<(), TelemetryError> {
        let pack = ScenarioPack::standard(ScenarioKind::CoolingExcursion);
        let mut run = pack.start(7)?;
        let inlet = run.generator().catalog().sensor_id("node_inlet_temp_c")?;
        let mut before = Vec::new();
        let mut during = Vec::new();
        let (lo_ms, hi_ms) = run.disturbance_ms();
        for batch in run.run_to_end()? {
            for o in batch.observations {
                if o.sensor == inlet && o.quality == Quality::Good {
                    if batch.ts_ms <= lo_ms {
                        before.push(o.value);
                    } else if batch.ts_ms > lo_ms + 10_000 && batch.ts_ms <= hi_ms - 10_000 {
                        during.push(o.value);
                    }
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&during) > mean(&before) + 5.0,
            "excursion invisible: before {:.2} during {:.2}",
            mean(&before),
            mean(&during)
        );
        Ok(())
    }

    #[test]
    fn power_cap_clamps_during_event_window() -> Result<(), TelemetryError> {
        let pack = ScenarioPack::standard(ScenarioKind::PowerCapEvent);
        let mut run = pack.start(7)?;
        let power = run.generator().catalog().sensor_id("node_power_w")?;
        let (lo_ms, hi_ms) = run.disturbance_ms();
        let mut peak_before = 0.0f64;
        let mut peak_during = 0.0f64;
        for batch in run.run_to_end()? {
            for o in batch.observations {
                if o.sensor == power && o.quality == Quality::Good {
                    if batch.ts_ms > 200_000 && batch.ts_ms <= lo_ms {
                        peak_before = peak_before.max(o.value);
                    } else if batch.ts_ms > lo_ms + 1_000 && batch.ts_ms <= hi_ms - 20_000 {
                        peak_during = peak_during.max(o.value);
                    }
                }
            }
        }
        assert!(
            peak_before > 1_500.0,
            "HPL load missing: peak {peak_before:.0} W"
        );
        assert!(
            peak_during < 1_100.0 * 1.2,
            "cap not visible: peak {peak_during:.0} W"
        );
        Ok(())
    }

    #[test]
    fn job_storm_saturates_the_machine() -> Result<(), TelemetryError> {
        let pack = ScenarioPack::standard(ScenarioKind::JobStorm);
        let mut run = pack.start(7)?;
        let (lo_ms, _) = run.disturbance_ms();
        let mut peak_util_during = 0.0f64;
        while run.tick() < run.ticks() {
            let batch = run.next_batch()?;
            if batch.ts_ms > lo_ms {
                peak_util_during = peak_util_during.max(run.generator().scheduler().utilization());
            }
        }
        assert!(
            peak_util_during >= 0.99,
            "storm never saturated: peak util {peak_util_during:.2}"
        );
        assert!(
            run.jobs().iter().any(|j| j.project == "PRJ900"),
            "scripted storm jobs missing from job record"
        );
        Ok(())
    }
}
