//! Bronze → Silver → Gold: the ODA refinement stages (§V-A).
//!
//! * **Bronze**: raw long-format observations, one row per sensor sample.
//! * **Silver**: window-aggregated (default 15 s), pivoted wide per
//!   (window, node), joined with job-allocation context.
//! * **Gold**: analysis-specific reductions (per-job energy profiles,
//!   report tables, ML features).
//!
//! Both execution modes the paper discusses are provided: *batch*
//! (a [`PipelinePlan`] re-run over Bronze) and *streaming* (a stateful
//! transform precomputing Silver incrementally — the §VI-B design
//! decision that "amortizes the cost of refining datasets").

use crate::error::PipelineError;
use crate::expr::Expr;
use crate::frame::Frame;
use crate::ops::{Agg, AggSpec};
use crate::plan::{PipelinePlan, Stage};
use crate::state::{CellState, StateStore};
use crate::streaming::{Decoder, PartitionMap, Transform};
use oda_faults::{FaultPoint, FaultSite};
use oda_storage::colfile::ColumnData;
use oda_storage::intern::StringInterner;
use oda_telemetry::jobs::Job;
use oda_telemetry::record::{Device, Observation, Quality};
use oda_telemetry::sensors::SensorCatalog;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Default Silver aggregation window (the paper's "e.g., every 15
/// seconds").
pub const SILVER_WINDOW_MS: i64 = 15_000;

/// Render a device as a short stable string ("node", "gpu3", ...).
pub fn device_label(d: Device) -> String {
    match d {
        Device::Node => "node".to_string(),
        Device::Cpu(i) => format!("cpu{i}"),
        Device::Gpu(i) => format!("gpu{i}"),
        Device::Nic(i) => format!("nic{i}"),
        Device::Psu(i) => format!("psu{i}"),
        Device::CoolingLoop(i) => format!("loop{i}"),
        Device::Facility => "facility".to_string(),
    }
}

/// Build a Bronze frame from observations: columns `ts_ms` (I64),
/// `node` (I64), `device` (Dict), `sensor` (Dict), `value` (F64),
/// `quality` (I64 code: 0 good, 1 missing, 2 suspect).
///
/// The categorical columns are dictionary-encoded at the source: sensor
/// names are interned from the catalog up front and devices are labeled
/// once per distinct device, so the per-row cost is a 4-byte code push
/// — no `String` is allocated per observation.
pub fn bronze_frame(obs: &[Observation], catalog: &SensorCatalog) -> Frame {
    let mut ts = Vec::with_capacity(obs.len());
    let mut node = Vec::with_capacity(obs.len());
    let mut device = Vec::with_capacity(obs.len());
    let mut sensor = Vec::with_capacity(obs.len());
    let mut value = Vec::with_capacity(obs.len());
    let mut quality = Vec::with_capacity(obs.len());
    // Catalog ids are dense (get(id) indexes specs by position), so the
    // pre-seeded interner makes the common case a direct table lookup.
    // Unused pre-seeded entries are dropped at colfile write time.
    let mut sensors = StringInterner::new();
    let known: Vec<u32> = catalog
        .specs()
        .iter()
        .map(|s| sensors.intern(&s.name))
        .collect();
    let mut unknown: HashMap<u16, u32> = HashMap::new();
    let mut devices = StringInterner::new();
    let mut device_code: HashMap<Device, u32> = HashMap::new();
    for o in obs {
        ts.push(o.ts_ms);
        node.push(i64::from(o.component.node));
        device.push(
            *device_code
                .entry(o.component.device)
                .or_insert_with(|| devices.intern(&device_label(o.component.device))),
        );
        sensor.push(match known.get(usize::from(o.sensor)) {
            Some(&code) => code,
            None => *unknown
                .entry(o.sensor)
                .or_insert_with(|| sensors.intern(&format!("s{}", o.sensor))),
        });
        value.push(o.value);
        quality.push(match o.quality {
            Quality::Good => 0i64,
            Quality::Missing => 1,
            Quality::Suspect => 2,
        });
    }
    Frame::new(vec![
        ("ts_ms".into(), ColumnData::I64(ts.into())),
        ("node".into(), ColumnData::I64(node.into())),
        (
            "device".into(),
            ColumnData::dict(devices.into_dict(), device),
        ),
        (
            "sensor".into(),
            ColumnData::dict(sensors.into_dict(), sensor),
        ),
        ("value".into(), ColumnData::F64(value.into())),
        ("quality".into(), ColumnData::I64(quality.into())),
    ])
    .expect("equal-length columns by construction")
}

/// Decoder for broker records whose payloads are
/// [`Observation::encode_batch`] frames.
pub fn observation_decoder(catalog: SensorCatalog) -> Decoder {
    Box::new(move |records| {
        let mut all = Vec::new();
        for r in records {
            let batch = Observation::decode_batch(&r.value)
                .ok_or_else(|| PipelineError::Decode("bad observation batch".into()))?;
            all.extend(batch);
        }
        Ok(bronze_frame(&all, &catalog))
    })
}

/// [`observation_decoder`] with sensor-dropout injection: each decoded
/// observation consults `faults` at the [`FaultSite::SensorRead`] site
/// (ctx = index within its batch) and is silently dropped when a
/// [`oda_faults::FaultKind::SensorDropout`] fires — modeling telemetry
/// that never arrived. Pair with
/// [`streaming_silver_transform_gap_marked`] so downstream consumers
/// see explicit gap rows instead of silently-thinner aggregates.
pub fn observation_decoder_with_faults(
    catalog: SensorCatalog,
    faults: Arc<dyn FaultPoint>,
) -> Decoder {
    Box::new(move |records| {
        let mut all = Vec::new();
        for r in records {
            let batch = Observation::decode_batch(&r.value)
                .ok_or_else(|| PipelineError::Decode("bad observation batch".into()))?;
            for (i, o) in batch.into_iter().enumerate() {
                if faults.check(FaultSite::SensorRead, i as u64).is_none() {
                    all.push(o);
                }
            }
        }
        Ok(bronze_frame(&all, &catalog))
    })
}

/// The Fig. 4-b quality filter as a stateless per-partition stage:
/// drops rows whose `quality` is not Good (0) or whose `value` is NaN.
/// Row-local, so it runs inside the parallel partition workers (via
/// `StreamingQueryBuilder::map_partitions`) with output identical to
/// filtering the merged frame.
pub fn quality_filter_map() -> PartitionMap {
    Box::new(|frame: Frame| {
        let mask = Expr::col("quality")
            .eq_(Expr::LitI(0))
            .and(Expr::col("value").is_nan().not())
            .eval_mask(&frame)?;
        Ok(frame.filter_mask(&mask))
    })
}

/// Job allocation context: one row per (job, node), with columns
/// `node` (I64), `job` (I64), `archetype` (Dict), `program` (I64),
/// `user` (I64), `project` (Dict), and the allocation bounds
/// `job_start_ms` / `job_end_ms` (I64) used for the temporal join.
pub fn job_context_frame(jobs: &[Job]) -> Frame {
    let mut node = Vec::new();
    let mut job = Vec::new();
    let mut archetype = Vec::new();
    let mut program = Vec::new();
    let mut user = Vec::new();
    let mut project = Vec::new();
    let mut start = Vec::new();
    let mut end = Vec::new();
    let mut archetypes = StringInterner::new();
    let mut projects = StringInterner::new();
    for j in jobs {
        for &n in &j.nodes {
            node.push(i64::from(n));
            job.push(j.id as i64);
            archetype.push(archetypes.intern(j.archetype.label()));
            program.push(i64::from(j.program));
            user.push(i64::from(j.user));
            project.push(projects.intern(&j.project));
            start.push(j.start_ms);
            end.push(j.end_ms);
        }
    }
    Frame::new(vec![
        ("node".into(), ColumnData::I64(node.into())),
        ("job".into(), ColumnData::I64(job.into())),
        (
            "archetype".into(),
            ColumnData::dict(archetypes.into_dict(), archetype),
        ),
        ("program".into(), ColumnData::I64(program.into())),
        ("user".into(), ColumnData::I64(user.into())),
        (
            "project".into(),
            ColumnData::dict(projects.into_dict(), project),
        ),
        ("job_start_ms".into(), ColumnData::I64(start.into())),
        ("job_end_ms".into(), ColumnData::I64(end.into())),
    ])
    .expect("equal-length columns by construction")
}

/// The batch Bronze→Silver plan of Fig. 4-b: quality filter → window →
/// group-by mean → pivot sensors wide → join job context on node, then
/// restrict to windows inside the job's allocation interval (a node is
/// reused by many jobs over time; joining on node alone would attribute
/// every window to every job that ever held the node).
pub fn bronze_to_silver_plan(window_ms: i64, job_ctx: Frame) -> PipelinePlan {
    PipelinePlan::new()
        .then(Stage::Where(
            Expr::col("quality")
                .eq_(Expr::LitI(0))
                .and(Expr::col("value").is_nan().not()),
        ))
        .then(Stage::Window {
            ts_col: "ts_ms".into(),
            width_ms: window_ms,
        })
        .then(Stage::GroupBy {
            keys: vec!["window".into(), "node".into(), "sensor".into()],
            aggs: vec![AggSpec::new("value", Agg::Mean, "value")],
        })
        .then(Stage::Pivot {
            index: vec!["window".into(), "node".into()],
            pivot_col: "sensor".into(),
            value_col: "value".into(),
            agg: Agg::Mean,
        })
        .then(Stage::Join {
            right: job_ctx,
            on: vec!["node".into()],
        })
        .then(Stage::Where(
            Expr::col("window")
                .ge(Expr::col("job_start_ms"))
                .and(Expr::col("window").lt(Expr::col("job_end_ms"))),
        ))
}

/// Streaming Bronze→Silver transform: folds observations into
/// per-(window, node, sensor) accumulators and emits rows for windows
/// the watermark has closed. Output columns: `window` (I64), `node`
/// (I64), `sensor` (Dict), `mean`/`min`/`max` (F64), `count` (I64).
///
/// The event-time watermark survives recovery because it is kept in the
/// checkpointed state (`wm_ms` counter). State keys stay in the
/// `"{node}\u{1f}{sensor}"` format for checkpoint compatibility, but
/// are rendered once per distinct (node, sensor code) per batch — the
/// per-row path does not allocate.
pub fn streaming_silver_transform(window_ms: i64, lateness_ms: i64) -> Transform {
    Box::new(move |frame: Frame, state: &mut StateStore| {
        let ts = frame.i64s("ts_ms")?;
        let node = frame.i64s("node")?;
        let (dict, codes) = frame.cat("sensor")?.to_dict();
        let value = frame.f64s("value")?;
        let quality = frame.i64s("quality")?;
        let mut max_ts = state.counter("wm_ms") as i64;
        let mut key_cache: HashMap<(i64, u32), String> = HashMap::new();
        for i in 0..frame.rows() {
            max_ts = max_ts.max(ts[i]);
            if quality[i] != 0 || value[i].is_nan() {
                continue;
            }
            let window = ts[i].div_euclid(window_ms) * window_ms;
            let key = key_cache
                .entry((node[i], codes[i]))
                .or_insert_with(|| format!("{}\u{1f}{}", node[i], &dict[codes[i] as usize]));
            state.cell(window, key).push(value[i]);
        }
        // Persist watermark progress (monotonic, safe as u64: sim time
        // is non-negative).
        let watermark = max_ts - lateness_ms;
        if max_ts > 0 {
            state.bump(
                "wm_ms",
                (max_ts as u64).saturating_sub(state.counter("wm_ms")),
            );
        }
        // A window [w, w+width) is closed when watermark >= w + width.
        let horizon = watermark - window_ms + 1;
        let closed = state.drain_closed(horizon);
        let mut w_col = Vec::with_capacity(closed.len());
        let mut n_col = Vec::with_capacity(closed.len());
        let mut out_sensors = StringInterner::new();
        let mut s_col = Vec::with_capacity(closed.len());
        let mut mean_col = Vec::with_capacity(closed.len());
        let mut min_col = Vec::with_capacity(closed.len());
        let mut max_col = Vec::with_capacity(closed.len());
        let mut c_col = Vec::with_capacity(closed.len());
        for ((window, key), cell) in closed {
            let (node_s, sensor_s) = key
                .split_once('\u{1f}')
                .ok_or_else(|| PipelineError::Decode("bad state key".into()))?;
            w_col.push(window);
            n_col.push(
                node_s
                    .parse::<i64>()
                    .map_err(|_| PipelineError::Decode("bad node".into()))?,
            );
            s_col.push(out_sensors.intern(sensor_s));
            mean_col.push(cell.mean());
            min_col.push(cell.min);
            max_col.push(cell.max);
            c_col.push(cell.count as i64);
        }
        Frame::new(vec![
            ("window".into(), ColumnData::I64(w_col.into())),
            ("node".into(), ColumnData::I64(n_col.into())),
            (
                "sensor".into(),
                ColumnData::dict(out_sensors.into_dict(), s_col),
            ),
            ("mean".into(), ColumnData::F64(mean_col.into())),
            ("min".into(), ColumnData::F64(min_col.into())),
            ("max".into(), ColumnData::F64(max_col.into())),
            ("count".into(), ColumnData::I64(c_col.into())),
        ])
    })
}

/// Gap-aware variant of [`streaming_silver_transform`]: degrades
/// gracefully under sensor dropout instead of silently thinning output.
///
/// Keeps a roster of every (node, sensor) key ever observed (in the
/// checkpointed state, so it survives recovery). When a window closes,
/// every rostered key gets exactly one row: a normal aggregate row
/// (`gap` = 0) if samples arrived, or a *gap marker* row (`gap` = 1,
/// `count` = 0, NaN statistics) if the key went dark — downstream Gold
/// jobs can then distinguish "sensor read zero" from "sensor unheard".
/// Output columns: those of [`streaming_silver_transform`] plus `gap`
/// (I64).
pub fn streaming_silver_transform_gap_marked(window_ms: i64, lateness_ms: i64) -> Transform {
    const ROSTER_PREFIX: &str = "seen\u{1f}";
    Box::new(move |frame: Frame, state: &mut StateStore| {
        let ts = frame.i64s("ts_ms")?;
        let node = frame.i64s("node")?;
        let (dict, codes) = frame.cat("sensor")?.to_dict();
        let value = frame.f64s("value")?;
        let quality = frame.i64s("quality")?;
        let mut max_ts = state.counter("wm_ms") as i64;
        let mut first_window = i64::MAX;
        // Keys (and the roster check) are rendered once per distinct
        // (node, sensor code) per batch; rows hit a code-indexed cache.
        let mut key_cache: HashMap<(i64, u32), String> = HashMap::new();
        for i in 0..frame.rows() {
            max_ts = max_ts.max(ts[i]);
            if quality[i] != 0 || value[i].is_nan() {
                continue;
            }
            let window = ts[i].div_euclid(window_ms) * window_ms;
            first_window = first_window.min(window);
            let key = match key_cache.entry((node[i], codes[i])) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(e) => {
                    let key = format!("{}\u{1f}{}", node[i], &dict[codes[i] as usize]);
                    let roster_key = format!("{ROSTER_PREFIX}{key}");
                    if state.counter(&roster_key) == 0 {
                        state.bump(&roster_key, 1);
                    }
                    e.insert(key)
                }
            };
            state.cell(window, key).push(value[i]);
        }
        if max_ts > 0 {
            state.bump(
                "wm_ms",
                (max_ts as u64).saturating_sub(state.counter("wm_ms")),
            );
        }
        // Gap cursor: next window start owed a full roster sweep, stored
        // +1 so 0 can mean "unset" (sim time is non-negative).
        if state.counter("gap_next") == 0 && (0..i64::MAX).contains(&first_window) {
            state.bump("gap_next", first_window as u64 + 1);
        }
        let watermark = max_ts - lateness_ms;
        let horizon = watermark - window_ms + 1;
        let mut cells: BTreeMap<(i64, String), CellState> =
            state.drain_closed(horizon).into_iter().collect();
        let last_closed = if horizon > 0 {
            (horizon - 1).div_euclid(window_ms) * window_ms
        } else {
            i64::MIN
        };
        // One row per (closed window, rostered key): real or gap marker.
        let mut rows: Vec<(i64, String, CellState, i64)> = Vec::new();
        if state.counter("gap_next") > 0 && last_closed >= 0 {
            let roster: Vec<String> = state
                .counters_with_prefix(ROSTER_PREFIX)
                .into_iter()
                .map(|(k, _)| k[ROSTER_PREFIX.len()..].to_string())
                .collect();
            let mut w = (state.counter("gap_next") - 1) as i64;
            while w <= last_closed {
                for key in &roster {
                    match cells.remove(&(w, key.clone())) {
                        Some(cell) => rows.push((w, key.clone(), cell, 0)),
                        None => rows.push((w, key.clone(), CellState::new(), 1)),
                    }
                }
                w += window_ms;
            }
            let next = (last_closed + window_ms) as u64 + 1;
            let bump = next.saturating_sub(state.counter("gap_next"));
            state.bump("gap_next", bump);
        }
        // Cells drained outside the sweep (windows before the cursor)
        // still emit normally.
        for ((w, key), cell) in cells {
            rows.push((w, key, cell, 0));
        }
        rows.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));
        let mut w_col = Vec::with_capacity(rows.len());
        let mut n_col = Vec::with_capacity(rows.len());
        let mut out_sensors = StringInterner::new();
        let mut s_col = Vec::with_capacity(rows.len());
        let mut mean_col = Vec::with_capacity(rows.len());
        let mut min_col = Vec::with_capacity(rows.len());
        let mut max_col = Vec::with_capacity(rows.len());
        let mut c_col = Vec::with_capacity(rows.len());
        let mut g_col = Vec::with_capacity(rows.len());
        for (window, key, cell, gap) in rows {
            let (node_s, sensor_s) = key
                .split_once('\u{1f}')
                .ok_or_else(|| PipelineError::Decode("bad state key".into()))?;
            w_col.push(window);
            n_col.push(
                node_s
                    .parse::<i64>()
                    .map_err(|_| PipelineError::Decode("bad node".into()))?,
            );
            s_col.push(out_sensors.intern(sensor_s));
            if gap == 1 {
                mean_col.push(f64::NAN);
                min_col.push(f64::NAN);
                max_col.push(f64::NAN);
            } else {
                mean_col.push(cell.mean());
                min_col.push(cell.min);
                max_col.push(cell.max);
            }
            c_col.push(cell.count as i64);
            g_col.push(gap);
        }
        Frame::new(vec![
            ("window".into(), ColumnData::I64(w_col.into())),
            ("node".into(), ColumnData::I64(n_col.into())),
            (
                "sensor".into(),
                ColumnData::dict(out_sensors.into_dict(), s_col),
            ),
            ("mean".into(), ColumnData::F64(mean_col.into())),
            ("min".into(), ColumnData::F64(min_col.into())),
            ("max".into(), ColumnData::F64(max_col.into())),
            ("count".into(), ColumnData::I64(c_col.into())),
            ("gap".into(), ColumnData::I64(g_col.into())),
        ])
    })
}

/// Silver→Gold: per-job power/energy summary. Input must be a Silver
/// frame containing `node_power_w` and `job` columns; output has one
/// row per job with mean/peak power, windows observed, and energy (kWh,
/// assuming one row per `window_ms` per node).
pub fn silver_to_gold_job_energy(silver: &Frame, window_ms: i64) -> Result<Frame, PipelineError> {
    let g = crate::ops::group_by(
        silver,
        &["job"],
        &[
            AggSpec::new("node_power_w", Agg::Mean, "mean_node_w"),
            AggSpec::new("node_power_w", Agg::Max, "peak_node_w"),
            AggSpec::new("node_power_w", Agg::Sum, "node_window_w"),
            AggSpec::new("node_power_w", Agg::Count, "samples"),
        ],
    )?;
    // Energy: sum over (node, window) of P * window duration.
    let sums = g.f64s("node_window_w")?;
    let kwh: Vec<f64> = sums
        .iter()
        .map(|s| s * (window_ms as f64 / 1_000.0) / 3.6e6)
        .collect();
    let mut out = g.clone();
    out.push_column("energy_kwh", ColumnData::F64(kwh.into()))?;
    out.select(&["job", "mean_node_w", "peak_node_w", "samples", "energy_kwh"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::CheckpointStore;
    use crate::streaming::{MemorySink, StreamingQuery};
    use bytes::Bytes;
    use oda_stream::{Broker, Consumer, RetentionPolicy};
    use oda_telemetry::record::Component;
    use oda_telemetry::system::SystemModel;
    use oda_telemetry::TelemetryGenerator;

    fn tiny_catalog() -> SensorCatalog {
        SensorCatalog::for_system(&SystemModel::tiny())
    }

    fn obs(ts: i64, node: u32, sensor: u16, value: f64) -> Observation {
        Observation {
            ts_ms: ts,
            sensor,
            component: Component::node(node),
            value,
            quality: Quality::Good,
        }
    }

    #[test]
    fn bronze_frame_shape() {
        let cat = tiny_catalog();
        let rows = vec![obs(0, 1, 0, 500.0), obs(1_000, 2, 1, 21.0)];
        let f = bronze_frame(&rows, &cat);
        assert_eq!(f.rows(), 2);
        let sensors = f.cat("sensor").unwrap();
        assert_eq!(sensors.get(0), "node_power_w");
        assert_eq!(f.i64s("node").unwrap(), &[1, 2]);
        // Categorical columns are dictionary-encoded at the source.
        assert!(f.dict("sensor").is_ok());
        assert!(f.dict("device").is_ok());
    }

    #[test]
    fn batch_silver_pipeline_end_to_end() {
        let cat = tiny_catalog();
        // 2 nodes x 2 sensors x 30 seconds of 1 Hz data.
        let mut rows = Vec::new();
        for t in 0..30i64 {
            for n in [0u32, 1] {
                rows.push(obs(t * 1_000, n, 0, 500.0 + n as f64 * 100.0)); // node_power_w
                rows.push(obs(t * 1_000, n, 1, 21.0)); // node_inlet_temp_c
            }
        }
        let bronze = bronze_frame(&rows, &cat);
        let jobs = vec![Job {
            id: 9,
            user: 3,
            project: "PRJ001".into(),
            program: 0,
            archetype: oda_telemetry::ApplicationArchetype::Hpl,
            nodes: vec![0, 1],
            submit_ms: 0,
            start_ms: 0,
            end_ms: 60_000,
            phase: 0.0,
        }];
        let plan = bronze_to_silver_plan(SILVER_WINDOW_MS, job_context_frame(&jobs));
        let silver = plan.execute(bronze).unwrap();
        // 2 windows x 2 nodes.
        assert_eq!(silver.rows(), 4);
        assert!(silver.index_of("node_power_w").is_ok());
        assert!(silver.index_of("node_inlet_temp_c").is_ok());
        assert_eq!(silver.i64s("job").unwrap(), &[9, 9, 9, 9]);
        // Gold: one row for job 9.
        let gold = silver_to_gold_job_energy(&silver, SILVER_WINDOW_MS).unwrap();
        assert_eq!(gold.rows(), 1);
        assert_eq!(gold.i64s("job").unwrap()[0], 9);
        let mean = gold.f64s("mean_node_w").unwrap()[0];
        assert!((mean - 550.0).abs() < 1.0, "mean node power {mean}");
        assert!(gold.f64s("energy_kwh").unwrap()[0] > 0.0);
    }

    #[test]
    fn batch_silver_join_is_time_aware() {
        // Two sequential jobs on the same node: each window must be
        // attributed to exactly the job whose allocation covers it.
        let cat = tiny_catalog();
        let mut rows = Vec::new();
        for t in 0..30i64 {
            rows.push(obs(t * 1_000, 0, 0, 500.0));
        }
        let mk_job = |id: u64, start: i64, end: i64| Job {
            id,
            user: 0,
            project: "PRJ000".into(),
            program: 0,
            archetype: oda_telemetry::ApplicationArchetype::Debug,
            nodes: vec![0],
            submit_ms: start,
            start_ms: start,
            end_ms: end,
            phase: 0.0,
        };
        let jobs = vec![mk_job(1, 0, 15_000), mk_job(2, 15_000, 30_000)];
        let plan = bronze_to_silver_plan(SILVER_WINDOW_MS, job_context_frame(&jobs));
        let silver = plan.execute(bronze_frame(&rows, &cat)).unwrap();
        // 2 windows x 1 node, one job each — NOT 4 rows.
        assert_eq!(silver.rows(), 2, "node reuse must not duplicate rows");
        let windows = silver.i64s("window").unwrap();
        let job_ids = silver.i64s("job").unwrap();
        for i in 0..2 {
            let expect = if windows[i] == 0 { 1 } else { 2 };
            assert_eq!(job_ids[i], expect, "window {} misattributed", windows[i]);
        }
    }

    #[test]
    fn streaming_silver_emits_closed_windows_only() {
        let mut transform = streaming_silver_transform(15_000, 0);
        let cat = tiny_catalog();
        let mut state = StateStore::new();
        // First batch: 0..20s — window [0,15s) closes (watermark 19s >= 15s).
        let batch1: Vec<Observation> = (0..20).map(|t| obs(t * 1_000, 0, 0, 100.0)).collect();
        let out1 = transform(bronze_frame(&batch1, &cat), &mut state).unwrap();
        assert_eq!(out1.rows(), 1);
        assert_eq!(out1.i64s("window").unwrap(), &[0]);
        assert_eq!(out1.i64s("count").unwrap(), &[15]);
        // Second batch: 20..35s — window [15,30) closes.
        let batch2: Vec<Observation> = (20..35).map(|t| obs(t * 1_000, 0, 0, 200.0)).collect();
        let out2 = transform(bronze_frame(&batch2, &cat), &mut state).unwrap();
        assert_eq!(out2.i64s("window").unwrap(), &[15_000]);
        // Mean mixes the 100s (t=15..20) and 200s (t=20..30).
        let mean = out2.f64s("mean").unwrap()[0];
        assert!((mean - (5.0 * 100.0 + 10.0 * 200.0) / 15.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_silver_respects_lateness() {
        let mut transform = streaming_silver_transform(15_000, 10_000);
        let cat = tiny_catalog();
        let mut state = StateStore::new();
        // Events to 24s; watermark = 14s; window 0 NOT closed.
        let batch: Vec<Observation> = (0..25).map(|t| obs(t * 1_000, 0, 0, 1.0)).collect();
        let out = transform(bronze_frame(&batch, &cat), &mut state).unwrap();
        assert_eq!(out.rows(), 0, "lateness must hold window 0 open");
        // More events to 26s; watermark 16s; window 0 closes with the
        // late event (t=14.5s equivalent none here) included.
        let batch2: Vec<Observation> = vec![obs(26_000, 0, 0, 1.0)];
        let out2 = transform(bronze_frame(&batch2, &cat), &mut state).unwrap();
        assert_eq!(out2.i64s("window").unwrap(), &[0]);
        assert_eq!(out2.i64s("count").unwrap(), &[15]);
    }

    #[test]
    fn gap_marked_silver_emits_markers_for_silent_sensors() {
        let mut transform = streaming_silver_transform_gap_marked(15_000, 0);
        let cat = tiny_catalog();
        let mut state = StateStore::new();
        // Window 0: both sensors report. Sensor 1 then goes dark.
        let mut batch1: Vec<Observation> = (0..20).map(|t| obs(t * 1_000, 0, 0, 100.0)).collect();
        batch1.extend((0..15).map(|t| obs(t * 1_000, 0, 1, 20.0)));
        let out1 = transform(bronze_frame(&batch1, &cat), &mut state).unwrap();
        assert_eq!(out1.rows(), 2, "window 0, both sensors, no gaps");
        assert!(out1.i64s("gap").unwrap().iter().all(|&g| g == 0));
        // Window [15s, 30s) closes with only sensor 0 reporting.
        let batch2: Vec<Observation> = (20..35).map(|t| obs(t * 1_000, 0, 0, 100.0)).collect();
        let out2 = transform(bronze_frame(&batch2, &cat), &mut state).unwrap();
        assert_eq!(out2.rows(), 2, "one real row + one gap marker");
        let sensors = out2.cat("sensor").unwrap();
        let gaps = out2.i64s("gap").unwrap();
        let counts = out2.i64s("count").unwrap();
        let means = out2.f64s("mean").unwrap();
        for i in 0..2 {
            if sensors.get(i) == "node_inlet_temp_c" {
                assert_eq!(gaps[i], 1, "dark sensor must be gap-marked");
                assert_eq!(counts[i], 0);
                assert!(means[i].is_nan());
            } else {
                assert_eq!(gaps[i], 0);
                assert_eq!(counts[i], 15);
                assert_eq!(means[i], 100.0);
            }
        }
    }

    #[test]
    fn gap_roster_survives_checkpoint_roundtrip() {
        let mut transform = streaming_silver_transform_gap_marked(15_000, 0);
        let cat = tiny_catalog();
        let mut state = StateStore::new();
        let mut batch1: Vec<Observation> = (0..20).map(|t| obs(t * 1_000, 0, 0, 1.0)).collect();
        batch1.extend((0..15).map(|t| obs(t * 1_000, 0, 1, 2.0)));
        transform(bronze_frame(&batch1, &cat), &mut state).unwrap();
        // Crash: restore state from its snapshot, keep going.
        let mut restored = StateStore::restore(&state.snapshot()).unwrap();
        let batch2: Vec<Observation> = (20..35).map(|t| obs(t * 1_000, 0, 0, 1.0)).collect();
        let out = transform(bronze_frame(&batch2, &cat), &mut restored).unwrap();
        let gaps = out.i64s("gap").unwrap();
        assert_eq!(
            gaps.iter().filter(|&&g| g == 1).count(),
            1,
            "roster (and thus gap detection) must survive recovery"
        );
    }

    #[test]
    fn dropout_decoder_degrades_instead_of_erroring() {
        use oda_faults::{FaultPlan, FaultSpec};
        let cat = tiny_catalog();
        let obs_batch: Vec<Observation> = (0..200).map(|t| obs(t * 1_000, 0, 0, 1.0)).collect();
        let payload = Observation::encode_batch(&obs_batch);
        let record = oda_stream::Record {
            offset: 0,
            ts_ms: 0,
            key: None,
            value: Bytes::from(payload),
        };
        let plan = Arc::new(FaultPlan::new(
            5,
            FaultSpec {
                sensor_dropout: 0.3,
                ..FaultSpec::default()
            },
        ));
        let decode = observation_decoder_with_faults(cat.clone(), plan.clone());
        let frame = decode(std::slice::from_ref(&record)).unwrap();
        assert!(frame.rows() < 200, "some observations must drop");
        assert!(frame.rows() > 100, "most observations must survive");
        let dropped = plan.injected().len();
        assert_eq!(200 - frame.rows(), dropped);
        // Zero-rate plan drops nothing.
        let silent = Arc::new(FaultPlan::new(5, FaultSpec::default()));
        let decode2 = observation_decoder_with_faults(cat, silent);
        assert_eq!(decode2(&[record]).unwrap().rows(), 200);
    }

    #[test]
    fn quality_filter_map_drops_bad_rows() {
        let cat = tiny_catalog();
        let mut rows = vec![obs(0, 1, 0, 500.0), obs(1_000, 2, 1, f64::NAN)];
        rows.push(Observation {
            quality: Quality::Suspect,
            ..obs(2_000, 3, 0, 510.0)
        });
        let frame = bronze_frame(&rows, &cat);
        let filtered = quality_filter_map()(frame).unwrap();
        assert_eq!(filtered.rows(), 1, "NaN and Suspect rows must drop");
        assert_eq!(filtered.i64s("node").unwrap(), &[1]);
    }

    #[test]
    fn full_broker_to_silver_streaming_query() {
        // Telemetry generator -> broker -> streaming silver -> sink.
        let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 42);
        let broker = Broker::new();
        broker
            .create_topic("bronze", 2, RetentionPolicy::unbounded())
            .unwrap();
        for _ in 0..60 {
            let batch = generator.next_batch();
            let payload = Observation::encode_batch(&batch.observations);
            broker
                .produce(
                    "bronze",
                    batch.ts_ms,
                    Some(Bytes::from("all")),
                    Bytes::from(payload),
                )
                .unwrap();
        }
        let consumer = Consumer::subscribe(broker, "silver", "bronze").unwrap();
        let mut q = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(generator.catalog().clone()))
            .transform(streaming_silver_transform(15_000, 0))
            .checkpoints(CheckpointStore::new())
            .max_records(5)
            .workers(2)
            .build()
            .unwrap();
        let mut sink = MemorySink::new();
        q.run_to_completion(&mut sink).unwrap();
        let silver = sink.concat().unwrap();
        assert!(silver.rows() > 0, "no silver rows emitted");
        // Every emitted window start is 15s-aligned and each cell has at
        // most 15 one-second samples.
        for (&w, &c) in silver
            .i64s("window")
            .unwrap()
            .iter()
            .zip(silver.i64s("count").unwrap())
        {
            assert_eq!(w % 15_000, 0);
            assert!(c <= 15, "window cell with {c} samples");
        }
        // node_power_w means are physically plausible for the tiny system.
        let sensors = silver.cat("sensor").unwrap();
        let means = silver.f64s("mean").unwrap();
        let mut checked = 0;
        for (i, &mean) in means.iter().enumerate() {
            if sensors.get(i) == "node_power_w" {
                assert!(mean > 300.0 && mean < 2_500.0, "power {mean}");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }
}
