//! Offline stand-in for `parking_lot`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `parking_lot` API it uses:
//! non-poisoning [`Mutex`] and [`RwLock`] whose guards come back
//! directly from `lock()` / `read()` / `write()` (no `Result`).
//! Poisoning is deliberately swallowed — a panicking holder does not
//! make the data unreachable, matching parking_lot semantics.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// Non-poisoning mutual-exclusion lock.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap a value in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poison from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// Non-poisoning readers-writer lock.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = StdRwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = StdRwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap a value in a readers-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic_and_concurrent() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                thread::spawn(move || {
                    for _ in 0..1_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn rwlock_readers_coexist() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poison_is_swallowed() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock still usable after a panicked holder");
    }
}
