//! Self-telemetry dashboard: the ODA stack observing itself.
//!
//! Runs the end-to-end medallion flow — synthetic telemetry → STREAM
//! broker → checkpointed Silver pipeline → OCEAN/LAKE/tiering — with
//! every subsystem attached to one `oda-obs` registry, under a seeded
//! chaos fault plan. Prints the per-epoch operator view (records,
//! watermark, stage timings) as the stream drains, then the full
//! Prometheus exposition an operations team would scrape.
//!
//! Run with: `cargo run --release --example obs_dashboard`

use bytes::Bytes;
use oda::faults::{FaultClass, FaultPlan, FaultPoint, Retry, Retryable};
use oda::obs::Registry;
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::frame_io::frame_to_colfile;
use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform};
use oda::pipeline::streaming::MemorySink;
use oda::pipeline::StreamingQuery;
use oda::storage::colfile::{ColumnType, TableSchema};
use oda::storage::lake::Lake;
use oda::storage::ocean::{Ocean, OceanDataset};
use oda::storage::tiering::{DataClass, Tier, TierManager};
use oda::stream::{Broker, Consumer, RetentionPolicy};
use oda::telemetry::record::Observation;
use oda::telemetry::system::SystemModel;
use oda::telemetry::TelemetryGenerator;
use std::sync::Arc;

const TOPIC: &str = "bronze";
const BATCHES: usize = 60;

fn main() {
    let registry = Registry::new();
    println!(
        "self-telemetry collection: {}",
        if oda::obs::enabled() {
            "on"
        } else {
            "compiled out"
        }
    );

    // --- Telemetry → STREAM, instrumented, with a chaos fault plan. ---
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 7);
    let broker = Broker::new();
    broker.attach_metrics(&registry);
    broker
        .create_topic(TOPIC, 2, RetentionPolicy::unbounded())
        .unwrap();
    for _ in 0..BATCHES {
        let batch = generator.next_batch();
        let payload = Observation::encode_batch(&batch.observations);
        broker
            .produce(
                TOPIC,
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(payload),
            )
            .unwrap();
    }
    let catalog = generator.catalog().clone();
    let plan = Arc::new(FaultPlan::chaos(11));
    plan.attach_metrics(&registry);
    broker.arm_faults(plan.clone() as Arc<dyn FaultPoint>);

    // --- Checkpointed Silver pipeline with the crash/recovery loop. ---
    let checkpoints = CheckpointStore::new();
    checkpoints.arm_faults(plan.clone() as Arc<dyn FaultPoint>);
    let mut sink = MemorySink::new();
    let mut restarts = 0;
    println!("\n=== per-epoch operator view ===");
    println!(
        "{:>5} {:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "epoch", "records", "watermark", "fetch", "decode", "transform", "sink", "ckpt"
    );
    'supervise: loop {
        let consumer = Consumer::subscribe(broker.clone(), "dash", TOPIC)
            .unwrap()
            .with_retry(Retry::with_attempts(25));
        let mut query = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(catalog.clone()))
            .transform(streaming_silver_transform(15_000, 0))
            .checkpoints(checkpoints.clone())
            .max_records(5)
            .workers(2)
            .metrics(&registry)
            .faults(plan.clone() as Arc<dyn FaultPoint>)
            .build()
            .unwrap();
        loop {
            match query.run_once(&mut sink) {
                Ok(0) => break 'supervise,
                Ok(_) => {
                    let m = query.last_meta().expect("committed epoch");
                    let t = m.timings;
                    println!(
                        "{:>5} {:>8} {:>12} {:>9}µ {:>9}µ {:>9}µ {:>9}µ {:>9}µ",
                        m.epoch,
                        m.records,
                        m.watermark_ms,
                        t.fetch_ns / 1_000,
                        t.decode_ns / 1_000,
                        t.transform_ns / 1_000,
                        t.sink_ns / 1_000,
                        t.checkpoint_ns / 1_000,
                    );
                }
                Err(e) => {
                    assert_eq!(e.fault_class(), FaultClass::Fatal, "unexpected: {e}");
                    restarts += 1;
                    println!("   -- injected crash ({e}); restarting from checkpoint --");
                    // A crashed query must be rebuilt from the
                    // checkpoint store: its consumer's in-memory
                    // positions already ran ahead of the failed epoch.
                    continue 'supervise;
                }
            }
        }
    }
    println!(
        "stream drained: {} epochs, {} silver rows, {} crash recoveries",
        sink.epochs(),
        sink.total_rows(),
        restarts
    );

    // --- Silver → OCEAN parts, LAKE points, tier occupancy. ---
    let ocean = Ocean::new();
    ocean.attach_metrics(&registry);
    let silver = sink.concat().unwrap();
    let schema = TableSchema::new(&[
        ("window", ColumnType::I64),
        ("node", ColumnType::I64),
        ("mean", ColumnType::F64),
    ]);
    let dataset = OceanDataset::create(ocean.clone(), "warm", "silver-power", schema).unwrap();
    let bytes = frame_to_colfile(&silver).unwrap();
    for frame in sink.frames() {
        let cols = vec![
            oda::storage::colfile::ColumnData::I64(frame.i64s("window").unwrap().to_vec().into()),
            oda::storage::colfile::ColumnData::I64(frame.i64s("node").unwrap().to_vec().into()),
            oda::storage::colfile::ColumnData::F64(frame.f64s("mean").unwrap().to_vec().into()),
        ];
        dataset.append(&cols).unwrap();
    }

    let lake = Lake::new();
    lake.attach_metrics(&registry);
    let windows = silver.i64s("window").unwrap();
    let nodes = silver.i64s("node").unwrap();
    let means = silver.f64s("mean").unwrap();
    for ((&w, &n), &v) in windows.iter().zip(nodes).zip(means) {
        lake.insert(&format!("node{n}/power"), w, v);
    }

    let mut tiers = TierManager::new();
    tiers.attach_metrics(&registry);
    tiers.register(
        "bronze-day0",
        DataClass::Bronze,
        Tier::Stream,
        broker.bytes() as u64,
        0,
    );
    tiers.register(
        "silver-day0",
        DataClass::Silver,
        Tier::Ocean,
        bytes.len() as u64,
        0,
    );
    const DAY: i64 = 86_400_000;
    tiers.advance(10 * DAY);

    println!(
        "storage: {} ocean parts ({} B), {} lake points, tiers {:?}",
        dataset.parts().len(),
        dataset.byte_size(),
        lake.len(),
        tiers.bytes_by_tier()
    );

    // --- Frame buffer economics: shares vs. forced copies. ---
    let buffers = oda::storage::BufferMetrics::new(&registry);
    buffers.publish();

    // --- The scrape an operations dashboard would ingest. ---
    println!("\n=== /metrics ===");
    print!("{}", registry.render_prometheus());
}
