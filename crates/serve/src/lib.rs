//! # oda-serve — the operator plane, over the wire
//!
//! The paper's ODA stacks are operated through *networked* surfaces:
//! Prometheus scrapes, dashboard queries, health endpoints. This crate
//! is that shell for the reproduction — a dependency-free, std-only
//! HTTP/1.1 server ([`serve`]) exposing the observability surfaces the
//! stack already computes in-process:
//!
//! | Route                  | Body                                  |
//! |------------------------|---------------------------------------|
//! | `/metrics`             | Prometheus text exposition            |
//! | `/healthz`             | SLO health report (JSON, 503 when unhealthy) |
//! | `/trace/spans`         | trace journal (JSONL)                 |
//! | `/trace/critical-path` | heaviest span chain (`?query=&epoch=`)|
//! | `/lineage/digest/<d>`  | ancestor/descendant walks of a digest |
//! | `/alerts`              | online-detector alerts (JSONL)        |
//! | `/bench`               | perf trajectory (JSON)                |
//!
//! # Determinism
//!
//! The server is strictly a *reader*: every handler renders existing
//! state ([`Endpoints`] holds clones of `Arc`-backed registries,
//! tracers, and the health engine) and nothing on a request path
//! writes back, draws randomness, or advances the health engine's
//! logical clock. The chaos suite runs its scrape storm against a live
//! pipeline and asserts Gold output stays byte-identical — same bar as
//! every other obs feature.
//!
//! # Threading model
//!
//! One non-blocking accept thread plus a short-lived thread per
//! connection, bounded by [`ServerConfig::max_connections`] (over
//! budget → immediate 503, never queueing into the data plane), with
//! per-socket read timeouts and graceful [`ServerHandle::shutdown`].
//! Requests are single-shot (`Connection: close`), which is exactly
//! the scrape/curl traffic shape this plane exists for.

pub mod http;
pub mod router;
pub mod server;

pub use http::{Request, Response};
pub use router::{Endpoints, Provider};
pub use server::{serve, ServerConfig, ServerHandle};
