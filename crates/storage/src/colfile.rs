//! `colfile` — a column-oriented table file format (Parquet analogue).
//!
//! Layout: `"OCF1"` magic, then row groups (each column encoded via
//! [`crate::encoding`] and compressed via [`crate::compress`]), then a
//! JSON footer describing schema, chunk locations, and per-chunk min/max
//! statistics, then the footer length and trailing magic. Readers parse
//! the footer first and fetch only the chunks a query needs — min/max
//! stats give row-group–level predicate pushdown.

use crate::buffer::Buffer;
use crate::compress::{compress, decompress};
use crate::encoding::{
    decode_dict, decode_f64, decode_i64, decode_str, encode_dict, encode_f64, encode_i64,
    encode_str,
};
use crate::error::StorageError;
use crate::index::ColumnIndex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"OCF1";

/// Row groups at least this tall encode their columns in parallel;
/// smaller groups stay serial (thread spawn would dominate).
const PARALLEL_ENCODE_ROWS: usize = 4_096;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit signed integer (also used for timestamps in ms).
    I64,
    /// 64-bit float.
    F64,
    /// UTF-8 string.
    Str,
    /// Dictionary-encoded string (categorical).
    Dict,
}

/// Column values for one row group.
///
/// Every variant holds a shared [`Buffer`] view, so cloning a column —
/// and by extension selecting, slicing, or concatenating frames built
/// on top of it — bumps a refcount instead of copying element data.
/// Mutation goes through the buffer's copy-on-write API.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Integer values.
    I64(Buffer<i64>),
    /// Float values.
    F64(Buffer<f64>),
    /// String values.
    Str(Buffer<String>),
    /// Dictionary-encoded strings: row i's value is `dict[codes[i]]`.
    /// The dictionary is shared (`Arc`) so gathers and concats move
    /// 4-byte codes instead of cloning strings.
    Dict {
        /// Distinct values, in code order.
        dict: Arc<Vec<String>>,
        /// Per-row indexes into `dict`.
        codes: Buffer<u32>,
    },
}

impl ColumnData {
    /// Build a dictionary column from distinct entries and per-row codes.
    pub fn dict(dict: Vec<String>, codes: Vec<u32>) -> ColumnData {
        ColumnData::Dict {
            dict: Arc::new(dict),
            codes: codes.into(),
        }
    }

    /// A zero-copy window of `len` rows starting at `offset`.
    ///
    /// # Panics
    /// If `offset + len` exceeds the column length.
    pub fn slice(&self, offset: usize, len: usize) -> ColumnData {
        match self {
            ColumnData::I64(v) => ColumnData::I64(v.slice(offset, len)),
            ColumnData::F64(v) => ColumnData::F64(v.slice(offset, len)),
            ColumnData::Str(v) => ColumnData::Str(v.slice(offset, len)),
            ColumnData::Dict { dict, codes } => ColumnData::Dict {
                dict: Arc::clone(dict),
                codes: codes.slice(offset, len),
            },
        }
    }

    /// True when both columns view the same underlying allocation (for
    /// `Dict`, the same code buffer and the same dictionary).
    pub fn ptr_eq(&self, other: &ColumnData) -> bool {
        match (self, other) {
            (ColumnData::I64(a), ColumnData::I64(b)) => a.ptr_eq(b),
            (ColumnData::F64(a), ColumnData::F64(b)) => a.ptr_eq(b),
            (ColumnData::Str(a), ColumnData::Str(b)) => a.ptr_eq(b),
            (
                ColumnData::Dict {
                    dict: da,
                    codes: ca,
                },
                ColumnData::Dict {
                    dict: db,
                    codes: cb,
                },
            ) => Arc::ptr_eq(da, db) && ca.ptr_eq(cb),
            _ => false,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::I64(v) => v.len(),
            ColumnData::F64(v) => v.len(),
            ColumnData::Str(v) => v.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
        }
    }

    /// True when the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's logical type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            ColumnData::I64(_) => ColumnType::I64,
            ColumnData::F64(_) => ColumnType::F64,
            ColumnData::Str(_) => ColumnType::Str,
            ColumnData::Dict { .. } => ColumnType::Dict,
        }
    }
}

/// Equality is logical, not representational: a `Str` column and a
/// `Dict` column are equal when they hold the same string sequence, and
/// two `Dict` columns compare by values, not by dictionary layout.
/// Numeric columns keep IEEE semantics (`NaN != NaN`).
impl PartialEq for ColumnData {
    fn eq(&self, other: &ColumnData) -> bool {
        match (self, other) {
            (ColumnData::I64(a), ColumnData::I64(b)) => a == b,
            (ColumnData::F64(a), ColumnData::F64(b)) => a == b,
            (ColumnData::Str(a), ColumnData::Str(b)) => a == b,
            (
                ColumnData::Dict {
                    dict: da,
                    codes: ca,
                },
                ColumnData::Dict {
                    dict: db,
                    codes: cb,
                },
            ) => {
                ca.len() == cb.len()
                    && ca
                        .iter()
                        .zip(cb)
                        .all(|(&x, &y)| da[x as usize] == db[y as usize])
            }
            (ColumnData::Str(a), ColumnData::Dict { dict, codes })
            | (ColumnData::Dict { dict, codes }, ColumnData::Str(a)) => {
                a.len() == codes.len() && a.iter().zip(codes).all(|(s, &c)| *s == dict[c as usize])
            }
            _ => false,
        }
    }
}

/// Schema: ordered (name, type) pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Ordered column definitions.
    pub columns: Vec<(String, ColumnType)>,
}

impl TableSchema {
    /// Build a schema from (name, type) pairs.
    pub fn new(columns: &[(&str, ColumnType)]) -> Self {
        TableSchema {
            columns: columns.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        }
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|(n, _)| n == name)
    }
}

/// Min/max statistics of one chunk, used for predicate pushdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ChunkStats {
    /// Integer bounds.
    I64 {
        /// Minimum value in the chunk.
        min: i64,
        /// Maximum value in the chunk.
        max: i64,
    },
    /// Float bounds (NaN values are excluded from the bounds).
    F64 {
        /// Minimum non-NaN value.
        min: f64,
        /// Maximum non-NaN value.
        max: f64,
    },
    /// No statistics (strings, or all-NaN chunks).
    None,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChunkMeta {
    offset: usize,
    len: usize,
    stats: ChunkStats,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct RowGroupMeta {
    rows: usize,
    chunks: Vec<ChunkMeta>,
}

/// Location of one serialized [`ColumnIndex`] in the data region.
///
/// Absent from files written without indexes — the field is skipped when
/// empty so index-free output stays byte-identical to the pre-index
/// format, and old footers parse via the default.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IndexMeta {
    column: String,
    offset: usize,
    len: usize,
}

#[derive(Debug, Clone)]
struct Footer {
    schema: TableSchema,
    row_groups: Vec<RowGroupMeta>,
    /// Secondary-index locations; empty for unindexed files.
    indexes: Vec<IndexMeta>,
}

// Hand-rolled so `indexes` is optional on both sides: omitted from the
// serialized footer when empty (index-free output stays byte-identical
// to the pre-index format) and defaulted when absent (old files parse).
impl Serialize for Footer {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("schema".to_string(), self.schema.to_value()),
            ("row_groups".to_string(), self.row_groups.to_value()),
        ];
        if !self.indexes.is_empty() {
            fields.push(("indexes".to_string(), self.indexes.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for Footer {
    fn from_value(v: &serde::Value) -> Option<Self> {
        Some(Footer {
            schema: Deserialize::from_value(serde::obj_get(v, "schema")?)?,
            row_groups: Deserialize::from_value(serde::obj_get(v, "row_groups")?)?,
            indexes: match serde::obj_get(v, "indexes") {
                Some(raw) => Deserialize::from_value(raw)?,
                None => Vec::new(),
            },
        })
    }
}

/// Writer accumulating row groups into an in-memory file.
#[derive(Debug)]
pub struct TableWriter {
    schema: TableSchema,
    buf: Vec<u8>,
    row_groups: Vec<RowGroupMeta>,
    /// (column position, name, accumulating index) for opted-in columns.
    indexes: Vec<(usize, String, ColumnIndex)>,
}

fn stats_of(data: &ColumnData) -> ChunkStats {
    match data {
        ColumnData::I64(v) => match (v.iter().min(), v.iter().max()) {
            (Some(&min), Some(&max)) => ChunkStats::I64 { min, max },
            _ => ChunkStats::None,
        },
        ColumnData::F64(v) => {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            let mut seen = false;
            for &x in v {
                if !x.is_nan() {
                    min = min.min(x);
                    max = max.max(x);
                    seen = true;
                }
            }
            if seen {
                ChunkStats::F64 { min, max }
            } else {
                ChunkStats::None
            }
        }
        ColumnData::Str(_) | ColumnData::Dict { .. } => ChunkStats::None,
    }
}

/// `Str` and `Dict` are interchangeable on write: both are string
/// columns, and the page encoder produces identical bytes for either
/// representation of the same values.
fn type_compatible(data: ColumnType, schema: ColumnType) -> bool {
    data == schema
        || matches!(
            (data, schema),
            (ColumnType::Str, ColumnType::Dict) | (ColumnType::Dict, ColumnType::Str)
        )
}

impl TableWriter {
    /// Start a file with `schema`.
    pub fn new(schema: TableSchema) -> Self {
        TableWriter {
            schema,
            buf: MAGIC.to_vec(),
            row_groups: Vec::new(),
            indexes: Vec::new(),
        }
    }

    /// Opt a categorical (`Str`/`Dict`) column into secondary indexing:
    /// every row group written afterwards contributes `value → row
    /// bitmap` postings, serialized beside the footer by [`finish`].
    /// Must be called before the first `write_row_group`. Indexing is
    /// opt-in so default output stays byte-identical to unindexed files.
    ///
    /// [`finish`]: TableWriter::finish
    pub fn index_column(&mut self, name: &str) -> Result<(), StorageError> {
        let pos = self
            .schema
            .index_of(name)
            .ok_or_else(|| StorageError::NotFound(format!("column {name}")))?;
        match self.schema.columns[pos].1 {
            ColumnType::Str | ColumnType::Dict => {}
            other => {
                return Err(StorageError::SchemaMismatch {
                    expected: format!("{name}: Str or Dict"),
                    got: format!("{name}: {other:?}"),
                })
            }
        }
        if !self.row_groups.is_empty() {
            return Err(StorageError::Corrupt(
                "index_column must precede write_row_group".into(),
            ));
        }
        if self.indexes.iter().all(|(p, _, _)| *p != pos) {
            self.indexes
                .push((pos, name.to_string(), ColumnIndex::new()));
        }
        Ok(())
    }

    /// Append one row group. Columns must match the schema in order,
    /// type, and length.
    pub fn write_row_group(&mut self, columns: &[ColumnData]) -> Result<(), StorageError> {
        if columns.len() != self.schema.columns.len() {
            return Err(StorageError::SchemaMismatch {
                expected: format!("{} columns", self.schema.columns.len()),
                got: format!("{} columns", columns.len()),
            });
        }
        let rows = columns.first().map_or(0, ColumnData::len);
        for (data, (name, ty)) in columns.iter().zip(&self.schema.columns) {
            if !type_compatible(data.column_type(), *ty) {
                return Err(StorageError::SchemaMismatch {
                    expected: format!("{name}: {ty:?}"),
                    got: format!("{name}: {:?}", data.column_type()),
                });
            }
            if data.len() != rows {
                return Err(StorageError::SchemaMismatch {
                    expected: format!("{rows} rows"),
                    got: format!("{name}: {} rows", data.len()),
                });
            }
            if let ColumnData::Dict { dict, codes } = data {
                if codes.iter().any(|&c| c as usize >= dict.len()) {
                    return Err(StorageError::Corrupt(format!(
                        "{name}: dict code out of range"
                    )));
                }
            }
        }
        // Encode + compress columns in parallel (striped like the
        // executor's worker pool), then append serially in column
        // order — per-column output is deterministic, so the file is
        // byte-identical to the serial path.
        let encode_one = |data: &ColumnData| -> (Vec<u8>, ChunkStats) {
            let encoded = match data {
                ColumnData::I64(v) => encode_i64(v),
                ColumnData::F64(v) => encode_f64(v),
                ColumnData::Str(v) => encode_str(v),
                ColumnData::Dict { dict, codes } => encode_dict(dict, codes),
            };
            (compress(&encoded), stats_of(data))
        };
        let workers = if rows >= PARALLEL_ENCODE_ROWS {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(columns.len())
        } else {
            1
        };
        let encoded: Vec<(Vec<u8>, ChunkStats)> = if workers > 1 {
            let mut slots: Vec<Option<(Vec<u8>, ChunkStats)>> = Vec::new();
            slots.resize_with(columns.len(), || None);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let encode_one = &encode_one;
                        scope.spawn(move || {
                            columns
                                .iter()
                                .enumerate()
                                .skip(w)
                                .step_by(workers)
                                .map(|(i, data)| (i, encode_one(data)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    for (i, out) in handle.join().expect("column encoder panicked") {
                        slots[i] = Some(out);
                    }
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("every column encoded"))
                .collect()
        } else {
            columns.iter().map(encode_one).collect()
        };
        let mut chunks = Vec::with_capacity(columns.len());
        for (compressed, stats) in encoded {
            let offset = self.buf.len();
            self.buf.extend_from_slice(&compressed);
            chunks.push(ChunkMeta {
                offset,
                len: compressed.len(),
                stats,
            });
        }
        let group = self.row_groups.len();
        for (pos, _, index) in &mut self.indexes {
            match &columns[*pos] {
                ColumnData::Str(v) => index.add_group(group, rows, v.iter().map(String::as_str)),
                ColumnData::Dict { dict, codes } => index.add_group(
                    group,
                    rows,
                    codes.iter().map(|&c| dict[c as usize].as_str()),
                ),
                // Unreachable: index_column checked the schema type and
                // the type check above enforced it for this group.
                _ => {}
            }
        }
        self.row_groups.push(RowGroupMeta { rows, chunks });
        Ok(())
    }

    /// Finalize: append the footer and return the file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let mut index_meta = Vec::with_capacity(self.indexes.len());
        for (_, name, index) in &self.indexes {
            let encoded = serde_json::to_vec(index).expect("index serializes");
            let compressed = compress(&encoded);
            index_meta.push(IndexMeta {
                column: name.clone(),
                offset: self.buf.len(),
                len: compressed.len(),
            });
            self.buf.extend_from_slice(&compressed);
        }
        let footer = Footer {
            schema: self.schema,
            row_groups: self.row_groups,
            indexes: index_meta,
        };
        let footer_json = serde_json::to_vec(&footer).expect("footer serializes");
        self.buf.extend_from_slice(&footer_json);
        self.buf
            .extend_from_slice(&(footer_json.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(MAGIC);
        self.buf
    }
}

/// A parsed table file ready for reads.
#[derive(Debug, Clone)]
pub struct TableFile {
    bytes: Vec<u8>,
    footer: Footer,
}

impl TableFile {
    /// Convenience: a writer for `schema`.
    pub fn writer(schema: TableSchema) -> TableWriter {
        TableWriter::new(schema)
    }

    /// Parse a file produced by [`TableWriter::finish`].
    pub fn open(bytes: Vec<u8>) -> Result<TableFile, StorageError> {
        let n = bytes.len();
        if n < MAGIC.len() * 2 + 8 || &bytes[..4] != MAGIC || &bytes[n - 4..] != MAGIC {
            return Err(StorageError::Corrupt("bad magic".into()));
        }
        let footer_len =
            u64::from_le_bytes(bytes[n - 12..n - 4].try_into().expect("8 bytes")) as usize;
        if footer_len + 16 > n {
            return Err(StorageError::Corrupt("footer length exceeds file".into()));
        }
        let footer_bytes = &bytes[n - 12 - footer_len..n - 12];
        let footer: Footer = serde_json::from_slice(footer_bytes)
            .map_err(|e| StorageError::Corrupt(format!("footer parse: {e}")))?;
        Ok(TableFile { bytes, footer })
    }

    /// The file's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.footer.schema
    }

    /// Number of row groups.
    pub fn row_group_count(&self) -> usize {
        self.footer.row_groups.len()
    }

    /// Total rows across row groups.
    pub fn num_rows(&self) -> usize {
        self.footer.row_groups.iter().map(|g| g.rows).sum()
    }

    /// Rows in one row group.
    pub fn row_group_rows(&self, group: usize) -> Option<usize> {
        self.footer.row_groups.get(group).map(|g| g.rows)
    }

    /// Size of the file in bytes.
    pub fn byte_size(&self) -> usize {
        self.bytes.len()
    }

    /// Read one column of one row group.
    pub fn read_column(&self, group: usize, column: usize) -> Result<ColumnData, StorageError> {
        let g = self
            .footer
            .row_groups
            .get(group)
            .ok_or_else(|| StorageError::NotFound(format!("row group {group}")))?;
        let meta = g
            .chunks
            .get(column)
            .ok_or_else(|| StorageError::NotFound(format!("column {column}")))?;
        let (_, ty) = &self.footer.schema.columns[column];
        let raw = decompress(&self.bytes[meta.offset..meta.offset + meta.len])?;
        match ty {
            ColumnType::I64 => Ok(ColumnData::I64(decode_i64(&raw, g.rows)?.into())),
            ColumnType::F64 => Ok(ColumnData::F64(decode_f64(&raw, g.rows)?.into())),
            ColumnType::Str => Ok(ColumnData::Str(decode_str(&raw, g.rows)?.into())),
            ColumnType::Dict => {
                let (dict, codes) = decode_dict(&raw, g.rows)?;
                Ok(ColumnData::Dict {
                    dict: Arc::new(dict),
                    codes: codes.into(),
                })
            }
        }
    }

    /// Read a whole row group.
    pub fn read_row_group(&self, group: usize) -> Result<Vec<ColumnData>, StorageError> {
        (0..self.footer.schema.columns.len())
            .map(|c| self.read_column(group, c))
            .collect()
    }

    /// Stats of one chunk.
    pub fn chunk_stats(&self, group: usize, column: usize) -> Option<&ChunkStats> {
        self.footer
            .row_groups
            .get(group)?
            .chunks
            .get(column)
            .map(|c| &c.stats)
    }

    /// Columns carrying a secondary index, in write order.
    pub fn indexed_columns(&self) -> Vec<&str> {
        self.footer
            .indexes
            .iter()
            .map(|m| m.column.as_str())
            .collect()
    }

    /// True when `column` carries a secondary index.
    pub fn has_index(&self, column: &str) -> bool {
        self.footer.indexes.iter().any(|m| m.column == column)
    }

    /// Decode the secondary index of `column`, if the file carries one.
    pub fn read_index(&self, column: &str) -> Result<Option<ColumnIndex>, StorageError> {
        let Some(meta) = self.footer.indexes.iter().find(|m| m.column == column) else {
            return Ok(None);
        };
        if meta.offset + meta.len > self.bytes.len() {
            return Err(StorageError::Corrupt(format!(
                "index for {column} exceeds file"
            )));
        }
        let raw = decompress(&self.bytes[meta.offset..meta.offset + meta.len])?;
        let index: ColumnIndex = serde_json::from_slice(&raw)
            .map_err(|e| StorageError::Corrupt(format!("index parse: {e}")))?;
        Ok(Some(index))
    }

    /// Row groups whose `column` stats intersect `[lo, hi]` — predicate
    /// pushdown for numeric range scans. Groups without stats are always
    /// included (they might match).
    pub fn row_groups_in_range(&self, column: &str, lo: f64, hi: f64) -> Vec<usize> {
        let Some(col) = self.footer.schema.index_of(column) else {
            return Vec::new();
        };
        self.footer
            .row_groups
            .iter()
            .enumerate()
            .filter(|(_, g)| match &g.chunks[col].stats {
                ChunkStats::I64 { min, max } => *max as f64 >= lo && *min as f64 <= hi,
                ChunkStats::F64 { min, max } => *max >= lo && *min <= hi,
                ChunkStats::None => true,
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// A memoizing per-chunk decoder over a [`TableFile`].
///
/// `column(group, col)` decompresses and decodes a chunk at most once
/// per `LazyTable`; repeat requests clone the cached [`ColumnData`],
/// which with buffer-backed columns is a refcount bump. The planner
/// holds one of these per scan so predicate evaluation and projection
/// hit the same decode, and pruning skips decode work entirely — not
/// just IO.
///
/// Decode happens under the cache lock: callers are scan executors
/// whose per-chunk work dwarfs lock hold time, and single-decode
/// semantics keep the `chunks_decoded` counter exact (the pruning
/// proptests assert on it).
#[derive(Debug)]
pub struct LazyTable {
    table: Arc<TableFile>,
    cache: std::sync::Mutex<std::collections::BTreeMap<(usize, usize), ColumnData>>,
    decoded: std::sync::atomic::AtomicU64,
    hits: std::sync::atomic::AtomicU64,
}

impl LazyTable {
    /// Wrap `table` with an empty decode cache.
    pub fn new(table: Arc<TableFile>) -> Self {
        LazyTable {
            table,
            cache: std::sync::Mutex::new(std::collections::BTreeMap::new()),
            decoded: std::sync::atomic::AtomicU64::new(0),
            hits: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The wrapped file.
    pub fn table(&self) -> &Arc<TableFile> {
        &self.table
    }

    /// One column of one row group, decoded on first request and
    /// shared (refcount bump) on every repeat.
    pub fn column(&self, group: usize, column: usize) -> Result<ColumnData, StorageError> {
        use std::sync::atomic::Ordering;
        let mut cache = self.cache.lock().expect("lazy cache poisoned");
        if let Some(cached) = cache.get(&(group, column)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(cached.clone());
        }
        let col = self.table.read_column(group, column)?;
        self.decoded.fetch_add(1, Ordering::Relaxed);
        cache.insert((group, column), col.clone());
        Ok(col)
    }

    /// Chunks decoded so far (each chunk counts once, ever).
    pub fn chunks_decoded(&self) -> u64 {
        self.decoded.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Requests served from the memo without decoding.
    pub fn cache_hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::new(&[
            ("ts_ms", ColumnType::I64),
            ("value", ColumnType::F64),
            ("sensor", ColumnType::Str),
        ])
    }

    fn group(base_ts: i64, rows: usize) -> Vec<ColumnData> {
        vec![
            ColumnData::I64((0..rows as i64).map(|i| base_ts + i * 1_000).collect()),
            ColumnData::F64((0..rows).map(|i| 100.0 + i as f64).collect()),
            ColumnData::Str((0..rows).map(|i| format!("s{}", i % 3)).collect()),
        ]
    }

    #[test]
    fn write_read_roundtrip() {
        let mut w = TableFile::writer(schema());
        w.write_row_group(&group(0, 100)).unwrap();
        w.write_row_group(&group(100_000, 50)).unwrap();
        let file = TableFile::open(w.finish()).unwrap();
        assert_eq!(file.row_group_count(), 2);
        assert_eq!(file.num_rows(), 150);
        let cols = file.read_row_group(0).unwrap();
        assert_eq!(cols, group(0, 100));
        let cols = file.read_row_group(1).unwrap();
        assert_eq!(cols, group(100_000, 50));
    }

    #[test]
    fn schema_violations_rejected() {
        let mut w = TableFile::writer(schema());
        // Wrong column count.
        assert!(w.write_row_group(&group(0, 10)[..2]).is_err());
        // Wrong type.
        let mut bad = group(0, 10);
        bad[1] = ColumnData::I64(vec![0; 10].into());
        assert!(w.write_row_group(&bad).is_err());
        // Ragged lengths.
        let mut ragged = group(0, 10);
        ragged[2] = ColumnData::Str(vec!["x".to_string(); 9].into());
        assert!(w.write_row_group(&ragged).is_err());
    }

    #[test]
    fn predicate_pushdown_skips_groups() {
        let mut w = TableFile::writer(schema());
        for g in 0..10 {
            w.write_row_group(&group(g * 1_000_000, 100)).unwrap();
        }
        let file = TableFile::open(w.finish()).unwrap();
        // ts in [2.0e6, 3.2e6] covers groups 2 and 3 only.
        let groups = file.row_groups_in_range("ts_ms", 2.0e6, 3.2e6);
        assert_eq!(groups, vec![2, 3]);
        // Value range hitting every group.
        let groups = file.row_groups_in_range("value", 0.0, 1e9);
        assert_eq!(groups.len(), 10);
        // String columns have no stats: every group is a candidate.
        let groups = file.row_groups_in_range("sensor", 0.0, 1.0);
        assert_eq!(groups.len(), 10);
        // Unknown column matches nothing.
        assert!(file.row_groups_in_range("nope", 0.0, 1.0).is_empty());
    }

    #[test]
    fn stats_ignore_nan() {
        let s = TableSchema::new(&[("v", ColumnType::F64)]);
        let mut w = TableFile::writer(s);
        w.write_row_group(&[ColumnData::F64(vec![f64::NAN, 1.0, 5.0, f64::NAN].into())])
            .unwrap();
        let file = TableFile::open(w.finish()).unwrap();
        match file.chunk_stats(0, 0).unwrap() {
            ChunkStats::F64 { min, max } => {
                assert_eq!(*min, 1.0);
                assert_eq!(*max, 5.0);
            }
            other => panic!("unexpected stats {other:?}"),
        }
    }

    #[test]
    fn compression_beats_row_format() {
        // Realistic long-format telemetry: repetitive sensor names,
        // near-constant values, regular timestamps.
        let rows = 50_000usize;
        let cols = vec![
            ColumnData::I64(
                (0..rows as i64)
                    .map(|i| 1_700_000_000_000 + i * 1_000)
                    .collect(),
            ),
            ColumnData::F64(
                (0..rows)
                    .map(|i| 500.0 + f64::from((i % 7) as u8))
                    .collect(),
            ),
            ColumnData::Str(
                (0..rows)
                    .map(|i| format!("node_power_w_{}", i % 16))
                    .collect(),
            ),
        ];
        let mut w = TableFile::writer(schema());
        w.write_row_group(&cols).unwrap();
        let file_bytes = w.finish();
        // A row-oriented JSON-ish encoding of the same data:
        let row_bytes: usize = (0..rows)
            .map(|i| {
                format!(
                    "{{\"ts\":{},\"value\":{},\"sensor\":\"node_power_w_{}\"}}",
                    1_700_000_000_000i64 + i as i64 * 1_000,
                    500.0 + f64::from((i % 7) as u8),
                    i % 16
                )
                .len()
            })
            .sum();
        assert!(
            file_bytes.len() * 5 < row_bytes,
            "columnar {} vs row {} — expected >=5x compression",
            file_bytes.len(),
            row_bytes
        );
        // And it still reads back.
        let f = TableFile::open(file_bytes).unwrap();
        assert_eq!(f.num_rows(), rows);
    }

    #[test]
    fn dict_columns_roundtrip_without_materializing() {
        let s = TableSchema::new(&[("device", ColumnType::Dict)]);
        let dict = vec!["node".to_string(), "cpu0".to_string(), "gpu1".to_string()];
        let codes: Vec<u32> = (0..5_000).map(|i| (i % 3) as u32).collect();
        let mut w = TableFile::writer(s);
        w.write_row_group(&[ColumnData::dict(dict.clone(), codes.clone())])
            .unwrap();
        let file = TableFile::open(w.finish()).unwrap();
        assert_eq!(file.schema().columns[0].1, ColumnType::Dict);
        match file.read_column(0, 0).unwrap() {
            ColumnData::Dict {
                dict: got_dict,
                codes: got_codes,
            } => {
                assert_eq!(*got_dict, dict);
                assert_eq!(got_codes, codes);
            }
            other => panic!("expected dict column, got {other:?}"),
        }
    }

    #[test]
    fn str_and_dict_are_write_compatible_and_logically_equal() {
        let strings: Vec<String> = (0..64).map(|i| format!("s{}", i % 4)).collect();
        let dict = vec![
            "s0".to_string(),
            "s1".to_string(),
            "s2".to_string(),
            "s3".to_string(),
        ];
        let codes: Vec<u32> = (0..64).map(|i| (i % 4) as u32).collect();
        let str_col = ColumnData::Str(strings.into());
        let dict_col = ColumnData::dict(dict, codes);
        assert_eq!(str_col, dict_col, "logical equality across representations");
        // A Dict column satisfies a Str schema slot and vice versa, and
        // the chunk bytes are identical either way.
        let mut w1 = TableFile::writer(TableSchema::new(&[("s", ColumnType::Str)]));
        w1.write_row_group(std::slice::from_ref(&dict_col)).unwrap();
        let mut w2 = TableFile::writer(TableSchema::new(&[("s", ColumnType::Str)]));
        w2.write_row_group(std::slice::from_ref(&str_col)).unwrap();
        assert_eq!(
            w1.finish(),
            w2.finish(),
            "bytes must not depend on representation"
        );
        let mut w3 = TableFile::writer(TableSchema::new(&[("s", ColumnType::Dict)]));
        w3.write_row_group(std::slice::from_ref(&str_col)).unwrap();
        let file = TableFile::open(w3.finish()).unwrap();
        assert_eq!(file.read_column(0, 0).unwrap(), dict_col);
    }

    #[test]
    fn dict_code_out_of_range_rejected() {
        let mut w = TableFile::writer(TableSchema::new(&[("s", ColumnType::Dict)]));
        let bad = ColumnData::dict(vec!["a".to_string()], vec![0, 1]);
        assert!(w.write_row_group(&[bad]).is_err());
    }

    #[test]
    fn corrupt_files_rejected() {
        assert!(TableFile::open(vec![]).is_err());
        assert!(TableFile::open(b"OCF1garbageOCF1xxx".to_vec()).is_err());
        let mut w = TableFile::writer(schema());
        w.write_row_group(&group(0, 10)).unwrap();
        let mut bytes = w.finish();
        // Flip a byte in the middle of the data region.
        bytes[10] ^= 0xff;
        let f = TableFile::open(bytes);
        // Footer still parses; reading the damaged chunk must error, not panic.
        if let Ok(f) = f {
            let r = f.read_row_group(0);
            assert!(r.is_err() || r.is_ok()); // must not panic; often corrupt
        }
    }

    #[test]
    fn secondary_index_roundtrips_and_prunes() {
        let mut w = TableFile::writer(schema());
        w.index_column("sensor").unwrap();
        // Idempotent; unknown / non-categorical columns rejected.
        w.index_column("sensor").unwrap();
        assert!(w.index_column("value").is_err());
        assert!(w.index_column("nope").is_err());
        for g in 0..4 {
            let rows = 10usize;
            w.write_row_group(&[
                ColumnData::I64((0..rows as i64).map(|i| g * 10_000 + i).collect()),
                ColumnData::F64(vec![1.0; rows].into()),
                // Group g holds only sensor "s{g%2}".
                ColumnData::Str(vec![format!("s{}", g % 2); rows].into()),
            ])
            .unwrap();
        }
        let file = TableFile::open(w.finish()).unwrap();
        assert_eq!(file.indexed_columns(), vec!["sensor"]);
        assert!(file.has_index("sensor"));
        assert!(!file.has_index("value"));
        let ix = file.read_index("sensor").unwrap().unwrap();
        assert_eq!(ix.groups_with("s0"), vec![0, 2]);
        assert_eq!(ix.groups_with("s1"), vec![1, 3]);
        assert!(ix.groups_with("s9").is_empty());
        assert_eq!(ix.rows_in_group("s0", 0).unwrap().count_ones(), 10);
        assert!(file.read_index("value").unwrap().is_none());
        // Data pages still read back untouched.
        assert_eq!(file.num_rows(), 40);
        assert!(file.read_row_group(3).is_ok());
    }

    #[test]
    fn index_works_on_dict_columns_too() {
        let s = TableSchema::new(&[("device", ColumnType::Dict)]);
        let mut w = TableFile::writer(s);
        w.index_column("device").unwrap();
        let dict = vec!["cpu0".to_string(), "gpu1".to_string()];
        w.write_row_group(&[ColumnData::dict(dict.clone(), vec![0, 1, 0, 0])])
            .unwrap();
        w.write_row_group(&[ColumnData::dict(dict, vec![1, 1])])
            .unwrap();
        let file = TableFile::open(w.finish()).unwrap();
        let ix = file.read_index("device").unwrap().unwrap();
        assert_eq!(ix.groups_with("cpu0"), vec![0]);
        assert_eq!(ix.groups_with("gpu1"), vec![0, 1]);
        assert_eq!(
            ix.rows_in_group("cpu0", 0)
                .unwrap()
                .ones()
                .collect::<Vec<_>>(),
            vec![0, 2, 3]
        );
    }

    #[test]
    fn unindexed_files_are_byte_identical_to_pre_index_format() {
        // Writing without index_column must not change a single byte:
        // the footer's `indexes` field is skipped when empty.
        let build = |index: bool| {
            let mut w = TableFile::writer(schema());
            if index {
                w.index_column("sensor").unwrap();
            }
            w.write_row_group(&group(0, 20)).unwrap();
            w.finish()
        };
        let plain = build(false);
        let indexed = build(true);
        assert!(!String::from_utf8_lossy(&plain).contains("indexes"));
        assert!(indexed.len() > plain.len());
        // An indexed file still opens and reads through the plain path.
        let file = TableFile::open(indexed).unwrap();
        assert_eq!(file.read_row_group(0).unwrap(), group(0, 20));
        // index_column after data is written is rejected.
        let mut w = TableFile::writer(schema());
        w.write_row_group(&group(0, 5)).unwrap();
        assert!(w.index_column("sensor").is_err());
    }

    #[test]
    fn empty_file_roundtrip() {
        let w = TableFile::writer(schema());
        let f = TableFile::open(w.finish()).unwrap();
        assert_eq!(f.num_rows(), 0);
        assert_eq!(f.row_group_count(), 0);
    }
}
