//! Copacetic integration: detection from the facility's live event
//! stream (§VII-B), via the broker rather than in-memory handoff.

use bytes::Bytes;
use oda::analytics::Copacetic;
use oda::core::config::FacilityConfig;
use oda::core::facility::Facility;
use oda::stream::Consumer;
use oda::telemetry::events::{Event, Incident};

#[test]
fn injected_incident_is_detected_from_the_stream() {
    let mut config = FacilityConfig::tiny(91);
    config.tick_ms = 60_000;
    let mut facility = Facility::build(config);
    // Schedule a credential-stuffing incident one hour in.
    facility.generator_mut(0).inject_incident(Incident {
        start_ms: 3_600_000,
        user: 5,
        failures: 8,
    });
    facility.run(120); // two hours

    // Consume the events topic like a SIEM subscriber would.
    let mut consumer = Consumer::subscribe(facility.broker(), "copacetic", "tiny.events").unwrap();
    let mut detector = Copacetic::new();
    let mut alerts = Vec::new();
    loop {
        let records = consumer.poll(256).unwrap();
        if records.is_empty() {
            break;
        }
        let mut events: Vec<Event> = records
            .iter()
            .map(|r| serde_json::from_slice(&r.value).expect("event json"))
            .collect();
        events.sort_by_key(|e| e.ts_ms);
        alerts.extend(detector.ingest(&events));
        consumer.commit();
    }
    let auth_alerts: Vec<_> = alerts
        .iter()
        .filter(|a| a.rule == "auth-burst-then-success")
        .collect();
    assert_eq!(
        auth_alerts.len(),
        1,
        "exactly the injected incident: {alerts:?}"
    );
    assert_eq!(auth_alerts[0].user, Some(5));
    assert!(auth_alerts[0].ts_ms >= 3_600_000);
}

#[test]
fn quiet_stream_raises_no_auth_alerts() {
    let mut config = FacilityConfig::tiny(92);
    config.tick_ms = 60_000;
    // Few users -> low benign auth noise; no injected incident.
    config.workload.users = 5;
    let mut facility = Facility::build(config);
    facility.run(240);
    let events = facility.events(0).to_vec();
    let mut sorted = events.clone();
    sorted.sort_by_key(|e| e.ts_ms);
    let mut detector = Copacetic::new();
    let alerts = detector.ingest(&sorted);
    assert!(
        alerts.iter().all(|a| a.rule != "auth-burst-then-success"),
        "benign traffic must not trip the burst rule: {alerts:?}"
    );
}

#[test]
fn stream_and_batch_detection_agree() {
    let mut config = FacilityConfig::tiny(93);
    config.tick_ms = 60_000;
    let mut facility = Facility::build(config);
    facility.generator_mut(0).inject_incident(Incident {
        start_ms: 1_800_000,
        user: 2,
        failures: 6,
    });
    facility.run(90);
    let mut events = facility.events(0).to_vec();
    events.sort_by_key(|e| e.ts_ms);
    // Batch: all at once.
    let mut batch = Copacetic::new();
    let batch_alerts = batch.ingest(&events);
    // Streaming: one event at a time.
    let mut streaming = Copacetic::new();
    let mut stream_alerts = Vec::new();
    for e in &events {
        stream_alerts.extend(streaming.ingest(std::slice::from_ref(e)));
    }
    assert_eq!(batch_alerts, stream_alerts);
    // Serialization of events over the broker must not perturb anything.
    let reserialized: Vec<Event> = events
        .iter()
        .map(|e| {
            let bytes = Bytes::from(serde_json::to_vec(e).unwrap());
            serde_json::from_slice(&bytes).unwrap()
        })
        .collect();
    assert_eq!(reserialized, events);
}
