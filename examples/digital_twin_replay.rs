//! Fig. 11: ExaDigiT-style telemetry replay and what-if scenarios.
//!
//! Replays an HPL run's job schedule through the twin's white-box power
//! and cooling models, validates against the "measured" facility power
//! telemetry, and then runs extrapolation scenarios telemetry never saw
//! (warm-water set point, heat wave).
//!
//! Run with: `cargo run --release --example digital_twin_replay`

use oda::analytics::sparkline::sparkline_fit;
use oda::telemetry::SystemModel;
use oda::twin::power::PowerSim;
use oda::twin::replay::replay;
use oda::twin::scenario::{hpl_run, run_scenario, Scenario};

fn main() {
    let system = SystemModel::tiny();
    // The HPL run of the paper's validation: full machine, 2 hours.
    let job = hpl_run(&system, 1.0, 2.0);
    let jobs = vec![job];

    // "Measured" telemetry: the facility power a real substation meter
    // would report — same physics, sensor noise on top.
    let sim = PowerSim::new(system.clone(), jobs.clone());
    let measured: Vec<(i64, f64)> = (0..240)
        .map(|i| {
            let ts = i * 30_000;
            let truth = sim.sample(ts).facility_w;
            let noise = 1.0 + 0.015 * ((i as f64) * 0.9).sin() + 0.01 * ((i as f64) * 0.13).cos();
            (ts, truth * noise)
        })
        .collect();

    let report = replay(&system, &jobs, &measured);
    println!(
        "=== telemetry replay validation (HPL run, {} samples) ===",
        report.samples
    );
    println!("  measured  mean {:>10.1} W", report.mean_measured_w);
    println!("  predicted mean {:>10.1} W", report.mean_predicted_w);
    println!("  MAPE          {:>10.2} %", report.power_mape * 100.0);
    println!("  RMSE          {:>10.1} W", report.power_rmse_w);
    println!("  correlation   {:>10.3}", report.power_correlation);
    println!("  mean rect+conv losses {:>8.1} W", report.mean_losses_w);
    println!();
    let measured_series: Vec<f64> = measured.iter().map(|m| m.1).collect();
    println!("  measured power  {}", sparkline_fit(&measured_series, 60));
    println!(
        "  predicted power {}",
        sparkline_fit(&report.predicted_w, 60)
    );
    println!(
        "  loop return C   {}",
        sparkline_fit(&report.cooling_return_c, 60)
    );
    println!();

    println!("=== what-if scenarios (extrapolation beyond observed states) ===");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12} {:>12} {:>6}",
        "scenario", "load", "mean kW", "energy kWh", "losses kW", "peak ret C", "PUE"
    );
    let scenarios = [
        Scenario::baseline(),
        Scenario {
            name: "half-load".into(),
            load_fraction: 0.5,
            ..Scenario::baseline()
        },
        Scenario {
            name: "warm-water".into(),
            supply_setpoint_c: 30.0,
            ..Scenario::baseline()
        },
        Scenario {
            name: "heat-wave".into(),
            wet_bulb_c: 30.0,
            ..Scenario::baseline()
        },
    ];
    for sc in scenarios {
        let o = run_scenario(&system, &sc);
        println!(
            "{:<14} {:>9.0}% {:>12.2} {:>12.2} {:>12.3} {:>12.2} {:>6.3}",
            o.scenario.name,
            o.scenario.load_fraction * 100.0,
            o.mean_facility_w / 1_000.0,
            o.energy_kwh,
            o.mean_losses_w / 1_000.0,
            o.peak_return_c,
            o.pue
        );
    }
}
