//! Fig. 4-a: raw ingest rates — analytic accounting validated by a
//! measured generator run.
//!
//! Prints the per-source daily volume table for both system generations
//! (the paper's headline: 4.2-4.5 TB/day facility-wide, ~0.5 TB/day of
//! power/thermal data on the Frontier-class system), then validates the
//! analytic power/thermal number against a short measured run of the
//! actual generator at full Compass scale.
//!
//! Run with: `cargo run --release --example ingest_day`

use oda::telemetry::rates::{facility_tb_per_day, total_tb_per_day, volume_by_source};
use oda::telemetry::record::OBS_RAW_BYTES;
use oda::telemetry::sensors::DataSource;
use oda::telemetry::{SystemModel, TelemetryGenerator};

fn main() {
    println!("=== Fig. 4-a: analytic daily ingest by source ===\n");
    for system in [SystemModel::mountain(), SystemModel::compass()] {
        println!("{} ({} nodes):", system.name, system.node_count());
        println!(
            "  {:<22} {:>16} {:>12}",
            "source", "samples/day", "raw GB/day"
        );
        for v in volume_by_source(&system) {
            println!(
                "  {:<22} {:>16} {:>12.1}",
                v.source.label(),
                v.samples_per_day,
                v.raw_bytes_per_day as f64 / 1e9
            );
        }
        println!(
            "  {:<22} {:>16} {:>12.2} TB/day\n",
            "TOTAL",
            "",
            total_tb_per_day(&system)
        );
    }
    println!(
        "facility total: {:.2} TB/day (paper: 4.2-4.5)\n",
        facility_tb_per_day()
    );

    // Validation: measure the generator for a short window at full
    // Compass scale and extrapolate the power/thermal stream.
    println!("=== validating analytics against a measured run (compass, 20 s) ===");
    let system = SystemModel::compass();
    let mut generator = TelemetryGenerator::new(system.clone(), 7);
    let catalog = generator.catalog().clone();
    let power_ids: Vec<u16> = catalog
        .by_source(DataSource::PowerTemp)
        .map(|s| s.id)
        .collect();
    let seconds = 20;
    let mut power_samples = 0usize;
    let start = std::time::Instant::now();
    let mut total_obs = 0usize;
    for _ in 0..seconds {
        let batch = generator.next_batch();
        total_obs += batch.observations.len();
        power_samples += batch
            .observations
            .iter()
            .filter(|o| power_ids.contains(&o.sensor))
            .count();
    }
    let wall = start.elapsed();
    let measured_tb_day =
        power_samples as f64 / seconds as f64 * 86_400.0 * OBS_RAW_BYTES as f64 / 1e12;
    let analytic = volume_by_source(&system)
        .into_iter()
        .find(|v| v.source == DataSource::PowerTemp)
        .unwrap()
        .tb_per_day();
    println!(
        "  generated {total_obs} observations in {wall:.2?} ({:.0} obs/s of wall time)",
        total_obs as f64 / wall.as_secs_f64()
    );
    println!("  measured power/thermal rate  -> {measured_tb_day:.3} TB/day");
    println!("  analytic power/thermal rate  -> {analytic:.3} TB/day");
    let rel = (measured_tb_day - analytic).abs() / analytic;
    println!(
        "  relative difference: {:.1} % {}",
        rel * 100.0,
        if rel < 0.05 { "(validated)" } else { "(CHECK)" }
    );
}
