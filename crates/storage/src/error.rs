//! Error type for storage operations.

use std::fmt;

/// Errors from encoding, file parsing, and tier operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Data did not parse as the expected format.
    Corrupt(String),
    /// Referenced object/dataset/segment does not exist.
    NotFound(String),
    /// Schema mismatch between writer and existing dataset.
    SchemaMismatch {
        /// What the dataset expects.
        expected: String,
        /// What the writer supplied.
        got: String,
    },
    /// Operation invalid in the current state (e.g. writing a sealed
    /// archive).
    InvalidState(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            StorageError::NotFound(m) => write!(f, "not found: {m}"),
            StorageError::SchemaMismatch { expected, got } => {
                write!(f, "schema mismatch: expected {expected}, got {got}")
            }
            StorageError::InvalidState(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StorageError::Corrupt("x".into())
            .to_string()
            .contains("corrupt"));
        assert!(StorageError::NotFound("y".into()).to_string().contains("y"));
    }
}
