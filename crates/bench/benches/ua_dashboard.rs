//! Experiment F6 (paper Fig. 6): UA dashboard vs manual per-source scans.
//!
//! At facility scale (20k jobs, 50k events, 400 users) the compiled,
//! indexed dashboard answers a ticket in one call; the "old method"
//! re-scans every raw source per ticket. Expected shape: a large factor
//! in favor of the dashboard, growing with history size — the paper's
//! "significant decrease in the time it takes to resolve user problems".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oda_analytics::dashboard::{diagnose_manually, UaDashboard};
use oda_bench::job_fleet;
use oda_storage::lake::Lake;
use oda_telemetry::events::{Event, EventKind};
use std::hint::black_box;
use std::sync::Arc;

fn events_fleet(n: usize, nodes: u32, span_ms: i64) -> Vec<Event> {
    (0..n)
        .map(|i| {
            let kind = EventKind::ALL[i % EventKind::ALL.len()];
            Event {
                ts_ms: (i as i64 * span_ms) / n as i64,
                kind,
                severity: kind.severity(),
                node: Some((i as u32 * 7) % nodes),
                user: None,
                message: format!("{} synthetic", kind.label()),
            }
        })
        .collect()
}

fn bench_dashboard(c: &mut Criterion) {
    const SPAN: i64 = 7 * 86_400_000;
    let mut group = c.benchmark_group("f6_ticket_diagnosis");
    group.sample_size(20);
    for (jobs_n, events_n) in [(2_000, 5_000), (20_000, 50_000)] {
        let jobs = job_fleet(jobs_n, 400, 512, SPAN);
        let events = events_fleet(events_n, 512, SPAN);
        let lake = Arc::new(Lake::with_layout(3_600_000, i64::MAX / 4));
        // Sparse power series (hourly means) for the nodes.
        for node in 0..512u32 {
            for h in 0..24 {
                lake.insert(&format!("node{node}/node_power_w"), h * 3_600_000, 600.0);
            }
        }
        let dashboard = UaDashboard::compile(&jobs, &events, lake.clone());
        group.bench_with_input(BenchmarkId::new("dashboard", jobs_n), &jobs_n, |b, _| {
            let mut user = 0u32;
            b.iter(|| {
                user = (user + 17) % 400;
                black_box(dashboard.diagnose(user, 0, SPAN))
            })
        });
        group.bench_with_input(BenchmarkId::new("manual_scans", jobs_n), &jobs_n, |b, _| {
            let mut user = 0u32;
            b.iter(|| {
                user = (user + 17) % 400;
                black_box(diagnose_manually(&jobs, &events, &lake, "", user, 0, SPAN))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dashboard);
criterion_main!(benches);
