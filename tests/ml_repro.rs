//! Fig. 9: repeatable, reproducible ML pipelines.
//!
//! The paper's ML engineering loop: Silver batches → versioned feature
//! store (DVC role) → training → experiment tracking + model registry
//! (MLflow role). The assertable property: pinning the same feature
//! store version and seed reproduces the model **bit for bit**, while
//! changing either produces a different artifact.

use oda::ml::classifier::{ProfileClassifier, TrainConfig};
use oda::ml::features::featurize;
use oda::ml::store::{FeatureSet, FeatureStore};
use oda::ml::tracking::ExperimentTracker;
use std::collections::BTreeMap;

/// Synthetic archetype profiles standing in for a Silver batch import.
fn profile_batch(per_class: usize, seed: u64) -> Vec<(Vec<f64>, String)> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for _ in 0..per_class {
        let phase: f64 = rng.random::<f64>() * std::f64::consts::TAU;
        let n = 150;
        let mk = |f: &dyn Fn(f64) -> f64| -> Vec<f64> { (0..n).map(|i| f(i as f64)).collect() };
        out.push((mk(&|t| (t / 10.0).min(1.0) * 0.9), "hpl".into()));
        out.push((
            mk(&|t| {
                if ((t + phase * 10.0) % 40.0) < 30.0 {
                    0.8
                } else {
                    0.2
                }
            }),
            "climate".into(),
        ));
        out.push((mk(&|t| 0.6 + 0.05 * (t * 0.1 + phase).sin()), "md".into()));
        out.push((
            mk(&|t| 0.1 + 0.04 * (t * 0.5 + phase).sin().abs()),
            "debug".into(),
        ));
    }
    out
}

fn train_run(
    store: &FeatureStore,
    tracker: &ExperimentTracker,
    dataset_version: &str,
    seed: u64,
) -> (String, f64) {
    let set = store
        .get("profiles", dataset_version)
        .expect("pinned version exists");
    // Reconstitute the (samples, label) pairs the classifier trains on.
    // The feature store holds raw profile samples here so the whole
    // featurize+train path is replayed from the pin.
    let data: Vec<(Vec<f64>, String)> = set
        .features
        .iter()
        .cloned()
        .zip(set.labels.iter().cloned())
        .collect();
    let config = TrainConfig {
        seed,
        epochs: 40,
        ..TrainConfig::default()
    };
    let (clf, eval) = ProfileClassifier::train(&data, &config);
    let bytes = clf.to_bytes();
    let params: BTreeMap<String, String> = [
        ("dataset_version".to_string(), dataset_version.to_string()),
        ("seed".to_string(), seed.to_string()),
    ]
    .into_iter()
    .collect();
    let metrics: BTreeMap<String, f64> = [("test_accuracy".to_string(), eval.test_accuracy)]
        .into_iter()
        .collect();
    let run_id = tracker.log_run("profile-clf", params, metrics, Some(&bytes));
    let run = &tracker.runs("profile-clf")[run_id as usize];
    (
        run.model_hash.clone().expect("model registered"),
        eval.test_accuracy,
    )
}

#[test]
fn same_version_same_seed_is_bit_reproducible() {
    let store = FeatureStore::new();
    let tracker = ExperimentTracker::new();
    let batch = profile_batch(25, 7);
    let version = store.put(
        "profiles",
        FeatureSet {
            features: batch.iter().map(|(s, _)| s.clone()).collect(),
            labels: batch.iter().map(|(_, l)| l.clone()).collect(),
        },
    );
    let (hash_a, acc_a) = train_run(&store, &tracker, &version, 42);
    let (hash_b, acc_b) = train_run(&store, &tracker, &version, 42);
    assert_eq!(
        hash_a, hash_b,
        "same pin + seed must reproduce the model bit-for-bit"
    );
    assert_eq!(acc_a, acc_b);
    // The registry holds exactly one artifact for the shared hash.
    assert!(tracker.model("profile-clf", &hash_a).is_some());
}

#[test]
fn different_seed_or_data_changes_the_artifact() {
    let store = FeatureStore::new();
    let tracker = ExperimentTracker::new();
    let batch_v1 = profile_batch(25, 7);
    let v1 = store.put(
        "profiles",
        FeatureSet {
            features: batch_v1.iter().map(|(s, _)| s.clone()).collect(),
            labels: batch_v1.iter().map(|(_, l)| l.clone()).collect(),
        },
    );
    let batch_v2 = profile_batch(25, 8);
    let v2 = store.put(
        "profiles",
        FeatureSet {
            features: batch_v2.iter().map(|(s, _)| s.clone()).collect(),
            labels: batch_v2.iter().map(|(_, l)| l.clone()).collect(),
        },
    );
    assert_ne!(v1, v2, "different data content must version differently");
    let (h_seed1, _) = train_run(&store, &tracker, &v1, 1);
    let (h_seed2, _) = train_run(&store, &tracker, &v1, 2);
    let (h_data2, _) = train_run(&store, &tracker, &v2, 1);
    assert_ne!(h_seed1, h_seed2, "seed is part of the lineage");
    assert_ne!(h_seed1, h_data2, "data version is part of the lineage");
    // Old pins remain trainable after new versions land (v1 retrieved
    // above even though v2 is latest).
    assert_eq!(store.latest_version("profiles"), Some(v2));
}

#[test]
fn best_run_selection_feeds_inference() {
    let store = FeatureStore::new();
    let tracker = ExperimentTracker::new();
    let batch = profile_batch(25, 3);
    let version = store.put(
        "profiles",
        FeatureSet {
            features: batch.iter().map(|(s, _)| s.clone()).collect(),
            labels: batch.iter().map(|(_, l)| l.clone()).collect(),
        },
    );
    for seed in [1, 2, 3] {
        train_run(&store, &tracker, &version, seed);
    }
    let best = tracker
        .best_run("profile-clf", "test_accuracy")
        .expect("runs exist");
    let bytes = tracker
        .model(
            "profile-clf",
            best.model_hash.as_deref().expect("registered"),
        )
        .expect("artifact fetchable");
    let clf = ProfileClassifier::from_bytes(&bytes).expect("model parses");
    // Downstream inference: classify a fresh steady profile.
    let steady: Vec<f64> = (0..150)
        .map(|i| 0.6 + 0.05 * (i as f64 * 0.1).sin())
        .collect();
    assert_eq!(clf.classify(&steady), "md");
    // Featurization is part of the deployed path.
    assert_eq!(featurize(&steady).len(), oda::ml::features::FEATURE_DIM);
}
