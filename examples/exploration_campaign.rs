//! §VI: a data exploration campaign, end to end.
//!
//! "Data exploration campaigns first focus on building a data
//! dictionary ... initial efforts focus on identifying and refining the
//! processes necessary to transform raw data (Bronze state) into a more
//! usable form (Silver state)." The campaign driver runs both phases
//! and then promotes the stream's maturity through the gated L0-L5
//! ladder — and the I/O stream demonstrates the §IV-B per-job
//! instrumentation payoff (Darshan-style job I/O profiles).
//!
//! Run with: `cargo run --release --example exploration_campaign`

use oda::analytics::io_profile::extract_io_profiles;
use oda::core::campaign::run_campaign;
use oda::core::config::FacilityConfig;
use oda::core::facility::Facility;
use oda::core::ingest::topics;
use oda::govern::dictionary::DataDictionary;
use oda::govern::maturity::{Area, MaturityMatrix, StreamRow};
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform};
use oda::pipeline::streaming::{MemorySink, StreamingQuery};
use oda::stream::Consumer;
use oda::telemetry::SensorCatalog;

fn main() {
    let mut config = FacilityConfig::tiny(314);
    config.tick_ms = 15_000;
    config.workload.duration_scale = 0.25;
    let mut facility = Facility::build(config);
    let mut dictionary = DataDictionary::new();
    let mut matrix = MaturityMatrix::new();

    println!("=== campaigns: one per stream the R&D area needs ===");
    for stream in [
        StreamRow::PowerTemp,
        StreamRow::StorageClient,
        StreamRow::ResourceUtil,
    ] {
        let report = run_campaign(
            &mut facility,
            stream,
            Area::RnD,
            &mut dictionary,
            &mut matrix,
        )
        .expect("campaign");
        println!(
            "  {:<16} dictionary entries {:>2}, silver rows {:>6}, maturity -> {}",
            report.stream.label(),
            report.dictionary_entries,
            report.silver_rows,
            report.reached.label()
        );
    }
    println!(
        "dictionary coverage: {:.0}% of Fig. 3 streams\n",
        dictionary.coverage() * 100.0
    );

    // The campaign's payoff: the refined stream supports a new use case
    // immediately — per-job I/O profiles from the storage-client stream.
    println!("=== per-job I/O profiles from the refined stream (Darshan role) ===");
    facility.run(4_000);
    let system = facility.systems()[0].clone();
    let (bronze, _, _) = topics(&system.name);
    let consumer = Consumer::subscribe(facility.broker(), "io", &bronze).expect("subscribe");
    let mut query = StreamingQuery::builder()
        .source(consumer)
        .decoder(observation_decoder(SensorCatalog::for_system(&system)))
        .transform(streaming_silver_transform(15_000, 0))
        .checkpoints(CheckpointStore::new())
        .workers(2)
        .build()
        .expect("query");
    let mut sink = MemorySink::new();
    query.run_to_completion(&mut sink).expect("stream");
    let silver = sink.concat().expect("silver");
    let jobs = facility.jobs(0).to_vec();
    let mut profiles = extract_io_profiles(&silver, &jobs).expect("io profiles");
    profiles.sort_by(|a, b| b.bandwidth_mb_s().total_cmp(&a.bandwidth_mb_s()));
    println!(
        "{:>6} {:>8} {:>12} {:>12} {:>10} {:>8}",
        "job", "nodes", "read MB", "write MB", "MB/s", "write%"
    );
    for p in profiles.iter().take(10) {
        println!(
            "{:>6} {:>8} {:>12.1} {:>12.1} {:>10.2} {:>7.0}%",
            p.job_id,
            p.nodes,
            p.read_bytes / 1e6,
            p.write_bytes / 1e6,
            p.bandwidth_mb_s(),
            p.write_fraction() * 100.0
        );
    }
    println!("({} jobs profiled in total)", profiles.len());
}
