//! Deterministic fault replay: one seeded chaos schedule, end to end.
//!
//! Streams a synthetic telemetry day through the medallion pipeline
//! while a seeded [`FaultPlan`] injects produce timeouts, fetch errors,
//! crashes in the sink→checkpoint window, and lost checkpoint commits.
//! A supervisor loop restarts the query from the checkpoint store after
//! every fatal fault; at the end the example prints the recovery
//! timeline (every fault that fired, in order) and shows that the Gold
//! output matches a fault-free run of the same day.
//!
//! Run with: `cargo run --release --example fault_replay`
//! Change the seed to replay a different — but equally reproducible —
//! fault schedule.

use bytes::Bytes;
use oda::faults::{FaultPlan, FaultPoint, FaultSite, Retry};
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform};
use oda::pipeline::ops::{group_by, Agg, AggSpec};
use oda::pipeline::streaming::MemorySink;
use oda::pipeline::{Frame, StreamingQuery};
use oda::stream::{Broker, Consumer, Producer, RetentionPolicy};
use oda::telemetry::record::Observation;
use oda::telemetry::{SystemModel, TelemetryGenerator};
use std::sync::Arc;

const SEED: u64 = 4242;
const TOPIC: &str = "bronze";
const BATCHES: usize = 120;

fn main() {
    println!("== deterministic fault replay, seed {SEED} ==\n");
    let plan = Arc::new(FaultPlan::chaos(SEED));
    println!("fault spec: {:?}\n", plan.spec());

    // --- Ingest: a compressed synthetic day, produced WITH faults armed.
    // The producer rides through injected timeouts with bounded retries,
    // so the broker contents still match a fault-free ingest.
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 7);
    let broker = Broker::new();
    broker
        .create_topic(TOPIC, 2, RetentionPolicy::unbounded())
        .unwrap();
    broker.arm_faults(plan.clone() as Arc<dyn FaultPoint>);
    let producer = Producer::new(broker.clone(), TOPIC).unwrap();
    let retry = Retry::with_attempts(25);
    for _ in 0..BATCHES {
        let batch = generator.next_batch();
        let payload = Observation::encode_batch(&batch.observations);
        producer
            .send_retrying(
                &retry,
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(payload),
            )
            .expect("bounded retries exhausted");
    }
    let timeouts = plan
        .injected_by_site()
        .get(&FaultSite::Produce)
        .copied()
        .unwrap_or(0);
    println!(
        "ingest: {BATCHES} batches produced, {timeouts} produce timeout(s) absorbed by retries"
    );

    // --- Refine: supervisor loop around the streaming Silver query.
    let catalog = generator.catalog().clone();
    let checkpoints = CheckpointStore::new();
    checkpoints.arm_faults(plan.clone() as Arc<dyn FaultPoint>);
    let mut sink = MemorySink::new();
    let mut restarts = 0;
    loop {
        let consumer = Consumer::subscribe(broker.clone(), "replay", TOPIC)
            .unwrap()
            .with_retry(retry);
        let mut query = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(catalog.clone()))
            .transform(streaming_silver_transform(15_000, 0))
            .checkpoints(checkpoints.clone())
            .max_records(5)
            .workers(2)
            .faults(plan.clone() as Arc<dyn FaultPoint>)
            .build()
            .unwrap();
        let recovered_at = query.epoch();
        let outcome = loop {
            match query.run_once(&mut sink) {
                Ok(0) => break Ok(()),
                Ok(_) => {}
                Err(e) => break Err(e),
            }
        };
        match outcome {
            Ok(()) => break,
            Err(e) => {
                restarts += 1;
                println!("  crash #{restarts} at epoch {}: {e} -> restarting from checkpoint {recovered_at}", query.epoch());
                assert!(restarts < 60, "failed to converge");
            }
        }
    }
    println!(
        "refine: {} epochs sunk, {} checkpoints, {} restart(s)\n",
        sink.epochs(),
        checkpoints.len(),
        restarts
    );

    // --- Recovery timeline: every fault that fired, in firing order.
    println!(
        "recovery timeline ({} faults fired):",
        plan.injected().len()
    );
    for f in plan.injected() {
        println!(
            "  [{:>17}] invocation {:>4}  ctx {:>3}  {}",
            f.site.label(),
            f.invocation,
            f.ctx,
            f.kind
        );
    }

    // --- Gold: the day reduction, compared against a fault-free replay.
    let gold = gold_reduction(&sink);
    let baseline = fault_free_gold();
    println!(
        "\ngold: {} rows per (node, sensor); fault-free run: {} rows",
        gold.rows(),
        baseline.rows()
    );
    assert_eq!(gold, baseline, "chaos output must match the fault-free run");
    println!("gold output is IDENTICAL to the fault-free run: exactly-once held.");
}

fn gold_reduction(sink: &MemorySink) -> Frame {
    let silver = sink.concat().unwrap();
    group_by(
        &silver,
        &["node", "sensor"],
        &[
            AggSpec::new("mean", Agg::Mean, "day_mean"),
            AggSpec::new("count", Agg::Sum, "samples"),
        ],
    )
    .unwrap()
}

/// The same day with no faults armed anywhere.
fn fault_free_gold() -> Frame {
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 7);
    let broker = Broker::new();
    broker
        .create_topic(TOPIC, 2, RetentionPolicy::unbounded())
        .unwrap();
    for _ in 0..BATCHES {
        let batch = generator.next_batch();
        let payload = Observation::encode_batch(&batch.observations);
        broker
            .produce(
                TOPIC,
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(payload),
            )
            .unwrap();
    }
    let consumer = Consumer::subscribe(broker, "replay", TOPIC).unwrap();
    let mut query = StreamingQuery::builder()
        .source(consumer)
        .decoder(observation_decoder(generator.catalog().clone()))
        .transform(streaming_silver_transform(15_000, 0))
        .checkpoints(CheckpointStore::new())
        .max_records(5)
        .build()
        .unwrap();
    let mut sink = MemorySink::new();
    query.run_to_completion(&mut sink).unwrap();
    gold_reduction(&sink)
}
