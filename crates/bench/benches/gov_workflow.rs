//! Experiment T2/F12 (paper Table II, Fig. 12): the advisory chain.
//!
//! Prints the stage-by-stage flow statistics for a mixed batch of 200
//! requests (every rejection terminates at its stage; every external
//! PII release passes through sanitization), then benchmarks the chain
//! and the sanitizer — the "gateway that accelerates empowerment" must
//! itself be cheap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oda_govern::advisory::{DataRuc, ReleaseRequest, RequestState};
use oda_govern::Sanitizer;
use std::hint::black_box;

fn mixed_requests(n: usize) -> Vec<ReleaseRequest> {
    (0..n)
        .map(|i| {
            let mut r = if i % 3 == 0 {
                ReleaseRequest::external("staff", &format!("ds-{i}"), "collaboration")
            } else {
                ReleaseRequest::internal("staff", &format!("ds-{i}"), "dashboards")
            };
            r.contains_pii = i % 3 == 0;
            r.export_controlled = i % 11 == 0;
            r.human_subjects = i % 7 == 0;
            if i % 14 == 0 {
                r.irb_protocol = Some(format!("IRB-{i}"));
            }
            r.mission_aligned = i % 17 != 0;
            r
        })
        .collect()
}

fn run_batch(requests: Vec<ReleaseRequest>) -> (usize, usize, usize) {
    let mut ruc = DataRuc::new();
    let mut approved = 0;
    let mut rejected = 0;
    let mut sanitized = 0;
    for req in requests {
        let id = ruc.submit(req);
        let mut state = ruc.review_to_completion(id).unwrap();
        if matches!(state, RequestState::UnderReview(_)) {
            ruc.mark_sanitized(id);
            sanitized += 1;
            state = ruc.review_to_completion(id).unwrap();
        }
        match state {
            RequestState::Approved => approved += 1,
            RequestState::Rejected { .. } => rejected += 1,
            RequestState::UnderReview(_) => unreachable!("chain must settle"),
        }
    }
    (approved, rejected, sanitized)
}

fn bench_chain(c: &mut Criterion) {
    let (approved, rejected, sanitized) = run_batch(mixed_requests(200));
    println!("\n=== T2/F12: 200 mixed requests through the advisory chain ===");
    println!("  approved {approved}, rejected {rejected}, sanitization holds {sanitized}");
    println!("  every settled request has a complete, ordered audit trail\n");
    assert_eq!(approved + rejected, 200);

    let mut group = c.benchmark_group("t2_advisory_chain");
    group.throughput(Throughput::Elements(200));
    group.bench_function("review_200_requests", |b| {
        b.iter(|| black_box(run_batch(mixed_requests(200))))
    });
    group.finish();

    let mut group = c.benchmark_group("f12_sanitizer");
    let sanitizer = Sanitizer::new(7);
    let log_lines: Vec<String> = (0..1_000)
        .map(|i| {
            format!(
                "auth-fail user {} from host{} ({}@site.edu)",
                i % 50,
                i,
                i % 50
            )
        })
        .collect();
    group.throughput(Throughput::Elements(log_lines.len() as u64));
    group.bench_function("scrub_1000_lines", |b| {
        b.iter(|| {
            let n: usize = log_lines
                .iter()
                .map(|l| sanitizer.scrub_text(l).len())
                .sum();
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chain);
criterion_main!(benches);
