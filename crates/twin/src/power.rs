//! Resource allocator & power simulator with conversion losses.
//!
//! Node power comes from the same white-box utilization model the
//! telemetry substrate uses (`oda-telemetry::power::PowerModel`) — that
//! shared physics is what makes replay validation meaningful. On top,
//! the twin adds the facility-side electrical chain the paper calls
//! out: "predicts energy losses due to rectification and voltage
//! conversion".

use oda_telemetry::jobs::Job;
use oda_telemetry::power::PowerModel;
use oda_telemetry::system::SystemModel;
use serde::{Deserialize, Serialize};

/// Electrical conversion-chain parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ElectricalParams {
    /// Rectifier peak efficiency (at optimum load fraction).
    pub rectifier_peak_eff: f64,
    /// Load fraction where rectifier efficiency peaks.
    pub rectifier_opt_load: f64,
    /// Efficiency droop per unit squared deviation from optimum load.
    pub rectifier_droop: f64,
    /// On-node DC-DC voltage conversion efficiency.
    pub conversion_eff: f64,
}

impl Default for ElectricalParams {
    fn default() -> Self {
        ElectricalParams {
            rectifier_peak_eff: 0.965,
            rectifier_opt_load: 0.7,
            rectifier_droop: 0.08,
            conversion_eff: 0.97,
        }
    }
}

impl ElectricalParams {
    /// Rectifier efficiency at a given load fraction (0..1].
    pub fn rectifier_eff(&self, load_frac: f64) -> f64 {
        let d = load_frac - self.rectifier_opt_load;
        (self.rectifier_peak_eff - self.rectifier_droop * d * d).clamp(0.5, 1.0)
    }
}

/// One time step's power decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Time (ms).
    pub ts_ms: i64,
    /// IT load delivered to silicon (W).
    pub it_w: f64,
    /// On-node voltage conversion loss (W).
    pub conversion_loss_w: f64,
    /// Rectification loss (W).
    pub rectifier_loss_w: f64,
    /// Power drawn from the grid (W).
    pub facility_w: f64,
    /// Fraction of nodes busy.
    pub utilization: f64,
}

impl PowerSample {
    /// Heat dissipated into the cooling system (everything but the
    /// upstream rectifier loss, which is air-cooled in the substation).
    pub fn heat_to_coolant_w(&self) -> f64 {
        self.it_w + self.conversion_loss_w
    }
}

/// The twin's power simulator.
pub struct PowerSim {
    system: SystemModel,
    model: PowerModel,
    electrical: ElectricalParams,
    /// Job schedule driving the simulation.
    jobs: Vec<Job>,
}

impl PowerSim {
    /// Build for a system and job schedule.
    pub fn new(system: SystemModel, jobs: Vec<Job>) -> PowerSim {
        PowerSim {
            model: PowerModel::new(system.clone()),
            system,
            electrical: ElectricalParams::default(),
            jobs,
        }
    }

    /// Override electrical parameters.
    pub fn with_electrical(mut self, e: ElectricalParams) -> PowerSim {
        self.electrical = e;
        self
    }

    /// The simulated system.
    pub fn system(&self) -> &SystemModel {
        &self.system
    }

    /// Jobs running at `ts_ms`.
    fn running_at(&self, ts_ms: i64) -> impl Iterator<Item = &Job> {
        self.jobs
            .iter()
            .filter(move |j| j.start_ms <= ts_ms && ts_ms < j.end_ms)
    }

    /// Simulate one instant.
    pub fn sample(&self, ts_ms: i64) -> PowerSample {
        let total_nodes = f64::from(self.system.node_count());
        let mut busy_nodes = 0u64;
        let mut it_w = 0.0;
        for job in self.running_at(ts_ms) {
            for &node in &job.nodes {
                let cpu = self.model.cpu_util(Some(job), node, ts_ms);
                let gpu = self.model.gpu_util(Some(job), node, ts_ms);
                it_w += self.model.node_power(cpu, gpu);
                busy_nodes += 1;
            }
        }
        // Idle nodes draw the idle floor.
        let idle_nodes = total_nodes - busy_nodes as f64;
        it_w += idle_nodes * self.system.node_idle_watts;

        let conversion_loss_w =
            it_w * (1.0 - self.electrical.conversion_eff) / self.electrical.conversion_eff;
        let dc_w = it_w + conversion_loss_w;
        let load_frac = dc_w / (self.system.peak_mw * 1e6).max(1.0);
        let eff = self.electrical.rectifier_eff(load_frac.clamp(0.01, 1.0));
        let facility_w = dc_w / eff;
        PowerSample {
            ts_ms,
            it_w,
            conversion_loss_w,
            rectifier_loss_w: facility_w - dc_w,
            facility_w,
            utilization: busy_nodes as f64 / total_nodes,
        }
    }

    /// Simulate a series over `[t0, t1)` at `dt_ms` resolution.
    pub fn simulate(&self, t0: i64, t1: i64, dt_ms: i64) -> Vec<PowerSample> {
        assert!(dt_ms > 0);
        (t0..t1)
            .step_by(dt_ms as usize)
            .map(|t| self.sample(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oda_telemetry::jobs::ApplicationArchetype;

    fn hpl_job(nodes: u32, start: i64, end: i64) -> Job {
        Job {
            id: 1,
            user: 0,
            project: "PRJ000".into(),
            program: 0,
            archetype: ApplicationArchetype::Hpl,
            nodes: (0..nodes).collect(),
            submit_ms: start,
            start_ms: start,
            end_ms: end,
            phase: 0.25,
        }
    }

    #[test]
    fn idle_system_draws_idle_floor_plus_losses() {
        let sys = SystemModel::tiny();
        let sim = PowerSim::new(sys.clone(), vec![]);
        let s = sim.sample(0);
        let idle = f64::from(sys.node_count()) * sys.node_idle_watts;
        assert!((s.it_w - idle).abs() < 1e-6);
        assert!(s.facility_w > s.it_w, "losses must add");
        assert_eq!(s.utilization, 0.0);
    }

    #[test]
    fn loaded_system_draws_more() {
        let sys = SystemModel::tiny();
        let idle = PowerSim::new(sys.clone(), vec![])
            .sample(600_000)
            .facility_w;
        let sim = PowerSim::new(sys.clone(), vec![hpl_job(sys.node_count(), 0, 3_600_000)]);
        let busy = sim.sample(600_000);
        assert!(
            busy.facility_w > idle * 1.5,
            "{} vs idle {idle}",
            busy.facility_w
        );
        assert_eq!(busy.utilization, 1.0);
    }

    #[test]
    fn losses_are_positive_and_bounded() {
        let sys = SystemModel::tiny();
        let sim = PowerSim::new(sys.clone(), vec![hpl_job(4, 0, 3_600_000)]);
        for s in sim.simulate(0, 3_600_000, 60_000) {
            assert!(s.rectifier_loss_w > 0.0);
            assert!(s.conversion_loss_w > 0.0);
            let overhead = (s.facility_w - s.it_w) / s.it_w;
            assert!(overhead < 0.15, "overhead {overhead} implausible");
            assert!(
                (s.facility_w - (s.it_w + s.conversion_loss_w + s.rectifier_loss_w)).abs() < 1e-6
            );
        }
    }

    #[test]
    fn rectifier_efficiency_peaks_at_optimum() {
        let e = ElectricalParams::default();
        let at_opt = e.rectifier_eff(e.rectifier_opt_load);
        assert!(at_opt > e.rectifier_eff(0.1));
        assert!(at_opt > e.rectifier_eff(1.0));
        assert_eq!(at_opt, e.rectifier_peak_eff);
    }

    #[test]
    fn hpl_profile_shows_ramp_and_sustain() {
        let sys = SystemModel::tiny();
        let job = hpl_job(sys.node_count(), 0, 2 * 3_600_000);
        let sim = PowerSim::new(sys, vec![job]);
        let series = sim.simulate(0, 2 * 3_600_000, 60_000);
        let early = series[0].it_w;
        let mid = series[series.len() / 2].it_w;
        assert!(mid > early, "HPL should ramp: {early} -> {mid}");
        // Sustained phase should be near flat.
        let s1 = series[series.len() / 3].it_w;
        let s2 = series[2 * series.len() / 3].it_w;
        assert!((s1 - s2).abs() / s1 < 0.1, "sustained {s1} vs {s2}");
    }

    #[test]
    fn heat_to_coolant_excludes_rectifier() {
        let sys = SystemModel::tiny();
        let sim = PowerSim::new(sys, vec![]);
        let s = sim.sample(0);
        assert!((s.heat_to_coolant_w() - (s.it_w + s.conversion_loss_w)).abs() < 1e-9);
        assert!(s.heat_to_coolant_w() < s.facility_w);
    }
}
