//! Versioned keyed state for streaming aggregations.
//!
//! Streaming Bronze→Silver keeps per-(window, key) accumulators between
//! micro-batches; the state store snapshots to bytes so checkpoints can
//! persist it and recovery can restore it bit-for-bit.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Accumulator for one (window, key) cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellState {
    /// Sum of non-NaN values.
    pub sum: f64,
    /// Count of non-NaN values.
    pub count: u64,
    /// Minimum non-NaN value (infinity when empty).
    pub min: f64,
    /// Maximum non-NaN value (-infinity when empty).
    pub max: f64,
}

impl Default for CellState {
    /// Empty accumulator (min/max at the identity sentinels).
    fn default() -> CellState {
        CellState {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl CellState {
    /// Fresh accumulator.
    pub fn new() -> CellState {
        CellState::default()
    }

    /// Fold one value (NaN ignored).
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Mean of folded values (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merge another accumulator in.
    pub fn merge(&mut self, other: &CellState) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Keyed state: `(window_start, key) -> CellState` plus arbitrary
/// counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StateStore {
    /// Windowed accumulators. BTreeMap keeps snapshots deterministic.
    cells: BTreeMap<(i64, String), CellState>,
    /// Free-form named counters (rows seen, windows emitted, ...).
    counters: BTreeMap<String, u64>,
}

impl StateStore {
    /// Empty store.
    pub fn new() -> StateStore {
        StateStore::default()
    }

    /// Mutable accumulator for a (window, key) cell.
    pub fn cell(&mut self, window: i64, key: &str) -> &mut CellState {
        self.cells.entry((window, key.to_string())).or_default()
    }

    /// Read-only view of a cell.
    pub fn get_cell(&self, window: i64, key: &str) -> Option<&CellState> {
        self.cells.get(&(window, key.to_string()))
    }

    /// Remove and return every cell with `window < horizon` (windows the
    /// watermark has closed).
    pub fn drain_closed(&mut self, horizon: i64) -> Vec<((i64, String), CellState)> {
        let keys: Vec<(i64, String)> = self
            .cells
            .range(..(horizon, String::new()))
            .map(|(k, _)| k.clone())
            .collect();
        keys.into_iter()
            .map(|k| {
                let v = self.cells.remove(&k).expect("key from range");
                (k, v)
            })
            .collect()
    }

    /// Increment a named counter.
    pub fn bump(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Read a named counter.
    pub fn counter(&self, name: &str) -> u64 {
        *self.counters.get(name).unwrap_or(&0)
    }

    /// Counters whose name starts with `prefix`, in name order (used by
    /// gap-aware Silver to keep a roster of seen sensor keys).
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Number of live cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when no cells are held.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Serialize to bytes for checkpointing.
    pub fn snapshot(&self) -> Vec<u8> {
        let wire = WireState {
            cells: self
                .cells
                .iter()
                .map(|((w, k), c)| {
                    (
                        *w,
                        k.clone(),
                        c.sum.to_bits(),
                        c.count,
                        c.min.to_bits(),
                        c.max.to_bits(),
                    )
                })
                .collect(),
            counters: self.counters.clone(),
        };
        serde_json::to_vec(&wire).expect("state serializes")
    }

    /// Restore from a snapshot.
    pub fn restore(bytes: &[u8]) -> Option<StateStore> {
        let wire: WireState = serde_json::from_slice(bytes).ok()?;
        Some(StateStore {
            cells: wire
                .cells
                .into_iter()
                .map(|(w, k, sum, count, min, max)| {
                    (
                        (w, k),
                        CellState {
                            sum: f64::from_bits(sum),
                            count,
                            min: f64::from_bits(min),
                            max: f64::from_bits(max),
                        },
                    )
                })
                .collect(),
            counters: wire.counters,
        })
    }
}

/// JSON-friendly snapshot layout: tuple map keys are not valid JSON,
/// and non-finite floats (the empty-cell ±infinity sentinels) are
/// stored as bit patterns.
#[derive(Serialize, Deserialize)]
struct WireState {
    cells: Vec<(i64, String, u64, u64, u64, u64)>,
    counters: BTreeMap<String, u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_accumulates_and_ignores_nan() {
        let mut c = CellState::new();
        c.push(1.0);
        c.push(f64::NAN);
        c.push(3.0);
        assert_eq!(c.count, 2);
        assert_eq!(c.mean(), 2.0);
        assert_eq!(c.min, 1.0);
        assert_eq!(c.max, 3.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = CellState::new();
        a.push(1.0);
        let mut b = CellState::new();
        b.push(5.0);
        a.merge(&b);
        assert_eq!(a.count, 2);
        assert_eq!(a.sum, 6.0);
        assert_eq!(a.max, 5.0);
    }

    #[test]
    fn drain_closed_removes_only_old_windows() {
        let mut s = StateStore::new();
        s.cell(0, "a").push(1.0);
        s.cell(0, "b").push(2.0);
        s.cell(15_000, "a").push(3.0);
        let closed = s.drain_closed(15_000);
        assert_eq!(closed.len(), 2);
        assert!(closed.iter().all(|((w, _), _)| *w == 0));
        assert_eq!(s.len(), 1);
        assert!(s.get_cell(15_000, "a").is_some());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = StateStore::new();
        s.cell(0, "x").push(42.0);
        s.bump("rows", 7);
        let snap = s.snapshot();
        let r = StateStore::restore(&snap).unwrap();
        assert_eq!(r, s);
        assert_eq!(r.counter("rows"), 7);
        assert!(StateStore::restore(b"garbage").is_none());
    }

    #[test]
    fn counters_accumulate() {
        let mut s = StateStore::new();
        s.bump("n", 1);
        s.bump("n", 2);
        assert_eq!(s.counter("n"), 3);
        assert_eq!(s.counter("missing"), 0);
    }
}
