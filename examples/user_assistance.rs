//! Fig. 6 + Fig. 7: the User Assistance dashboard and the RATS report.
//!
//! Simulates an operational day, injects diagnosable incidents, then
//! answers user tickets both ways: through the compiled dashboard (one
//! call) and through the old per-source manual scans — same answers,
//! very different work. Finishes with the RATS per-program usage table.
//!
//! Run with: `cargo run --release --example user_assistance`

use oda::analytics::dashboard::{diagnose_manually, UaDashboard};
use oda::analytics::rats::RatsReport;
use oda::core::config::FacilityConfig;
use oda::core::facility::Facility;
use std::time::Instant;

fn main() {
    let mut config = FacilityConfig::tiny(77);
    config.tick_ms = 30_000; // half-minute ticks: a long day, fast
    let mut facility = Facility::build(config);
    println!("simulating an operational day...");
    facility.run(2_880);

    let jobs = facility.jobs(0).to_vec();
    let events = facility.events(0).to_vec();
    let lake = facility.lake();
    println!(
        "day summary: {} jobs, {} events, {} LAKE points\n",
        jobs.len(),
        events.len(),
        lake.len()
    );

    let dashboard = UaDashboard::compile_with_prefix(&jobs, &events, lake.clone(), "tiny/");

    // Tickets: the three most active users of the day.
    let mut per_user: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for j in &jobs {
        *per_user.entry(j.user).or_insert(0) += 1;
    }
    let mut users: Vec<(u32, usize)> = per_user.into_iter().collect();
    users.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    let window = (0, facility.now_ms());

    println!("=== ticket diagnosis: dashboard vs manual scans ===");
    for &(user, n_jobs) in users.iter().take(3) {
        let t = Instant::now();
        let ctx = dashboard.diagnose(user, window.0, window.1);
        let fast = t.elapsed();
        let t = Instant::now();
        let manual = diagnose_manually(&jobs, &events, &lake, "tiny/", user, window.0, window.1);
        let slow = t.elapsed();
        println!(
            "ticket from user {user} ({n_jobs} jobs): {} jobs in window, {} node events",
            ctx.jobs.len(),
            ctx.node_events.len()
        );
        for e in ctx.node_events.iter().take(3) {
            println!("    {e}");
        }
        for job in ctx.jobs.iter().take(2) {
            let power = ctx
                .mean_power_w
                .get(&job.job_id)
                .copied()
                .unwrap_or(f64::NAN);
            println!(
                "    job {} [{}] on {} nodes, mean node power {power:.0} W",
                job.job_id, job.archetype, job.nodes
            );
        }
        assert_eq!(ctx.jobs.len(), manual.jobs.len(), "both paths must agree");
        println!(
            "    dashboard {:>9.1?} vs manual scans {:>9.1?}  ({:.0}x)",
            fast,
            slow,
            slow.as_secs_f64() / fast.as_secs_f64().max(1e-9)
        );
    }

    println!("\n=== RATS report: per-program usage (Fig. 7) ===");
    let completed: Vec<_> = jobs
        .iter()
        .filter(|j| j.end_ms <= facility.now_ms())
        .cloned()
        .collect();
    let report = RatsReport::compile(&completed, facility.systems()[0], &[]);
    print!("{}", report.to_table());
    println!(
        "\nGPU-hours dominate CPU-hours on a GPU-dense machine — the Fig. 7 shape: {}",
        report
            .rows
            .iter()
            .all(|r| r.jobs == 0 || r.gpu_hours >= r.cpu_hours)
    );
}
