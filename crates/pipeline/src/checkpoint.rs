//! Checkpoints: atomic (epoch, offsets, state) snapshots.
//!
//! The streaming engine commits a checkpoint after each micro-batch:
//! the batch epoch, the consumer offsets *after* the batch, and the
//! state snapshot. Recovery loads the latest checkpoint and replays
//! from there — with an idempotent sink this yields exactly-once output
//! (§V-B: "advanced failure and recovery mechanisms that can be
//! difficult to re-engineer from scratch" — re-engineered here).

use crate::error::PipelineError;
use oda_faults::{FaultKind, FaultPoint, FaultSite};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One committed checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Micro-batch epoch (0-based, dense).
    pub epoch: u64,
    /// partition -> next offset to read.
    pub offsets: BTreeMap<u32, u64>,
    /// Serialized [`crate::state::StateStore`].
    pub state: Vec<u8>,
}

/// Durable checkpoint store (in-memory stand-in for a checkpoint
/// directory; keeps the full history so tests can inspect progression).
#[derive(Debug, Default, Clone)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Vec<Checkpoint>>>,
    faults: Arc<Mutex<Option<Arc<dyn FaultPoint>>>>,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Arm a fault plan: `try_commit` consults it before persisting.
    /// Shared across clones, like the checkpoint log itself.
    pub fn arm_faults(&self, faults: Arc<dyn FaultPoint>) {
        *self.faults.lock() = Some(faults);
    }

    /// Commit a checkpoint. Epochs must be dense and increasing; a
    /// violation (or an injected fault) panics. Fault-tolerant callers
    /// use [`CheckpointStore::try_commit`] instead.
    pub fn commit(&self, cp: Checkpoint) {
        if let Err(e) = self.try_commit(cp) {
            panic!("{e}");
        }
    }

    /// Commit a checkpoint, surfacing density violations and injected
    /// `CheckpointLost` faults as errors instead of panicking. A lost
    /// commit leaves the store untouched — the failure is *visible* to
    /// the caller (a crashed commit, never a silently-missing epoch), so
    /// the dense-epoch invariant always holds for what is stored.
    pub fn try_commit(&self, cp: Checkpoint) -> Result<(), PipelineError> {
        let armed = self.faults.lock().clone();
        if let Some(f) = armed {
            if f.check(FaultSite::CheckpointCommit, cp.epoch).is_some() {
                return Err(PipelineError::Injected(FaultKind::CheckpointLost));
            }
        }
        let mut inner = self.inner.lock();
        let expected = inner.len() as u64;
        if cp.epoch != expected {
            return Err(PipelineError::CheckpointGap {
                expected,
                got: cp.epoch,
            });
        }
        inner.push(cp);
        Ok(())
    }

    /// Latest committed checkpoint, if any.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.inner.lock().last().cloned()
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_latest() {
        let store = CheckpointStore::new();
        assert!(store.latest().is_none());
        store.commit(Checkpoint {
            epoch: 0,
            offsets: BTreeMap::new(),
            state: vec![1],
        });
        store.commit(Checkpoint {
            epoch: 1,
            offsets: [(0u32, 10u64)].into_iter().collect(),
            state: vec![2],
        });
        let latest = store.latest().unwrap();
        assert_eq!(latest.epoch, 1);
        assert_eq!(latest.offsets[&0], 10);
        assert_eq!(store.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_epochs_rejected() {
        let store = CheckpointStore::new();
        store.commit(Checkpoint {
            epoch: 5,
            offsets: BTreeMap::new(),
            state: vec![],
        });
    }

    #[test]
    fn try_commit_reports_gap_without_panicking() {
        let store = CheckpointStore::new();
        let err = store
            .try_commit(Checkpoint {
                epoch: 5,
                offsets: BTreeMap::new(),
                state: vec![],
            })
            .unwrap_err();
        assert!(err.to_string().contains("dense"));
        assert!(store.is_empty(), "failed commit must not persist");
        store
            .try_commit(Checkpoint {
                epoch: 0,
                offsets: BTreeMap::new(),
                state: vec![],
            })
            .unwrap();
        assert_eq!(store.latest().unwrap().epoch, 0);
    }

    #[test]
    fn injected_checkpoint_loss_is_a_visible_failure() {
        use oda_faults::{FaultPlan, FaultSpec};
        use std::sync::Arc;
        let store = CheckpointStore::new();
        store.arm_faults(Arc::new(FaultPlan::new(
            1,
            FaultSpec {
                checkpoint_lost: 1.0,
                ..FaultSpec::default()
            },
        )));
        let err = store
            .try_commit(Checkpoint {
                epoch: 0,
                offsets: BTreeMap::new(),
                state: vec![],
            })
            .unwrap_err();
        assert!(err.to_string().contains("checkpoint lost"));
        assert!(
            store.is_empty(),
            "a lost commit must be all-or-nothing, never a silent hole"
        );
    }

    #[test]
    fn concurrent_committers_keep_epochs_dense_and_latest_monotone() {
        // Many threads race to commit the next epoch; only one wins each
        // round. Density and latest-monotonicity must hold throughout.
        let store = CheckpointStore::new();
        let target = 50u64;
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let store = store.clone();
                std::thread::spawn(move || {
                    let mut observed = Vec::new();
                    loop {
                        let next = store.latest().map_or(0, |cp| cp.epoch + 1);
                        if next >= target {
                            break;
                        }
                        // Losing the race yields CheckpointGap; that is
                        // the expected contention signal, not corruption.
                        let _ = store.try_commit(Checkpoint {
                            epoch: next,
                            offsets: BTreeMap::new(),
                            state: vec![],
                        });
                        observed.push(store.latest().expect("nonempty").epoch);
                    }
                    observed
                })
            })
            .collect();
        for t in threads {
            let observed = t.join().unwrap();
            assert!(
                observed.windows(2).all(|w| w[0] <= w[1]),
                "latest() must be monotone per observer"
            );
        }
        assert_eq!(store.len() as u64, target, "exactly one winner per epoch");
        assert_eq!(store.latest().unwrap().epoch, target - 1);
    }

    #[test]
    fn clones_share_storage() {
        let a = CheckpointStore::new();
        let b = a.clone();
        a.commit(Checkpoint {
            epoch: 0,
            offsets: BTreeMap::new(),
            state: vec![],
        });
        assert_eq!(b.len(), 1);
    }
}
