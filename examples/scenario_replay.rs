//! Scenario-pack replay: scripted facility disturbances through the
//! online detectors, with the closed loop to the twin and governance.
//!
//! Picks a scenario (default: cooling-excursion), replays it from a
//! fixed seed through Bronze → gap-marked Silver → the online detector
//! engine, prints the alerts as they fired, replays the window in the
//! digital twin, and records the incident through the advisory chain.
//!
//! Run with: `cargo run --release --example scenario_replay [scenario]`
//! where `[scenario]` is one of `cooling-excursion`, `power-cap`,
//! `job-storm`, `firmware-skew`.

use bytes::Bytes;
use oda::analytics::online::{AlertingSink, OnlineAnalytics, OnlineConfig};
use oda::analytics::train_footprint_classifier;
use oda::govern::{DataRuc, IncidentLog, ReleaseRequest};
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform_gap_marked};
use oda::pipeline::streaming::MemorySink;
use oda::pipeline::StreamingQuery;
use oda::stream::{Broker, Consumer, RetentionPolicy};
use oda::telemetry::record::{Observation, Quality};
use oda::telemetry::{ScenarioKind, ScenarioPack};
use oda::twin::replay::replay;

const SEED: u64 = 2024;

fn main() {
    let kind = std::env::args()
        .nth(1)
        .map(|name| ScenarioKind::from_name(&name).expect("unknown scenario"))
        .unwrap_or(ScenarioKind::CoolingExcursion);

    let pack = ScenarioPack::standard(kind);
    let (d0, d1) = pack.disturbance_ticks();
    println!("=== scenario pack: {} (seed {SEED}) ===", kind.name());
    println!(
        "  {} ticks, scripted disturbance at [{d0}, {d1}] s",
        pack.ticks()
    );

    // Replay the scripted facility into a Bronze topic.
    let mut run = pack.start(SEED).expect("pack validates");
    let batches = run.run_to_end().expect("scenario replays");
    let jobs = run.jobs();
    let catalog = run.generator().catalog().clone();
    let system = run.generator().system().clone();
    let broker = Broker::new();
    broker
        .create_topic("bronze", 2, RetentionPolicy::unbounded())
        .unwrap();
    for batch in &batches {
        broker
            .produce(
                "bronze",
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(Observation::encode_batch(&batch.observations)),
            )
            .unwrap();
    }
    println!(
        "  {} bronze batches, {} jobs on the machine",
        batches.len(),
        jobs.len()
    );

    // Stream through gap-marked Silver with the detectors on the sink.
    let mut engine = OnlineAnalytics::new(OnlineConfig::default());
    if kind == ScenarioKind::JobStorm {
        engine = engine.with_jobs(jobs.clone(), Some(train_footprint_classifier(&system)));
    }
    let mut sink = AlertingSink::new(MemorySink::new(), engine);
    let consumer = Consumer::subscribe(broker, "scenario", "bronze").unwrap();
    let mut query = StreamingQuery::builder()
        .source(consumer)
        .decoder(observation_decoder(catalog.clone()))
        .transform(streaming_silver_transform_gap_marked(15_000, 0))
        .checkpoints(CheckpointStore::new())
        .max_records(8)
        .build()
        .unwrap();
    while query.run_once(&mut sink).unwrap() > 0 {}

    let alerts = sink.alerts().to_vec();
    println!("\n=== {} alerts ===", alerts.len());
    for a in &alerts {
        println!(
            "  [{:>6.0}s] {:<13} {:<8} node {:>2} {:<20} {}",
            a.window_ms as f64 / 1_000.0,
            a.detector,
            format!("{:?}", a.severity).to_lowercase(),
            a.node,
            a.sensor,
            a.message
        );
    }
    let Some(first) = alerts.first() else {
        println!("  (no alerts — nothing to close the loop on)");
        return;
    };

    // Close the loop: twin replay of the measured window ...
    let substation = catalog.sensor_id("substation_power_w").unwrap();
    let measured: Vec<(i64, f64)> = batches
        .iter()
        .flat_map(|b| b.observations.iter())
        .filter(|o| o.sensor == substation && o.quality == Quality::Good)
        .map(|o| (o.ts_ms, o.value))
        .collect();
    let report = replay(&system, &jobs, &measured);
    println!("\n=== twin replay ({} samples) ===", report.samples);
    println!("  power MAPE   {:>8.2} %", report.power_mape * 100.0);
    println!("  correlation  {:>8.3}", report.power_correlation);

    // ... then the governance record.
    let mut incidents = IncidentLog::new();
    let mut ruc = DataRuc::new();
    let id = incidents.raise(
        kind.name(),
        &first.detector,
        first.severity.label(),
        first.window_ms,
        alerts.len(),
    );
    incidents.attach_evidence(
        id,
        &format!(
            "twin replay: {} samples, power MAPE {:.2}%",
            report.samples,
            report.power_mape * 100.0
        ),
    );
    let state = incidents
        .request_release(
            id,
            &mut ruc,
            ReleaseRequest::internal(
                "ops-oncall",
                &format!("alerts-{}", kind.name()),
                "facility incident review",
            ),
        )
        .unwrap();
    incidents.resolve(id, "scripted disturbance; see scenario pack");
    println!("\n=== governance ===");
    println!("  incident #{id}: {} alerts folded in", alerts.len());
    println!("  release request: {state:?}");
    println!("  audit records:   {}", ruc.audit_log().len());
    println!("  status:          {:?}", incidents.get(id).unwrap().status);
}
