//! Block compression: varints plus an LZSS-style codec.
//!
//! The paper's OCEAN tier leans on "column-oriented compressed file
//! format, ensuring significant data compression and minimal I/O
//! footprint" (§V-B). This module supplies the byte-level compression
//! half of that: a greedy hash-chained LZ with a 64 KiB window, encoding
//! a token stream of literals and (length, distance) copies.
//!
//! Format (after a 1-byte method tag):
//! * `0x00` raw: the block was incompressible, payload follows verbatim.
//! * `0x01` LZ: `varint(uncompressed_len)` then tokens. Each token is a
//!   control byte: `0x00..=0x7f` = literal run of control+1 bytes;
//!   `0x80 | n` = match, followed by `varint(length - MIN_MATCH)` when
//!   `n == 0x7f` sentinel is unused — lengths are encoded as
//!   `varint(length)` and `varint(distance)` directly after a `0x80`
//!   control byte.

use crate::error::StorageError;

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Window the matcher may reference backwards.
const WINDOW: usize = 64 * 1024;
/// Hash table size (power of two).
const HASH_SIZE: usize = 1 << 15;

/// Append `v` as a LEB128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            break;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a LEB128 varint; returns (value, bytes consumed).
pub fn get_varint(buf: &[u8]) -> Result<(u64, usize), StorageError> {
    let mut v: u64 = 0;
    let mut shift = 0;
    for (i, &b) in buf.iter().enumerate() {
        if shift >= 64 {
            return Err(StorageError::Corrupt("varint overflow".into()));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok((v, i + 1));
        }
        shift += 7;
    }
    Err(StorageError::Corrupt("truncated varint".into()))
}

/// ZigZag-encode a signed value for varint storage.
pub fn zigzag(v: i64) -> u64 {
    (v.wrapping_shl(1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn hash4(data: &[u8]) -> usize {
    let v = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
    (v.wrapping_mul(2654435761) >> 17) as usize & (HASH_SIZE - 1)
}

/// Compress `input`; always decodable by [`decompress`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    if input.len() < MIN_MATCH * 2 {
        let mut out = Vec::with_capacity(input.len() + 1);
        out.push(0x00);
        out.extend_from_slice(input);
        return out;
    }
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.push(0x01);
    put_varint(&mut out, input.len() as u64);

    // head[h] = most recent position with hash h (+1; 0 = empty).
    let mut head = vec![0u32; HASH_SIZE];
    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
        let mut start = from;
        while start < to {
            let run = (to - start).min(128);
            out.push((run - 1) as u8); // 0x00..=0x7f
            out.extend_from_slice(&input[start..start + run]);
            start += run;
        }
    };

    while i + MIN_MATCH <= input.len() {
        let h = hash4(&input[i..]);
        let candidate = head[h] as usize;
        head[h] = (i + 1) as u32;
        let mut matched = 0usize;
        if candidate > 0 {
            let cand = candidate - 1;
            if i - cand <= WINDOW {
                let max = input.len() - i;
                while matched < max && input[cand + matched] == input[i + matched] {
                    matched += 1;
                }
            }
        }
        if matched >= MIN_MATCH {
            let cand = candidate - 1;
            flush_literals(&mut out, literal_start, i, input);
            out.push(0x80);
            put_varint(&mut out, matched as u64);
            put_varint(&mut out, (i - cand) as u64);
            // Index a few positions inside the match so later matches can
            // reference them (cheap approximation of full indexing).
            let step = (matched / 8).max(1);
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < i + matched {
                head[hash4(&input[j..])] = (j + 1) as u32;
                j += step;
            }
            i += matched;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len(), input);

    if out.len() > input.len() {
        // Incompressible; store raw.
        let mut raw = Vec::with_capacity(input.len() + 1);
        raw.push(0x00);
        raw.extend_from_slice(input);
        return raw;
    }
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, StorageError> {
    let (&tag, rest) = input
        .split_first()
        .ok_or_else(|| StorageError::Corrupt("empty compressed buffer".into()))?;
    match tag {
        0x00 => Ok(rest.to_vec()),
        0x01 => {
            let (expected_len, n) = get_varint(rest)?;
            let mut pos = n;
            let mut out: Vec<u8> = Vec::with_capacity(expected_len as usize);
            while pos < rest.len() {
                let control = rest[pos];
                pos += 1;
                if control & 0x80 == 0 {
                    let run = usize::from(control) + 1;
                    if pos + run > rest.len() {
                        return Err(StorageError::Corrupt("literal overruns buffer".into()));
                    }
                    out.extend_from_slice(&rest[pos..pos + run]);
                    pos += run;
                } else {
                    let (len, n1) = get_varint(&rest[pos..])?;
                    pos += n1;
                    let (dist, n2) = get_varint(&rest[pos..])?;
                    pos += n2;
                    let len = len as usize;
                    let dist = dist as usize;
                    if dist == 0 || dist > out.len() {
                        return Err(StorageError::Corrupt(format!(
                            "match distance {dist} exceeds output {}",
                            out.len()
                        )));
                    }
                    // Byte-by-byte to support overlapping copies.
                    let start = out.len() - dist;
                    for k in 0..len {
                        let b = out[start + k];
                        out.push(b);
                    }
                }
            }
            if out.len() != expected_len as usize {
                return Err(StorageError::Corrupt(format!(
                    "decompressed {} bytes, expected {}",
                    out.len(),
                    expected_len
                )));
            }
            Ok(out)
        }
        other => Err(StorageError::Corrupt(format!(
            "unknown compression tag {other:#x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (got, used) = get_varint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for input in [&b""[..], b"a", b"abc", b"abcdefg"] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input);
        }
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let input: Vec<u8> = b"sensor=node_power_w value=1234.5 quality=good "
            .iter()
            .cycle()
            .take(100_000)
            .copied()
            .collect();
        let c = compress(&input);
        assert!(
            c.len() < input.len() / 10,
            "ratio only {}/{}",
            c.len(),
            input.len()
        );
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn random_data_stored_raw_without_blowup() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let input: Vec<u8> = (0..10_000).map(|_| rng.random()).collect();
        let c = compress(&input);
        assert!(c.len() <= input.len() + 16);
        assert_eq!(decompress(&c).unwrap(), input);
    }

    #[test]
    fn overlapping_copy_supported() {
        // "abcabcabc..." forces distance < length copies.
        let input: Vec<u8> = b"abc".iter().cycle().take(1_000).copied().collect();
        let c = compress(&input);
        assert_eq!(decompress(&c).unwrap(), input);
        assert!(c.len() < 100);
    }

    #[test]
    fn corrupt_input_errors_not_panics() {
        assert!(decompress(&[]).is_err());
        assert!(decompress(&[0x99, 1, 2]).is_err());
        assert!(decompress(&[0x01, 0x80]).is_err()); // truncated varint
                                                     // Match referencing before start of output.
        let mut bad = vec![0x01];
        put_varint(&mut bad, 10);
        bad.push(0x80);
        put_varint(&mut bad, 4);
        put_varint(&mut bad, 9); // distance 9 with empty output
        assert!(decompress(&bad).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..5_000)) {
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn roundtrip_structured(n in 1usize..200, word in proptest::collection::vec(any::<u8>(), 1..40)) {
            let data: Vec<u8> = word.iter().cycle().take(n * word.len()).copied().collect();
            let c = compress(&data);
            prop_assert_eq!(decompress(&c).unwrap(), data);
        }

        #[test]
        fn varint_roundtrip_any(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (got, _) = get_varint(&buf).unwrap();
            prop_assert_eq!(got, v);
        }

        #[test]
        fn zigzag_roundtrip_any(v in any::<i64>()) {
            prop_assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
