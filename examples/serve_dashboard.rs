//! The operator plane, live: `oda-serve` over a chaos-seeded pipeline.
//!
//! Boots the full observability stack — metrics registry, tracer +
//! lineage, online-detector alerts, and the SLO health engine — wires
//! it into an `oda-serve` HTTP server on an ephemeral port, then races
//! two workloads against each other:
//!
//! * an 8-worker chaos-seeded medallion pipeline (the data plane),
//!   advancing the health engine one logical tick per committed epoch;
//! * eight concurrent scrape clients (the operator plane), hammering
//!   `/metrics`, `/healthz`, `/trace/spans`, `/alerts`, and `/` the
//!   whole time.
//!
//! After the stream drains, a fault storm with an exhausted retry
//! budget drives `retry_exhausted_total` up and the `/healthz` verdict
//! flips from `healthy` to `degraded` — the burn-rate math doing its
//! job on live counters.
//!
//! Run with: `cargo run --release --example serve_dashboard`

use bytes::Bytes;
use oda::analytics::online::{alerts_jsonl, Alert, AlertingSink, OnlineAnalytics, OnlineConfig};
use oda::faults::{FaultClass, FaultPlan, FaultPoint, FaultSpec, Retry, Retryable};
use oda::obs::{HealthEngine, Registry, Tracer, Verdict};
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform};
use oda::pipeline::streaming::MemorySink;
use oda::pipeline::StreamingQuery;
use oda::serve::{serve, Endpoints, ServerConfig};
use oda::stream::{Broker, Consumer, Producer, RetentionPolicy};
use oda::telemetry::record::Observation;
use oda::telemetry::system::SystemModel;
use oda::telemetry::TelemetryGenerator;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const TOPIC: &str = "bronze";
const BATCHES: usize = 60;
const SCRAPERS: usize = 8;

/// One raw-socket GET; returns the status code (scrapers don't need a
/// full client, and this keeps the example dependency-free too).
fn fetch_status(addr: SocketAddr, path: &str) -> Option<u16> {
    let mut s = TcpStream::connect(addr).ok()?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: dash\r\n\r\n").ok()?;
    let mut raw = String::new();
    s.read_to_string(&mut raw).ok()?;
    raw.split_whitespace().nth(1)?.parse().ok()
}

/// GET returning the body, for the one-shot endpoint tour at the end.
fn fetch_body(addr: SocketAddr, path: &str) -> Option<(u16, String)> {
    let mut s = TcpStream::connect(addr).ok()?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: dash\r\n\r\n").ok()?;
    let mut raw = String::new();
    s.read_to_string(&mut raw).ok()?;
    let status = raw.split_whitespace().nth(1)?.parse().ok()?;
    let body = raw.split_once("\r\n\r\n")?.1.to_string();
    Some((status, body))
}

fn main() {
    let registry = Registry::new();
    let tracer = Tracer::new();
    let engine = Arc::new(Mutex::new(HealthEngine::with_defaults()));
    let live_alerts: Arc<Mutex<Vec<Alert>>> = Arc::new(Mutex::new(Vec::new()));

    // --- Telemetry → STREAM under a seeded chaos plan. ---
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 7);
    let broker = Broker::new();
    broker.attach_metrics(&registry);
    broker.attach_tracer(&tracer);
    broker
        .create_topic(TOPIC, 2, RetentionPolicy::unbounded())
        .unwrap();
    for _ in 0..BATCHES {
        let batch = generator.next_batch();
        let payload = Observation::encode_batch(&batch.observations);
        broker
            .produce(
                TOPIC,
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(payload),
            )
            .unwrap();
    }
    let catalog = generator.catalog().clone();
    let plan = Arc::new(FaultPlan::chaos(11));
    plan.attach_metrics(&registry);
    plan.attach_tracer(&tracer);
    broker.arm_faults(plan.clone() as Arc<dyn FaultPoint>);

    // --- The operator plane: every surface on one ephemeral port. ---
    let alerts_view = Arc::clone(&live_alerts);
    let endpoints = Endpoints::new()
        .with_registry(&registry)
        .with_health(Arc::clone(&engine))
        .with_tracer(&tracer)
        .with_alerts(Arc::new(move || alerts_jsonl(&alerts_view.lock().unwrap())))
        .with_bench(Arc::new(|| {
            std::fs::read_to_string("BENCH_pipeline.json").unwrap_or_else(|_| "{}\n".into())
        }));
    let server = serve(endpoints, "127.0.0.1:0", ServerConfig::default()).expect("bind ephemeral");
    let addr = server.addr();
    println!("oda-serve listening on http://{addr}");
    for path in [
        "/",
        "/metrics",
        "/healthz",
        "/trace/spans",
        "/alerts",
        "/bench",
    ] {
        println!("  curl http://{addr}{path}");
    }

    // --- Eight scrapers, racing the pipeline for its whole run. ---
    let stop = Arc::new(AtomicBool::new(false));
    let scrapers: Vec<_> = (0..SCRAPERS)
        .map(|i| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let paths = ["/metrics", "/healthz", "/trace/spans", "/alerts", "/"];
                let (mut ok, mut total) = (0usize, 0usize);
                while !stop.load(Ordering::Relaxed) {
                    let path = paths[(i + total) % paths.len()];
                    // 200s and load-shedding 503s both count as the
                    // server answering correctly under pressure.
                    if matches!(fetch_status(addr, path), Some(200) | Some(503)) {
                        ok += 1;
                    }
                    total += 1;
                }
                (ok, total)
            })
        })
        .collect();

    // --- The data plane: supervised 8-worker chaos run, one health
    // tick per committed epoch. ---
    let checkpoints = CheckpointStore::new();
    checkpoints.arm_faults(plan.clone() as Arc<dyn FaultPoint>);
    let detector_config = OnlineConfig {
        min_windows: 2,
        z_window: 4,
        z_threshold: 1.5,
        ewma_threshold: 2.0,
        ..OnlineConfig::default()
    };
    let mut online = OnlineAnalytics::new(detector_config);
    online.attach_metrics(&registry);
    let mut sink = AlertingSink::new(MemorySink::new(), online);
    let mut restarts = 0;
    'supervise: loop {
        let consumer = Consumer::subscribe(broker.clone(), "dash", TOPIC)
            .unwrap()
            .with_retry(Retry::with_attempts(25));
        let mut query = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(catalog.clone()))
            .transform(streaming_silver_transform(15_000, 0))
            .checkpoints(checkpoints.clone())
            .max_records(5)
            .workers(8)
            .metrics(&registry)
            .tracer(&tracer)
            .trace_name("serve")
            .faults(plan.clone() as Arc<dyn FaultPoint>)
            .build()
            .unwrap();
        loop {
            match query.run_once(&mut sink) {
                Ok(0) => break 'supervise,
                Ok(_) => {
                    // The data-plane loop owns logical time: one tick
                    // per committed epoch. Scrapers only ever read.
                    let report = engine.lock().unwrap().observe(&registry);
                    *live_alerts.lock().unwrap() = sink.alerts().to_vec();
                    if report.tick.is_multiple_of(10) {
                        println!(
                            "tick {:>3}: overall={} (stream rate {} errors {})",
                            report.tick,
                            report.overall.as_str(),
                            report.subsystems[0].rate,
                            report.subsystems[0].errors,
                        );
                    }
                }
                Err(e) => {
                    assert_eq!(e.fault_class(), FaultClass::Fatal, "unexpected: {e}");
                    restarts += 1;
                    continue 'supervise;
                }
            }
        }
    }
    let drained = engine.lock().unwrap().observe(&registry);
    println!(
        "stream drained: {} epochs, {} silver rows, {} crash recoveries, {} alerts; overall={}",
        sink.inner().epochs(),
        sink.inner().total_rows(),
        restarts,
        sink.alerts().len(),
        drained.overall.as_str(),
    );

    // --- Lineage: pick any digest the run recorded and walk it. ---
    let lineage = tracer.lineage().clone();
    let digest = lineage
        .query()
        .nodes()
        .find_map(|(_, n)| n.digest())
        .unwrap_or(0);
    if digest != 0 {
        if let Some((status, body)) = fetch_body(addr, &format!("/lineage/digest/{digest:016x}")) {
            println!(
                "lineage digest {digest:016x}: HTTP {status}, {} walk lines",
                body.lines().count()
            );
        }
    }

    // --- Fault storm: produce under a 90% timeout plan with a retry
    // budget of 1, so exhaustion hits the stream-delivery SLO. ---
    let storm = Arc::new(FaultPlan::new(
        1234,
        FaultSpec {
            produce_timeout: 0.9,
            ..FaultSpec::default()
        },
    ));
    storm.attach_metrics(&registry);
    broker.arm_faults(storm.clone() as Arc<dyn FaultPoint>);
    let producer = Producer::new(broker.clone(), TOPIC).unwrap();
    let policy = Retry::with_attempts(1);
    let mut exhausted = 0;
    for i in 0..50i64 {
        if producer
            .send_retrying(&policy, i, None, Bytes::from_static(b"storm"))
            .is_err()
        {
            exhausted += 1;
        }
    }
    let report = engine.lock().unwrap().observe(&registry);
    let delivery = report
        .objectives
        .iter()
        .find(|o| o.name == "stream-delivery")
        .expect("stock objective");
    println!(
        "after retry-exhaustion storm ({exhausted} exhausted): overall={} \
         stream-delivery burn short {}% long {}%",
        report.overall.as_str(),
        delivery.burn_short_pct,
        delivery.burn_long_pct,
    );
    if oda::obs::enabled() {
        assert_ne!(
            report.overall,
            Verdict::Healthy,
            "exhaustion storm must flip the verdict"
        );
        let (status, body) = fetch_body(addr, "/healthz").expect("healthz answers");
        assert!(
            body.contains("\"overall\": \"degraded\"") || status == 503,
            "healthz must reflect the flip"
        );
        println!("/healthz now: HTTP {status}");

        // Clean ticks drain the short window while the long window
        // still remembers the burn: the multiwindow signature —
        // unhealthy → degraded → (eventually) healthy.
        broker.arm_faults(plan.clone() as Arc<dyn FaultPoint>);
        let storm_tick = report.tick;
        let mut recovering = report;
        for _ in 0..8 {
            recovering = engine.lock().unwrap().observe(&registry);
            if recovering.overall != Verdict::Unhealthy {
                break;
            }
        }
        println!(
            "after {} clean ticks: overall={}",
            recovering.tick - storm_tick,
            recovering.overall.as_str()
        );
        assert_eq!(
            recovering.overall,
            Verdict::Degraded,
            "short window must recover first"
        );
    }

    // --- Wind down: scrapers report, endpoints get a final tour. ---
    stop.store(true, Ordering::Relaxed);
    let mut total_scrapes = 0;
    let mut ok_scrapes = 0;
    for s in scrapers {
        let (ok, total) = s.join().expect("scraper joins");
        ok_scrapes += ok;
        total_scrapes += total;
    }
    println!("{SCRAPERS} scrapers: {ok_scrapes}/{total_scrapes} responses OK during the run");
    assert_eq!(ok_scrapes, total_scrapes, "every scrape must be answered");

    println!("\n=== endpoint tour ===");
    for path in [
        "/",
        "/metrics",
        "/healthz",
        "/trace/spans",
        "/alerts",
        "/bench",
    ] {
        if let Some((status, body)) = fetch_body(addr, path) {
            println!("GET {path:<14} HTTP {status}  {} bytes", body.len());
        }
    }
    server.shutdown();
    println!("server drained and shut down");
}
