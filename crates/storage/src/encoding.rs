//! Columnar value encodings.
//!
//! Each column chunk picks the cheapest of: plain, run-length (RLE),
//! delta-varint (for timestamps and monotonic counters), or dictionary
//! (for low-cardinality strings). The chooser is size-based: every
//! candidate is encoded and the smallest wins — simple, deterministic,
//! and self-tuning per chunk.

use crate::compress::{get_varint, put_varint, unzigzag, zigzag};
use crate::error::StorageError;

/// Encoding tags stored in the chunk header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Fixed-width little-endian values.
    Plain,
    /// (value, run-length) pairs.
    Rle,
    /// First value plus zigzag varint deltas.
    Delta,
    /// Distinct-value dictionary plus varint indices.
    Dict,
}

impl Encoding {
    fn tag(self) -> u8 {
        match self {
            Encoding::Plain => 0,
            Encoding::Rle => 1,
            Encoding::Delta => 2,
            Encoding::Dict => 3,
        }
    }

    fn from_tag(t: u8) -> Result<Encoding, StorageError> {
        match t {
            0 => Ok(Encoding::Plain),
            1 => Ok(Encoding::Rle),
            2 => Ok(Encoding::Delta),
            3 => Ok(Encoding::Dict),
            _ => Err(StorageError::Corrupt(format!("unknown encoding tag {t}"))),
        }
    }
}

/// Encode an i64 column, choosing the smallest representation.
pub fn encode_i64(values: &[i64]) -> Vec<u8> {
    let plain = encode_i64_plain(values);
    let rle = encode_i64_rle(values);
    let delta = encode_i64_delta(values);
    let mut best = plain;
    for cand in [rle, delta] {
        if cand.len() < best.len() {
            best = cand;
        }
    }
    best
}

fn encode_i64_plain(values: &[i64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + values.len() * 8);
    out.push(Encoding::Plain.tag());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn encode_i64_rle(values: &[i64]) -> Vec<u8> {
    let mut out = vec![Encoding::Rle.tag()];
    let mut i = 0;
    while i < values.len() {
        let v = values[i];
        let mut run = 1u64;
        while i + (run as usize) < values.len() && values[i + run as usize] == v {
            run += 1;
        }
        put_varint(&mut out, zigzag(v));
        put_varint(&mut out, run);
        i += run as usize;
    }
    out
}

fn encode_i64_delta(values: &[i64]) -> Vec<u8> {
    let mut out = vec![Encoding::Delta.tag()];
    let mut prev = 0i64;
    for &v in values {
        put_varint(&mut out, zigzag(v.wrapping_sub(prev)));
        prev = v;
    }
    out
}

/// Decode an i64 column of `count` values.
pub fn decode_i64(buf: &[u8], count: usize) -> Result<Vec<i64>, StorageError> {
    let (&tag, rest) = buf
        .split_first()
        .ok_or_else(|| StorageError::Corrupt("empty i64 chunk".into()))?;
    let mut out = Vec::with_capacity(count);
    match Encoding::from_tag(tag)? {
        Encoding::Plain => {
            if rest.len() != count * 8 {
                return Err(StorageError::Corrupt("plain i64 length mismatch".into()));
            }
            for c in rest.chunks_exact(8) {
                out.push(i64::from_le_bytes(c.try_into().expect("chunk of 8")));
            }
        }
        Encoding::Rle => {
            let mut pos = 0;
            while pos < rest.len() {
                let (zv, n1) = get_varint(&rest[pos..])?;
                pos += n1;
                let (run, n2) = get_varint(&rest[pos..])?;
                pos += n2;
                let v = unzigzag(zv);
                if out.len() + run as usize > count {
                    return Err(StorageError::Corrupt("RLE run exceeds row count".into()));
                }
                for _ in 0..run {
                    out.push(v);
                }
            }
        }
        Encoding::Delta => {
            let mut pos = 0;
            let mut prev = 0i64;
            for _ in 0..count {
                let (zd, n) = get_varint(&rest[pos..])?;
                pos += n;
                prev = prev.wrapping_add(unzigzag(zd));
                out.push(prev);
            }
            if pos != rest.len() {
                return Err(StorageError::Corrupt(
                    "trailing bytes in delta chunk".into(),
                ));
            }
        }
        Encoding::Dict => {
            return Err(StorageError::Corrupt(
                "dict encoding invalid for i64".into(),
            ));
        }
    }
    if out.len() != count {
        return Err(StorageError::Corrupt(format!(
            "decoded {} values, expected {count}",
            out.len()
        )));
    }
    Ok(out)
}

/// Encode an f64 column. Uses plain bits, or RLE-of-bits when runs
/// dominate (common for quantized sensors and fill values).
pub fn encode_f64(values: &[f64]) -> Vec<u8> {
    let as_bits: Vec<i64> = values.iter().map(|v| v.to_bits() as i64).collect();
    // Reuse the integer chooser on the bit patterns.
    encode_i64(&as_bits)
}

/// Decode an f64 column of `count` values.
pub fn decode_f64(buf: &[u8], count: usize) -> Result<Vec<f64>, StorageError> {
    Ok(decode_i64(buf, count)?
        .into_iter()
        .map(|b| f64::from_bits(b as u64))
        .collect())
}

/// Encode a string column: dictionary when it wins, otherwise plain
/// length-prefixed bytes.
pub fn encode_str(values: &[String]) -> Vec<u8> {
    // Plain: varint(len) + bytes per value.
    let mut plain = vec![Encoding::Plain.tag()];
    for v in values {
        put_varint(&mut plain, v.len() as u64);
        plain.extend_from_slice(v.as_bytes());
    }
    // Dict: varint(n_entries), entries, then varint indices.
    let mut dict_entries: Vec<&str> = Vec::new();
    let mut index_of = std::collections::HashMap::new();
    let mut indices = Vec::with_capacity(values.len());
    for v in values {
        let idx = *index_of.entry(v.as_str()).or_insert_with(|| {
            dict_entries.push(v.as_str());
            dict_entries.len() - 1
        });
        indices.push(idx as u64);
    }
    let mut dict = vec![Encoding::Dict.tag()];
    put_varint(&mut dict, dict_entries.len() as u64);
    for e in &dict_entries {
        put_varint(&mut dict, e.len() as u64);
        dict.extend_from_slice(e.as_bytes());
    }
    for idx in indices {
        put_varint(&mut dict, idx);
    }
    if dict.len() < plain.len() {
        dict
    } else {
        plain
    }
}

/// Encode a dictionary column (`dict[codes[i]]` is row i's value)
/// without materializing per-row strings.
///
/// Byte-compatible with [`encode_str`] over the materialized rows —
/// same plain-vs-dict size chooser, same first-occurrence entry order —
/// so file bytes do not depend on the in-memory representation.
/// `codes` must all be `< dict.len()`.
pub fn encode_dict(dict: &[String], codes: &[u32]) -> Vec<u8> {
    // Plain candidate: varint(len) + bytes per row.
    let mut plain = vec![Encoding::Plain.tag()];
    for &c in codes {
        let v = &dict[c as usize];
        put_varint(&mut plain, v.len() as u64);
        plain.extend_from_slice(v.as_bytes());
    }
    // Dict candidate: remap codes into first-occurrence-in-row order and
    // drop unused dictionary entries, matching encode_str's page layout.
    let mut remap: Vec<u32> = vec![u32::MAX; dict.len()];
    let mut used: Vec<u32> = Vec::new();
    let mut indices: Vec<u64> = Vec::with_capacity(codes.len());
    for &c in codes {
        let slot = &mut remap[c as usize];
        if *slot == u32::MAX {
            *slot = used.len() as u32;
            used.push(c);
        }
        indices.push(u64::from(*slot));
    }
    let mut out = vec![Encoding::Dict.tag()];
    put_varint(&mut out, used.len() as u64);
    for &old in &used {
        let e = &dict[old as usize];
        put_varint(&mut out, e.len() as u64);
        out.extend_from_slice(e.as_bytes());
    }
    for idx in indices {
        put_varint(&mut out, idx);
    }
    if out.len() < plain.len() {
        out
    } else {
        plain
    }
}

/// Decode a string chunk of `count` values into dictionary form.
///
/// Dict pages map directly onto (entries, indices); plain pages are
/// interned on the fly. Accepts every chunk [`encode_str`] or
/// [`encode_dict`] can produce, so old `Str`-typed files read cleanly.
pub fn decode_dict(buf: &[u8], count: usize) -> Result<(Vec<String>, Vec<u32>), StorageError> {
    let (&tag, rest) = buf
        .split_first()
        .ok_or_else(|| StorageError::Corrupt("empty str chunk".into()))?;
    let read_str = |buf: &[u8], pos: &mut usize| -> Result<String, StorageError> {
        let (len, n) = get_varint(&buf[*pos..])?;
        *pos += n;
        let len = len as usize;
        if *pos + len > buf.len() {
            return Err(StorageError::Corrupt("string overruns chunk".into()));
        }
        let s = std::str::from_utf8(&buf[*pos..*pos + len])
            .map_err(|_| StorageError::Corrupt("invalid utf8".into()))?
            .to_string();
        *pos += len;
        Ok(s)
    };
    let mut dict: Vec<String> = Vec::new();
    let mut codes: Vec<u32> = Vec::with_capacity(count);
    match Encoding::from_tag(tag)? {
        Encoding::Plain => {
            let mut index: std::collections::HashMap<String, u32> =
                std::collections::HashMap::new();
            let mut pos = 0;
            for _ in 0..count {
                let s = read_str(rest, &mut pos)?;
                let code = *index.entry(s).or_insert_with_key(|k| {
                    dict.push(k.clone());
                    (dict.len() - 1) as u32
                });
                codes.push(code);
            }
            if pos != rest.len() {
                return Err(StorageError::Corrupt("trailing bytes in str chunk".into()));
            }
        }
        Encoding::Dict => {
            let mut pos = 0;
            let (n_entries, n) = get_varint(rest)?;
            pos += n;
            for _ in 0..n_entries {
                dict.push(read_str(rest, &mut pos)?);
            }
            for _ in 0..count {
                let (idx, n) = get_varint(&rest[pos..])?;
                pos += n;
                if idx as usize >= dict.len() {
                    return Err(StorageError::Corrupt("dict index out of range".into()));
                }
                codes.push(idx as u32);
            }
        }
        other => {
            return Err(StorageError::Corrupt(format!(
                "{other:?} invalid for strings"
            )));
        }
    }
    Ok((dict, codes))
}

/// Decode a string column of `count` values.
pub fn decode_str(buf: &[u8], count: usize) -> Result<Vec<String>, StorageError> {
    let (&tag, rest) = buf
        .split_first()
        .ok_or_else(|| StorageError::Corrupt("empty str chunk".into()))?;
    let read_str = |buf: &[u8], pos: &mut usize| -> Result<String, StorageError> {
        let (len, n) = get_varint(&buf[*pos..])?;
        *pos += n;
        let len = len as usize;
        if *pos + len > buf.len() {
            return Err(StorageError::Corrupt("string overruns chunk".into()));
        }
        let s = std::str::from_utf8(&buf[*pos..*pos + len])
            .map_err(|_| StorageError::Corrupt("invalid utf8".into()))?
            .to_string();
        *pos += len;
        Ok(s)
    };
    let mut out = Vec::with_capacity(count);
    match Encoding::from_tag(tag)? {
        Encoding::Plain => {
            let mut pos = 0;
            for _ in 0..count {
                out.push(read_str(rest, &mut pos)?);
            }
            if pos != rest.len() {
                return Err(StorageError::Corrupt("trailing bytes in str chunk".into()));
            }
        }
        Encoding::Dict => {
            let mut pos = 0;
            let (n_entries, n) = get_varint(rest)?;
            pos += n;
            let mut entries = Vec::with_capacity(n_entries as usize);
            for _ in 0..n_entries {
                entries.push(read_str(rest, &mut pos)?);
            }
            for _ in 0..count {
                let (idx, n) = get_varint(&rest[pos..])?;
                pos += n;
                let s = entries
                    .get(idx as usize)
                    .ok_or_else(|| StorageError::Corrupt("dict index out of range".into()))?;
                out.push(s.clone());
            }
        }
        other => {
            return Err(StorageError::Corrupt(format!(
                "{other:?} invalid for strings"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn i64_roundtrip_all_encodings() {
        let cases: Vec<Vec<i64>> = vec![
            vec![],
            vec![42],
            vec![7; 10_000],                               // RLE should win
            (0..10_000).collect(),                         // Delta should win
            (0..1_000).map(|i| i * 982_451_653).collect(), // Plain-ish
            vec![i64::MIN, i64::MAX, 0, -1, 1],
        ];
        for vals in cases {
            let enc = encode_i64(&vals);
            assert_eq!(decode_i64(&enc, vals.len()).unwrap(), vals);
        }
    }

    #[test]
    fn rle_wins_on_constant_data() {
        let vals = vec![5i64; 100_000];
        let enc = encode_i64(&vals);
        assert!(
            enc.len() < 32,
            "constant column should be tiny, got {}",
            enc.len()
        );
    }

    #[test]
    fn delta_wins_on_timestamps() {
        let vals: Vec<i64> = (0..100_000)
            .map(|i| 1_700_000_000_000 + i * 1_000)
            .collect();
        let enc = encode_i64(&vals);
        // ~2 bytes per value beats 8 for plain.
        assert!(
            enc.len() < vals.len() * 3,
            "delta not chosen: {} bytes",
            enc.len()
        );
    }

    #[test]
    fn f64_roundtrip_with_nan() {
        let vals = vec![1.5, -0.0, f64::NAN, f64::INFINITY, 42.0, 42.0, 42.0];
        let enc = encode_f64(&vals);
        let dec = decode_f64(&enc, vals.len()).unwrap();
        assert_eq!(dec.len(), vals.len());
        for (a, b) in vals.iter().zip(&dec) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn str_dictionary_wins_on_low_cardinality() {
        let vals: Vec<String> = (0..10_000).map(|i| format!("sensor-{}", i % 4)).collect();
        let enc = encode_str(&vals);
        assert_eq!(enc[0], 3, "dict tag expected");
        assert!(enc.len() < 10_000 * 4);
        assert_eq!(decode_str(&enc, vals.len()).unwrap(), vals);
    }

    #[test]
    fn str_plain_on_high_cardinality() {
        let vals: Vec<String> = (0..100).map(|i| format!("unique-value-{i}")).collect();
        let enc = encode_str(&vals);
        assert_eq!(decode_str(&enc, vals.len()).unwrap(), vals);
    }

    #[test]
    fn corrupt_chunks_error() {
        assert!(decode_i64(&[], 0).is_err());
        assert!(decode_i64(&[9, 0, 0], 1).is_err());
        assert!(decode_str(&[0, 0xff], 1).is_err());
        // Count mismatch.
        let enc = encode_i64(&[1, 2, 3]);
        assert!(decode_i64(&enc, 5).is_err());
    }

    #[test]
    fn dict_encoding_matches_str_encoding_bytes() {
        // Shuffled dict order and an unused entry must not leak into the
        // bytes: encode_dict(remap) == encode_str(materialized).
        let dict = vec![
            "unused".to_string(),
            "cpu1".to_string(),
            "node".to_string(),
            "gpu0".to_string(),
        ];
        let codes: Vec<u32> = vec![2, 1, 1, 3, 2, 2, 1, 3, 3, 2];
        let materialized: Vec<String> = codes.iter().map(|&c| dict[c as usize].clone()).collect();
        assert_eq!(encode_dict(&dict, &codes), encode_str(&materialized));
        // High-cardinality: the plain page wins on both paths too.
        let dict: Vec<String> = (0..50).map(|i| format!("unique-value-{i}")).collect();
        let codes: Vec<u32> = (0..50).collect();
        let materialized: Vec<String> = codes.iter().map(|&c| dict[c as usize].clone()).collect();
        assert_eq!(encode_dict(&dict, &codes), encode_str(&materialized));
    }

    #[test]
    fn decode_dict_reads_both_page_kinds() {
        // Dict page.
        let vals: Vec<String> = (0..1_000).map(|i| format!("s{}", i % 5)).collect();
        let enc = encode_str(&vals);
        assert_eq!(enc[0], 3, "dict page expected");
        let (dict, codes) = decode_dict(&enc, vals.len()).unwrap();
        assert_eq!(dict.len(), 5);
        let back: Vec<&str> = codes.iter().map(|&c| dict[c as usize].as_str()).collect();
        assert_eq!(back, vals.iter().map(String::as_str).collect::<Vec<_>>());
        // Plain page: interned on the fly.
        let vals: Vec<String> = (0..40).map(|i| format!("unique-{i}")).collect();
        let enc = encode_str(&vals);
        assert_eq!(enc[0], 0, "plain page expected");
        let (dict, codes) = decode_dict(&enc, vals.len()).unwrap();
        assert_eq!(dict, vals);
        assert_eq!(codes, (0..40).collect::<Vec<u32>>());
    }

    proptest! {
        #[test]
        fn i64_roundtrip_any(vals in proptest::collection::vec(any::<i64>(), 0..500)) {
            let enc = encode_i64(&vals);
            prop_assert_eq!(decode_i64(&enc, vals.len()).unwrap(), vals);
        }

        #[test]
        fn i64_roundtrip_runs(v in any::<i64>(), n in 1usize..1000) {
            let vals = vec![v; n];
            let enc = encode_i64(&vals);
            prop_assert_eq!(decode_i64(&enc, n).unwrap(), vals);
        }

        #[test]
        fn f64_roundtrip_any(vals in proptest::collection::vec(any::<f64>(), 0..500)) {
            let enc = encode_f64(&vals);
            let dec = decode_f64(&enc, vals.len()).unwrap();
            prop_assert_eq!(vals.len(), dec.len());
            for (a, b) in vals.iter().zip(&dec) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        #[test]
        fn str_roundtrip_any(vals in proptest::collection::vec(".{0,20}", 0..100)) {
            let enc = encode_str(&vals);
            prop_assert_eq!(decode_str(&enc, vals.len()).unwrap(), vals);
        }
    }
}
