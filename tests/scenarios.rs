//! Scenario-pack suite: scripted facility disturbances through the full
//! STREAM → medallion → online-detector path, validated against golden
//! expected-alerts fixtures.
//!
//! Each [`ScenarioKind`] drives the simulator deterministically from a
//! fixed seed; the resulting Bronze stream runs through the gap-marked
//! Silver transform with an [`AlertingSink`] riding on the sink path.
//! The encoded alert stream must match `tests/golden/alerts_<name>.json`
//! byte for byte; on drift the actual stream is written to
//! `target/alerts-actual-<name>.json` so CI can upload it for diffing.
//! Re-bless with `ODA_BLESS=1 cargo test --test scenarios`.
//!
//! The suite also proves the alert stream is invariant to worker count
//! and chaos fault schedules (crash/recovery replays must not re-fire
//! detectors), and closes the loop once end-to-end: detector fires →
//! digital twin replays the disturbance window → a governance incident
//! is recorded, evidence attached, released through the advisory chain,
//! and resolved.

use bytes::Bytes;
use oda::analytics::online::{alerts_jsonl, Alert, AlertingSink, OnlineAnalytics, OnlineConfig};
use oda::analytics::train_footprint_classifier;
use oda::faults::{FaultClass, FaultPlan, FaultPoint, Retry, Retryable};
use oda::govern::{DataRuc, IncidentLog, IncidentStatus, ReleaseRequest, RequestState};
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform_gap_marked};
use oda::pipeline::streaming::MemorySink;
use oda::pipeline::StreamingQuery;
use oda::stream::{Broker, Consumer, RetentionPolicy};
use oda::telemetry::record::{Observation, Quality};
use oda::telemetry::{Job, ScenarioKind, ScenarioPack, TelemetryBatch};
use std::sync::Arc;

const TOPIC: &str = "bronze";
const SEED: u64 = 2024;
const MAX_RECORDS: usize = 8;
const MAX_RESTARTS: usize = 60;

/// Detector knobs shared by every scenario: the goldens pin this exact
/// configuration, so change it only together with a re-bless.
fn scenario_config() -> OnlineConfig {
    OnlineConfig::default()
}

struct ScenarioOutcome {
    alerts: Vec<Alert>,
    silver: MemorySink,
    jobs: Vec<Job>,
    batches: Vec<TelemetryBatch>,
    restarts: usize,
}

/// Replay a scenario pack end to end: simulator → broker → streaming
/// Silver → online detectors, under an optional chaos fault plan with
/// the same crash/recovery supervisor loop as the chaos suite.
fn run_scenario(
    kind: ScenarioKind,
    plan: Option<Arc<FaultPlan>>,
    workers: usize,
) -> ScenarioOutcome {
    let pack = ScenarioPack::standard(kind);
    let mut run = pack.start(SEED).expect("standard packs validate");
    let batches = run.run_to_end().expect("scenario replays cleanly");
    let jobs = run.jobs();
    let catalog = run.generator().catalog().clone();

    let broker = Broker::new();
    broker
        .create_topic(TOPIC, 2, RetentionPolicy::unbounded())
        .unwrap();
    for batch in &batches {
        let payload = Observation::encode_batch(&batch.observations);
        broker
            .produce(
                TOPIC,
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(payload),
            )
            .unwrap();
    }

    let checkpoints = CheckpointStore::new();
    if let Some(p) = &plan {
        broker.arm_faults(p.clone() as Arc<dyn FaultPoint>);
        checkpoints.arm_faults(p.clone() as Arc<dyn FaultPoint>);
    }

    let mut engine = OnlineAnalytics::new(scenario_config());
    if kind == ScenarioKind::JobStorm {
        // The storm's classifier validates the Fig. 10 loop online:
        // completed jobs get a footprint alert with a predicted label.
        let classifier = train_footprint_classifier(run.generator().system());
        engine = engine.with_jobs(jobs.clone(), Some(classifier));
    }
    let mut sink = AlertingSink::new(MemorySink::new(), engine);

    let mut restarts = 0;
    loop {
        let consumer = Consumer::subscribe(broker.clone(), "scenario", TOPIC)
            .unwrap()
            .with_retry(Retry::with_attempts(25));
        let mut builder = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(catalog.clone()))
            .transform(streaming_silver_transform_gap_marked(15_000, 0))
            .checkpoints(checkpoints.clone())
            .max_records(MAX_RECORDS)
            .workers(workers);
        if let Some(p) = &plan {
            builder = builder.faults(p.clone() as Arc<dyn FaultPoint>);
        }
        let mut query = builder.build().unwrap();
        let outcome = loop {
            match query.run_once(&mut sink) {
                Ok(0) => break Ok(()),
                Ok(_) => {}
                Err(e) => break Err(e),
            }
        };
        match outcome {
            Ok(()) => break,
            Err(e) => {
                assert_eq!(
                    e.fault_class(),
                    FaultClass::Fatal,
                    "only fatal faults may escape the retry envelope: {e}"
                );
                restarts += 1;
                assert!(restarts <= MAX_RESTARTS, "supervisor failed to converge");
            }
        }
    }

    let (silver, engine) = sink.into_parts();
    ScenarioOutcome {
        alerts: engine.alerts().to_vec(),
        silver,
        jobs,
        batches,
        restarts,
    }
}

fn golden(kind: ScenarioKind) -> &'static str {
    match kind {
        ScenarioKind::CoolingExcursion => include_str!("golden/alerts_cooling-excursion.json"),
        ScenarioKind::PowerCapEvent => include_str!("golden/alerts_power-cap.json"),
        ScenarioKind::JobStorm => include_str!("golden/alerts_job-storm.json"),
        ScenarioKind::SensorFirmwareSkew => include_str!("golden/alerts_firmware-skew.json"),
    }
}

/// Compare against the golden fixture; on drift write the actual stream
/// as a CI artifact and fail. `ODA_BLESS=1` rewrites the fixture.
fn check_golden(kind: ScenarioKind, alerts: &[Alert]) {
    let name = kind.name();
    let actual = alerts_jsonl(alerts);
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    if std::env::var("ODA_BLESS").is_ok() {
        std::fs::write(
            root.join(format!("tests/golden/alerts_{name}.json")),
            &actual,
        )
        .expect("bless writes fixture");
        return;
    }
    let expected = golden(kind);
    if actual != expected {
        let out = root.join(format!("target/alerts-actual-{name}.json"));
        let _ = std::fs::write(&out, &actual);
        panic!(
            "{name}: alert stream drifted from tests/golden/alerts_{name}.json; \
             actual written to {}",
            out.display()
        );
    }
}

/// The scenario matrix honours `SCENARIO=<name>` so CI can shard one
/// scenario per job; locally all four run.
fn selected_kinds() -> Vec<ScenarioKind> {
    match std::env::var("SCENARIO") {
        Ok(name) => vec![ScenarioKind::from_name(&name).expect("SCENARIO must name a pack")],
        Err(_) => ScenarioKind::ALL.to_vec(),
    }
}

#[test]
fn scenario_alerts_match_goldens() {
    for kind in selected_kinds() {
        let outcome = run_scenario(kind, None, 1);
        assert_eq!(
            outcome.restarts,
            0,
            "{}: fault-free run restarted",
            kind.name()
        );
        assert!(
            !outcome.alerts.is_empty(),
            "{}: scripted disturbance raised no alerts",
            kind.name()
        );
        // The scripted disturbance itself is detected: at least one
        // alert lands inside its window. (Background job churn may
        // legitimately raise power anomalies outside it — the goldens
        // pin the complete stream either way.)
        let pack = ScenarioPack::standard(kind);
        let (start_tick, end_tick) = pack.disturbance_ticks();
        let (start_ms, end_ms) = (i64::from(start_tick) * 1_000, i64::from(end_tick) * 1_000);
        assert!(
            outcome.alerts.iter().any(|a| {
                // Footprint alerts stamp the job end, which may trail
                // the disturbance window by one job duration.
                let slack = if a.detector == "footprint" {
                    200_000
                } else {
                    15_000
                };
                a.window_ms + 15_000 > start_ms && a.window_ms < end_ms + slack
            }),
            "{}: no alert inside the disturbance window [{start_ms}, {end_ms}]: {:?}",
            kind.name(),
            outcome.alerts
        );
        // Each pack must trip its intended detector family.
        let detectors: Vec<&str> = outcome.alerts.iter().map(|a| a.detector.as_str()).collect();
        let expected: &[&str] = match kind {
            ScenarioKind::CoolingExcursion => &["zscore", "ewma"],
            ScenarioKind::PowerCapEvent => &["zscore", "ewma"],
            ScenarioKind::JobStorm => &["footprint"],
            ScenarioKind::SensorFirmwareSkew => &["health-skew"],
        };
        for want in expected {
            assert!(
                detectors.contains(want),
                "{}: expected a {want} alert, got {detectors:?}",
                kind.name()
            );
        }
        if kind == ScenarioKind::JobStorm {
            // The scripted DL burst completes within the pack, so at
            // least one footprint must carry the classifier's verdict.
            assert!(
                outcome
                    .alerts
                    .iter()
                    .any(|a| a.detector == "footprint" && a.message.contains("classified as")),
                "job storm footprints never reached the classifier"
            );
        }
        check_golden(kind, &outcome.alerts);
    }
}

#[test]
fn scenario_alerts_are_chaos_and_worker_invariant() {
    // The goldens must hold not just for the clean single-worker run
    // but under crash/recovery chaos and parallel partition stages:
    // AlertingSink's epoch dedupe makes replays invisible to detectors.
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![11],
    };
    for kind in selected_kinds() {
        let baseline = run_scenario(kind, None, 1);
        let baseline_bytes = alerts_jsonl(&baseline.alerts);
        for &seed in &seeds {
            for workers in [1usize, 8] {
                let plan = Arc::new(FaultPlan::chaos(seed));
                let outcome = run_scenario(kind, Some(plan), workers);
                assert_eq!(
                    alerts_jsonl(&outcome.alerts),
                    baseline_bytes,
                    "{}: alert stream diverged under chaos seed {seed}, {workers} workers",
                    kind.name()
                );
                assert_eq!(
                    outcome.silver.epochs(),
                    baseline.silver.epochs(),
                    "{}: silver epoch count diverged",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn cooling_excursion_closes_the_loop_through_twin_and_govern() {
    // The full paper loop for one scenario: detector fires → the
    // digital twin replays the measured window against the known job
    // schedule → an incident is recorded, evidence attached, the alert
    // data released through the advisory chain, and the incident
    // resolved with a disposition.
    let kind = ScenarioKind::CoolingExcursion;
    let outcome = run_scenario(kind, None, 1);
    let first = outcome
        .alerts
        .first()
        .expect("cooling excursion must alert");

    // Twin replay over the measured facility power of the whole run.
    let pack = ScenarioPack::standard(kind);
    let run = pack.start(SEED).unwrap();
    let catalog = run.generator().catalog().clone();
    let system = run.generator().system().clone();
    let substation = catalog.sensor_id("substation_power_w").unwrap();
    let measured: Vec<(i64, f64)> = outcome
        .batches
        .iter()
        .flat_map(|b| b.observations.iter())
        .filter(|o| o.sensor == substation && o.quality == Quality::Good)
        .map(|o| (o.ts_ms, o.value))
        .collect();
    assert!(!measured.is_empty(), "no substation readings in the run");
    let report = oda::twin::replay(&system, &outcome.jobs, &measured);
    assert!(report.samples > 0);
    assert!(
        report.power_mape < 0.15,
        "twin lost the plot during a cooling (not power) disturbance: MAPE {}",
        report.power_mape
    );

    // Governance: incident raised from the alert, twin evidence
    // attached, release approved, incident resolved.
    let mut incidents = IncidentLog::new();
    let mut ruc = DataRuc::new();
    let id = incidents.raise(
        kind.name(),
        &first.detector,
        first.severity.label(),
        first.window_ms,
        outcome.alerts.len(),
    );
    assert!(incidents.attach_evidence(
        id,
        &format!(
            "twin replay: {} samples, power MAPE {:.2}%, correlation {:.3}",
            report.samples,
            report.power_mape * 100.0,
            report.power_correlation
        ),
    ));
    let state = incidents
        .request_release(
            id,
            &mut ruc,
            ReleaseRequest::internal(
                "ops-oncall",
                &format!("alerts-{}", kind.name()),
                "facility incident review",
            ),
        )
        .unwrap();
    assert_eq!(state, RequestState::Approved);
    assert_eq!(ruc.audit_log().len(), 5, "full advisory chain on record");
    assert!(incidents.resolve(id, "CDU setpoint excursion; reverted at tick 450"));
    let incident = incidents.get(id).unwrap();
    assert!(matches!(incident.status, IncidentStatus::Resolved { .. }));
    assert_eq!(incident.release_request, Some(0));
    assert_eq!(incident.alert_count, outcome.alerts.len());
}
