//! Deterministic assembly of all models into telemetry streams.
//!
//! A [`TelemetryGenerator`] advances a simulated clock in fixed ticks.
//! Each tick emits every sensor whose period divides the current
//! timestamp, the scheduler's job lifecycle events, and the syslog
//! events of the window — one [`TelemetryBatch`] per tick, suitable for
//! publishing to the STREAM broker.

use crate::error::TelemetryError;
use crate::events::{Event, EventGenerator, Incident};
use crate::jobs::{ApplicationArchetype, JobEvent, Scheduler, WorkloadConfig};
use crate::power::PowerModel;
use crate::record::{Component, Device, Observation, Quality};
use crate::sensors::{Attachment, SensorCatalog, SensorSpec};
use crate::system::SystemModel;
use crate::thermal::{NodeThermal, ThermalModel};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, StandardNormal};

/// Everything one tick of the facility emits.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryBatch {
    /// Tick timestamp (ms).
    pub ts_ms: i64,
    /// Long-format sensor observations.
    pub observations: Vec<Observation>,
    /// Syslog events of the window ending at `ts_ms`.
    pub events: Vec<Event>,
    /// Resource-manager lifecycle events.
    pub job_events: Vec<JobEvent>,
}

/// Seeded, tick-driven telemetry generator for one system.
pub struct TelemetryGenerator {
    system: SystemModel,
    catalog: SensorCatalog,
    scheduler: Scheduler,
    power: PowerModel,
    thermal: ThermalModel,
    node_thermal: Vec<NodeThermal>,
    events: EventGenerator,
    rng: StdRng,
    tick_ms: i64,
    now_ms: i64,
    /// Monotonic per-node counters: [node][counter_slot].
    counters: Vec<[f64; 5]>,
    /// Facility power cap applied to every node's draw (W), when set.
    power_cap_w: Option<f64>,
    /// Multiplicative per-sensor calibration biases (firmware skew).
    sensor_bias: Vec<SensorBias>,
}

/// A multiplicative calibration bias on one sensor over a node range —
/// the simulator's model of a bad firmware rollout skewing readings on
/// part of the fleet.
#[derive(Debug, Clone, PartialEq)]
struct SensorBias {
    sensor: u16,
    /// First biased node (inclusive).
    node_lo: u32,
    /// One past the last biased node (exclusive).
    node_hi: u32,
    scale: f64,
}

/// Index slots for the monotonic per-node counters.
const CTR_FS_READ: usize = 0;
const CTR_FS_WRITE: usize = 1;
const CTR_FS_META: usize = 2;
const CTR_NIC_TX: usize = 3;
const CTR_NIC_RX: usize = 4;

impl TelemetryGenerator {
    /// Build a generator with the default workload and a 1 s tick.
    pub fn new(system: SystemModel, seed: u64) -> Self {
        Self::with_workload(system, seed, WorkloadConfig::default())
    }

    /// Build a generator with explicit workload knobs.
    pub fn with_workload(system: SystemModel, seed: u64, workload: WorkloadConfig) -> Self {
        let catalog = SensorCatalog::for_system(&system);
        let thermal = ThermalModel::default();
        let n = system.node_count() as usize;
        let users = workload.users;
        TelemetryGenerator {
            catalog,
            scheduler: Scheduler::with_config(system.clone(), seed ^ 0x5eed_0001, workload),
            power: PowerModel::new(system.clone()),
            node_thermal: vec![NodeThermal::new(&thermal, system.node_idle_watts); n],
            thermal,
            events: EventGenerator::new(system.node_count(), users, seed ^ 0x5eed_0002),
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_0003),
            system,
            tick_ms: 1_000,
            now_ms: 0,
            counters: vec![[0.0; 5]; n],
            power_cap_w: None,
            sensor_bias: Vec::new(),
        }
    }

    /// Override the tick period (must divide all catalog periods for
    /// exact sample-rate accounting; 1000 ms is the default).
    pub fn with_tick_ms(mut self, tick_ms: i64) -> Self {
        assert!(tick_ms > 0, "tick must be positive");
        self.tick_ms = tick_ms;
        self
    }

    /// The modeled system.
    pub fn system(&self) -> &SystemModel {
        &self.system
    }

    /// The system's sensor catalog.
    pub fn catalog(&self) -> &SensorCatalog {
        &self.catalog
    }

    /// The scheduler (for allocation context joins).
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Current simulated time (ms).
    pub fn now_ms(&self) -> i64 {
        self.now_ms
    }

    /// Schedule a security incident in the event stream.
    pub fn inject_incident(&mut self, incident: Incident) {
        self.events.inject_incident(incident);
    }

    /// Current coolant supply temperature (C).
    pub fn coolant_supply_c(&self) -> f64 {
        self.thermal.supply_c
    }

    /// Adjust the facility coolant supply set point — the actuator the
    /// operational feedback loop (paper Fig. 1) turns. Subsequent
    /// thermal telemetry reflects the change.
    pub fn set_coolant_supply_c(&mut self, c: f64) {
        self.thermal.supply_c = c;
    }

    /// Current facility power cap (W per node), if any.
    pub fn power_cap_w(&self) -> Option<f64> {
        self.power_cap_w
    }

    /// Set or clear a per-node power cap (the simulator's RAPL-style
    /// actuator for facility power-cap events). Subsequent power,
    /// cabinet, and plant telemetry reflect the clamp. RNG-free: the
    /// noise stream is untouched, so capped and uncapped runs stay
    /// sample-aligned.
    pub fn set_power_cap_w(&mut self, cap: Option<f64>) -> Result<(), TelemetryError> {
        if let Some(c) = cap {
            if !c.is_finite() || c <= 0.0 {
                return Err(TelemetryError::InvalidConfig(format!(
                    "power cap must be finite and > 0 W, got {c}"
                )));
            }
        }
        self.power_cap_w = cap;
        Ok(())
    }

    /// Apply a multiplicative calibration bias to `sensor` on nodes
    /// `node_lo..node_hi` — the firmware-skew fault scenario packs
    /// script. Replaces any earlier bias on the same sensor and range,
    /// so scripted ramps set absolute scales rather than compounding.
    pub fn set_sensor_scale(
        &mut self,
        sensor: &str,
        node_lo: u32,
        node_hi: u32,
        scale: f64,
    ) -> Result<(), TelemetryError> {
        let id = self.catalog.sensor_id(sensor)?;
        if node_lo >= node_hi || node_hi > self.system.node_count() {
            return Err(TelemetryError::InvalidConfig(format!(
                "bias node range {node_lo}..{node_hi} invalid for {} nodes",
                self.system.node_count()
            )));
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(TelemetryError::InvalidConfig(format!(
                "sensor scale must be finite and > 0, got {scale}"
            )));
        }
        if let Some(b) = self
            .sensor_bias
            .iter_mut()
            .find(|b| b.sensor == id && b.node_lo == node_lo && b.node_hi == node_hi)
        {
            b.scale = scale;
        } else {
            self.sensor_bias.push(SensorBias {
                sensor: id,
                node_lo,
                node_hi,
                scale,
            });
        }
        Ok(())
    }

    /// Remove all sensor calibration biases (firmware fixed).
    pub fn clear_sensor_scales(&mut self) {
        self.sensor_bias.clear();
    }

    /// Queue a scripted job for the scheduler — deterministic, RNG-free
    /// (see [`Scheduler::submit`]); it starts on the next tick once
    /// nodes are free.
    pub fn submit_job(
        &mut self,
        nodes_req: usize,
        archetype: ApplicationArchetype,
        duration_ms: i64,
    ) -> Result<(), TelemetryError> {
        self.scheduler
            .submit(self.now_ms, nodes_req, archetype, duration_ms)
    }

    /// Change the background workload's mean interarrival seconds.
    pub fn set_mean_interarrival_s(&mut self, s: f64) -> Result<(), TelemetryError> {
        self.scheduler.set_mean_interarrival_s(s)
    }

    /// Product of calibration biases covering `(sensor, node)`; 1.0 when
    /// unbiased.
    fn bias_for(&self, sensor: u16, node: u32) -> f64 {
        self.sensor_bias
            .iter()
            .filter(|b| b.sensor == sensor && node >= b.node_lo && node < b.node_hi)
            .map(|b| b.scale)
            .product()
    }

    fn noisy(&mut self, value: f64, spec: &SensorSpec) -> (f64, Quality) {
        if self.rng.random::<f64>() < spec.dropout {
            return (f64::NAN, Quality::Missing);
        }
        let z: f64 = StandardNormal.sample(&mut self.rng);
        let v = value * (1.0 + spec.noise_rel * z);
        // Plausibility check mimicking a collection agent: absurd
        // excursions get flagged rather than silently passed on.
        if spec.noise_rel > 0.0 && z.abs() > 4.0 {
            (v, Quality::Suspect)
        } else {
            (v, Quality::Good)
        }
    }

    /// Advance one tick and return everything it emitted.
    pub fn next_batch(&mut self) -> TelemetryBatch {
        self.now_ms += self.tick_ms;
        let ts = self.now_ms;
        let job_events = self.scheduler.advance(ts);
        let events = self.events.tick(ts, self.tick_ms);
        let mut obs = Vec::new();

        // Resolve which specs are due once per tick.
        let due_specs: Vec<SensorSpec> = self
            .catalog
            .specs()
            .iter()
            .filter(|s| self.now_ms % i64::from(s.period_ms) == 0)
            .cloned()
            .collect();
        let any_node_due = due_specs
            .iter()
            .any(|s| !matches!(s.attachment, Attachment::FacilityWide));

        let mut cabinet_power = vec![0.0f64; self.system.cabinets as usize];
        let mut total_power = 0.0f64;
        let dt_s = self.tick_ms as f64 / 1_000.0;

        if any_node_due {
            for node in 0..self.system.node_count() {
                // Compute utilization/power once per node per tick.
                let (cpu_u, gpu_u, archetype) = {
                    let job = self.scheduler.job_on(node);
                    (
                        self.power.cpu_util(job, node, ts),
                        self.power.gpu_util(job, node, ts),
                        job.map(|j| j.archetype),
                    )
                };
                let mut node_w = self.power.node_power(cpu_u, gpu_u);
                if let Some(cap) = self.power_cap_w {
                    node_w = node_w.min(cap);
                }
                cabinet_power[self.system.cabinet_of(node) as usize] += node_w;
                total_power += node_w;
                let outlet = self.node_thermal[node as usize].step(&self.thermal, node_w, dt_s);

                self.update_counters(node, cpu_u, gpu_u, archetype, dt_s);

                for spec in &due_specs {
                    self.emit_node_sensor(&mut obs, spec, node, ts, cpu_u, gpu_u, node_w, outlet);
                }
            }
        } else {
            // Facility-only tick still needs total power for the plant
            // sensors; approximate from scheduler utilization to avoid a
            // full node sweep.
            let util = self.scheduler.utilization();
            let mut est_node_w = self.power.node_power(0.3 * util, 0.6 * util);
            if let Some(cap) = self.power_cap_w {
                est_node_w = est_node_w.min(cap);
            }
            total_power = f64::from(self.system.node_count()) * est_node_w;
        }

        // Cabinet cooling-loop sensors.
        for spec in &due_specs {
            if spec.attachment == Attachment::PerCabinet {
                for cab in 0..self.system.cabinets {
                    let first_node = cab * self.system.nodes_per_cabinet;
                    let cab_kw = cabinet_power[cab as usize] / 1_000.0;
                    // Q = m_dot * c_p * dT; flow sized for ~6 C rise at peak.
                    let flow_lpm = 60.0
                        * (self.system.nodes_per_cabinet as f64 * self.system.node_peak_watts
                            / 1_000.0)
                        / (4.186 * 6.0)
                        / 60.0;
                    let d_t = cab_kw / (4.186 * flow_lpm / 60.0).max(1e-9);
                    let value = match spec.name.as_str() {
                        "loop_flow_lpm" => flow_lpm,
                        "loop_supply_temp_c" => self.thermal.supply_c,
                        "loop_return_temp_c" => self.thermal.supply_c + d_t,
                        _ => continue,
                    };
                    let (v, q) = self.noisy(value, spec);
                    obs.push(Observation {
                        ts_ms: ts,
                        sensor: spec.id,
                        component: Component {
                            node: first_node,
                            device: Device::CoolingLoop(0),
                        },
                        value: v,
                        quality: q,
                    });
                }
            }
        }

        // Facility-level sensors.
        for spec in &due_specs {
            if spec.attachment == Attachment::FacilityWide {
                let value = match spec.name.as_str() {
                    // ~4% distribution/rectification overhead at the substation.
                    "substation_power_w" => total_power * 1.04,
                    "plant_supply_temp_c" => self.thermal.supply_c,
                    "plant_return_temp_c" => self.thermal.supply_c + total_power / 1_000.0 * 0.004,
                    "plant_flow_lpm" => 2_000.0 + total_power / 1_000.0 * 0.4,
                    "bus_voltage_v" => 480.0,
                    _ => continue,
                };
                let (v, q) = self.noisy(value, spec);
                obs.push(Observation {
                    ts_ms: ts,
                    sensor: spec.id,
                    component: Component {
                        node: 0,
                        device: Device::Facility,
                    },
                    value: v,
                    quality: q,
                });
            }
        }

        TelemetryBatch {
            ts_ms: ts,
            observations: obs,
            events,
            job_events,
        }
    }

    fn update_counters(
        &mut self,
        node: u32,
        cpu_u: f64,
        gpu_u: f64,
        archetype: Option<crate::jobs::ApplicationArchetype>,
        dt_s: f64,
    ) {
        use crate::jobs::ApplicationArchetype as A;
        let c = &mut self.counters[node as usize];
        // I/O intensity is highest when compute is *low* for bursty codes;
        // use a simple inverse coupling plus a floor.
        let io_rate = 5.0e6 + 2.0e8 * (1.0 - gpu_u).max(0.0) * cpu_u;
        // Read/write mix is an application trait: simulations write
        // checkpoints and output, analytics mostly reads inputs.
        let write_frac = match archetype {
            Some(A::ClimateSim) => 0.75,
            Some(A::DlTraining) => 0.6,
            Some(A::MolecularDynamics) => 0.5,
            Some(A::Hpl) => 0.3,
            Some(A::DataAnalytics) => 0.15,
            Some(A::Debug) | None => 0.4,
        };
        c[CTR_FS_READ] += io_rate * (1.0 - write_frac) * dt_s;
        c[CTR_FS_WRITE] += io_rate * write_frac * dt_s;
        c[CTR_FS_META] += (10.0 + 500.0 * cpu_u) * dt_s;
        let net_rate = 1.0e6 + 5.0e8 * gpu_u;
        c[CTR_NIC_TX] += net_rate * dt_s;
        c[CTR_NIC_RX] += net_rate * 0.95 * dt_s;
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_node_sensor(
        &mut self,
        obs: &mut Vec<Observation>,
        spec: &SensorSpec,
        node: u32,
        ts: i64,
        cpu_u: f64,
        gpu_u: f64,
        node_w: f64,
        outlet_c: f64,
    ) {
        let devices: &[Device] = match spec.attachment {
            Attachment::PerNode => &[Device::Node],
            Attachment::PerCpu => &CPU_DEVICES[..usize::from(self.system.cpus_per_node)],
            Attachment::PerGpu => &GPU_DEVICES[..usize::from(self.system.gpus_per_node)],
            _ => return,
        };
        for (i, &device) in devices.iter().enumerate() {
            // Small per-device phase decorrelates same-node devices.
            let jitter = 1.0 + 0.02 * ((i as f64) - 0.5);
            let value = match spec.name.as_str() {
                "node_power_w" => node_w,
                "node_inlet_temp_c" => self.thermal.supply_c,
                "node_outlet_temp_c" => outlet_c,
                "cpu_power_w" => self.power.cpu_power(cpu_u) * jitter,
                "gpu_power_w" => self.power.gpu_power(gpu_u) * jitter,
                "gpu_temp_c" => self.thermal.gpu_temp_c(outlet_c, gpu_u * jitter.min(1.0)),
                "cpu_util" => (cpu_u * jitter).min(1.0),
                "gpu_util" => (gpu_u * jitter).min(1.0),
                "mem_use" => (0.15 + 0.6 * gpu_u).min(0.98),
                "gpu_mem_use" => (0.1 + 0.8 * gpu_u).min(0.99),
                "instr_retired" => cpu_u * 3.0e9 * f64::from(spec.period_ms) / 1_000.0,
                "llc_misses" => cpu_u * 4.0e7 * f64::from(spec.period_ms) / 1_000.0,
                "gpu_occupancy" => gpu_u * 100.0,
                "fs_read_bytes" => self.counters[node as usize][CTR_FS_READ],
                "fs_write_bytes" => self.counters[node as usize][CTR_FS_WRITE],
                "fs_meta_ops" => self.counters[node as usize][CTR_FS_META],
                "nic_tx_bytes" => self.counters[node as usize][CTR_NIC_TX],
                "nic_rx_bytes" => self.counters[node as usize][CTR_NIC_RX],
                _ => continue,
            };
            let value = value * self.bias_for(spec.id, node);
            let (v, q) = self.noisy(value, spec);
            obs.push(Observation {
                ts_ms: ts,
                sensor: spec.id,
                component: Component { node, device },
                value: v,
                quality: q,
            });
        }
    }

    /// Run `ticks` ticks and collect the batches.
    pub fn run(&mut self, ticks: usize) -> Vec<TelemetryBatch> {
        (0..ticks).map(|_| self.next_batch()).collect()
    }
}

const CPU_DEVICES: [Device; 4] = [
    Device::Cpu(0),
    Device::Cpu(1),
    Device::Cpu(2),
    Device::Cpu(3),
];
const GPU_DEVICES: [Device; 8] = [
    Device::Gpu(0),
    Device::Gpu(1),
    Device::Gpu(2),
    Device::Gpu(3),
    Device::Gpu(4),
    Device::Gpu(5),
    Device::Gpu(6),
    Device::Gpu(7),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensors::DataSource;

    fn tiny_gen(seed: u64) -> TelemetryGenerator {
        TelemetryGenerator::new(SystemModel::tiny(), seed)
    }

    #[test]
    fn deterministic_batches() {
        let a: Vec<_> = tiny_gen(42).run(30);
        let b: Vec<_> = tiny_gen(42).run(30);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_differs() {
        let a: Vec<_> = tiny_gen(1).run(10);
        let b: Vec<_> = tiny_gen(2).run(10);
        assert_ne!(a, b);
    }

    #[test]
    fn per_second_sensors_fire_every_tick() -> Result<(), crate::TelemetryError> {
        let mut g = tiny_gen(7);
        let batch = g.next_batch();
        let node_power_id = g.catalog().sensor_id("node_power_w")?;
        let count = batch
            .observations
            .iter()
            .filter(|o| o.sensor == node_power_id)
            .count();
        assert_eq!(count, g.system().node_count() as usize);
        Ok(())
    }

    #[test]
    fn unknown_sensor_lookup_is_an_error_not_a_panic() {
        let g = tiny_gen(7);
        let err = g.catalog().require("node_powr_w").unwrap_err();
        assert_eq!(
            err,
            crate::TelemetryError::UnknownSensor("node_powr_w".into())
        );
        assert!(err.to_string().contains("node_powr_w"));
        assert!(g.catalog().sensor_id("nope").is_err());
    }

    #[test]
    fn slow_sensors_fire_at_their_period() -> Result<(), crate::TelemetryError> {
        let mut g = tiny_gen(7);
        let fs_id = g.catalog().sensor_id("fs_read_bytes")?;
        let mut firing_ticks = Vec::new();
        for tick in 1..=120 {
            let batch = g.next_batch();
            if batch.observations.iter().any(|o| o.sensor == fs_id) {
                firing_ticks.push(tick);
            }
        }
        assert_eq!(firing_ticks, vec![60, 120]);
        Ok(())
    }

    #[test]
    fn counters_monotonic() -> Result<(), crate::TelemetryError> {
        let mut g = tiny_gen(3);
        let fs_id = g.catalog().sensor_id("fs_write_bytes")?;
        let mut last: Option<f64> = None;
        for _ in 0..240 {
            let batch = g.next_batch();
            for o in batch.observations.iter().filter(|o| o.sensor == fs_id) {
                if o.component.node == 0 && o.quality == Quality::Good {
                    if let Some(prev) = last {
                        assert!(o.value >= prev, "counter went backwards");
                    }
                    last = Some(o.value);
                }
            }
        }
        assert!(last.is_some(), "no counter samples seen");
        Ok(())
    }

    #[test]
    fn dropout_produces_missing_quality() {
        // Crank a long run; with dropout ~0.2-0.5% we expect misses.
        let mut g = tiny_gen(11);
        let mut missing = 0usize;
        let mut total = 0usize;
        for _ in 0..300 {
            let b = g.next_batch();
            total += b.observations.len();
            missing += b
                .observations
                .iter()
                .filter(|o| o.quality == Quality::Missing)
                .count();
        }
        assert!(missing > 0, "no dropouts in {total} samples");
        assert!((missing as f64) < 0.05 * total as f64, "implausibly lossy");
        // Missing values must be NaN.
        let mut g = tiny_gen(11);
        for _ in 0..300 {
            for o in g.next_batch().observations {
                if o.quality == Quality::Missing {
                    assert!(o.value.is_nan());
                }
            }
        }
    }

    #[test]
    fn node_power_within_physical_bounds() -> Result<(), crate::TelemetryError> {
        let mut g = tiny_gen(5);
        let node_power_id = g.catalog().sensor_id("node_power_w")?;
        let sys = g.system().clone();
        for _ in 0..120 {
            for o in g.next_batch().observations {
                if o.sensor == node_power_id && o.quality == Quality::Good {
                    assert!(
                        o.value > sys.node_idle_watts * 0.8 && o.value < sys.node_peak_watts * 1.2,
                        "implausible node power {}",
                        o.value
                    );
                }
            }
        }
        Ok(())
    }

    #[test]
    fn facility_sensors_present() {
        let mut g = tiny_gen(5);
        let batch = g.next_batch();
        let facility_ids: Vec<u16> = g
            .catalog()
            .by_source(DataSource::Facility)
            .map(|s| s.id)
            .collect();
        for id in facility_ids {
            assert!(
                batch.observations.iter().any(|o| o.sensor == id),
                "facility sensor {id} missing"
            );
        }
    }

    #[test]
    fn power_cap_clamps_node_power() -> Result<(), crate::TelemetryError> {
        let mut g = tiny_gen(21);
        g.submit_job(8, ApplicationArchetype::Hpl, 600_000)?;
        let node_power_id = g.catalog().sensor_id("node_power_w")?;
        g.set_power_cap_w(Some(900.0))?;
        assert!(g.set_power_cap_w(Some(-5.0)).is_err());
        assert!(g.set_power_cap_w(Some(f64::NAN)).is_err());
        for _ in 0..300 {
            for o in g.next_batch().observations {
                if o.sensor == node_power_id && o.quality == Quality::Good {
                    // Noise rides on top of the capped true value.
                    assert!(o.value < 900.0 * 1.2, "cap not applied: {}", o.value);
                }
            }
        }
        Ok(())
    }

    #[test]
    fn sensor_bias_scales_only_targeted_nodes() -> Result<(), crate::TelemetryError> {
        let scaled = 1.5;
        let run = |bias: bool| -> Result<Vec<Observation>, crate::TelemetryError> {
            let mut g = tiny_gen(33);
            if bias {
                g.set_sensor_scale("node_outlet_temp_c", 0, 2, scaled)?;
            }
            Ok(g.run(10).into_iter().flat_map(|b| b.observations).collect())
        };
        let plain = run(false)?;
        let biased = run(true)?;
        let outlet = tiny_gen(33).catalog().sensor_id("node_outlet_temp_c")?;
        assert_eq!(plain.len(), biased.len(), "bias must not add/drop samples");
        for (p, b) in plain.iter().zip(&biased) {
            if p.sensor == outlet && p.component.node < 2 && p.quality == Quality::Good {
                assert!((b.value - p.value * scaled).abs() < 1e-9);
            } else if p.value.is_finite() {
                assert_eq!(p.value, b.value, "untargeted sample changed");
            }
        }
        // Replacing the same range overwrites instead of compounding.
        let mut g = tiny_gen(33);
        g.set_sensor_scale("node_outlet_temp_c", 0, 2, 1.2)?;
        g.set_sensor_scale("node_outlet_temp_c", 0, 2, 1.5)?;
        assert!((g.bias_for(outlet, 1) - 1.5).abs() < 1e-12);
        // Invalid knob values are errors, not panics.
        assert!(g.set_sensor_scale("nope", 0, 2, 1.1).is_err());
        assert!(g.set_sensor_scale("node_outlet_temp_c", 2, 2, 1.1).is_err());
        assert!(g
            .set_sensor_scale("node_outlet_temp_c", 0, 99, 1.1)
            .is_err());
        assert!(g.set_sensor_scale("node_outlet_temp_c", 0, 2, 0.0).is_err());
        Ok(())
    }

    #[test]
    fn job_events_eventually_emitted() {
        let mut g = tiny_gen(13).with_tick_ms(60_000);
        let mut starts = 0;
        for _ in 0..120 {
            starts += g
                .next_batch()
                .job_events
                .iter()
                .filter(|e| matches!(e, JobEvent::Start(_)))
                .count();
        }
        assert!(starts > 0, "no jobs started in 2 simulated hours");
    }
}
