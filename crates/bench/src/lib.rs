//! Shared workload builders for the benchmark harness.
//!
//! Every bench regenerates one of the paper's tables or figures (see
//! DESIGN.md's per-experiment index); the builders here produce the
//! deterministic workloads they share.

use oda_pipeline::frame::Frame;
use oda_pipeline::medallion::{bronze_frame, device_label};
use oda_storage::colfile::ColumnData;
use oda_telemetry::jobs::{ApplicationArchetype, Job};
use oda_telemetry::record::{Observation, Quality};
use oda_telemetry::sensors::SensorCatalog;
use oda_telemetry::system::SystemModel;
use oda_telemetry::TelemetryGenerator;

/// Generate `ticks` ticks of tiny-system telemetry as raw observations.
pub fn tiny_observations(seed: u64, ticks: usize) -> (SensorCatalog, Vec<Observation>) {
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), seed);
    let catalog = generator.catalog().clone();
    let mut all = Vec::new();
    for _ in 0..ticks {
        all.extend(generator.next_batch().observations);
    }
    (catalog, all)
}

/// A Bronze frame with exactly `rows` long-format rows.
pub fn bronze_with_rows(seed: u64, rows: usize) -> Frame {
    let (catalog, mut obs) = tiny_observations(seed, rows / 30 + 2);
    assert!(
        obs.len() >= rows,
        "generated {} < requested {rows}",
        obs.len()
    );
    obs.truncate(rows);
    bronze_frame(&obs, &catalog)
}

/// The pre-dictionary Bronze builder, kept as a benchmark baseline: it
/// materializes `device` and `sensor` as per-row `String`s exactly like
/// `bronze_frame` did before the categorical columns became
/// dictionary-encoded. Logically equal to [`bronze_frame`] output.
pub fn bronze_frame_str(obs: &[Observation], catalog: &SensorCatalog) -> Frame {
    let mut ts = Vec::with_capacity(obs.len());
    let mut node = Vec::with_capacity(obs.len());
    let mut device = Vec::with_capacity(obs.len());
    let mut sensor = Vec::with_capacity(obs.len());
    let mut value = Vec::with_capacity(obs.len());
    let mut quality = Vec::with_capacity(obs.len());
    for o in obs {
        ts.push(o.ts_ms);
        node.push(i64::from(o.component.node));
        device.push(device_label(o.component.device));
        sensor.push(
            catalog
                .get(o.sensor)
                .map(|s| s.name.clone())
                .unwrap_or_else(|| format!("s{}", o.sensor)),
        );
        value.push(o.value);
        quality.push(match o.quality {
            Quality::Good => 0i64,
            Quality::Missing => 1,
            Quality::Suspect => 2,
        });
    }
    Frame::new(vec![
        ("ts_ms".into(), ColumnData::I64(ts.into())),
        ("node".into(), ColumnData::I64(node.into())),
        ("device".into(), ColumnData::Str(device.into())),
        ("sensor".into(), ColumnData::Str(sensor.into())),
        ("value".into(), ColumnData::F64(value.into())),
        ("quality".into(), ColumnData::I64(quality.into())),
    ])
    .expect("equal-length columns by construction")
}

/// A synthetic job for workload builders.
pub fn job(id: u64, user: u32, nodes: Vec<u32>, start_ms: i64, end_ms: i64) -> Job {
    Job {
        id,
        user,
        project: format!("PRJ{:03}", user % 40),
        program: (user % 8) as u8,
        archetype: ApplicationArchetype::ALL[(id % 6) as usize],
        nodes,
        submit_ms: start_ms,
        start_ms,
        end_ms,
        phase: (id as f64 * 0.37) % 1.0,
    }
}

/// A fleet of `n` synthetic jobs over `span_ms`, cycling users/nodes.
pub fn job_fleet(n: usize, users: u32, node_pool: u32, span_ms: i64) -> Vec<Job> {
    (0..n as u64)
        .map(|i| {
            let start = (i as i64 * span_ms) / n as i64;
            let dur = span_ms / 20 + (i as i64 % 7) * 60_000;
            let width = 1 + (i % 4) as u32;
            let first = (i as u32 * 3) % node_pool;
            let nodes = (0..width).map(|k| (first + k) % node_pool).collect();
            job(i + 1, (i as u32) % users, nodes, start, start + dur)
        })
        .collect()
}

/// A Silver-like long frame: (window, node, sensor, mean) rows for
/// `windows` windows x `nodes` nodes of the node_power_w sensor.
pub fn silver_long(windows: usize, nodes: u32) -> Frame {
    let mut w = Vec::new();
    let mut n = Vec::new();
    let mut s = Vec::new();
    let mut m = Vec::new();
    for wi in 0..windows {
        for node in 0..nodes {
            w.push(wi as i64 * 15_000);
            n.push(i64::from(node));
            s.push("node_power_w".to_string());
            m.push(600.0 + (wi as f64 * 0.31).sin() * 100.0 + f64::from(node));
        }
    }
    Frame::new(vec![
        ("window".into(), ColumnData::I64(w.into())),
        ("node".into(), ColumnData::I64(n.into())),
        ("sensor".into(), ColumnData::Str(s.into())),
        ("mean".into(), ColumnData::F64(m.into())),
    ])
    .expect("columns align")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_requested_sizes() {
        let f = bronze_with_rows(1, 10_000);
        assert_eq!(f.rows(), 10_000);
        let jobs = job_fleet(100, 20, 8, 86_400_000);
        assert_eq!(jobs.len(), 100);
        assert!(jobs
            .iter()
            .all(|j| !j.nodes.is_empty() && j.end_ms > j.start_ms));
        let s = silver_long(10, 4);
        assert_eq!(s.rows(), 40);
    }

    #[test]
    fn str_baseline_is_logically_equal_to_dict_bronze() {
        let (catalog, obs) = tiny_observations(7, 4);
        let dict = bronze_frame(&obs, &catalog);
        let str_ = bronze_frame_str(&obs, &catalog);
        assert!(dict.dict("sensor").is_ok());
        assert!(str_.strs("sensor").is_ok());
        assert_eq!(dict, str_);
    }
}
