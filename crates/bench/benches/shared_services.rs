//! Ablation (§V): the hourglass — shared refinement vs per-project
//! duplication.
//!
//! "Common data services bound overall resource usage by eliminating
//! redundant work." N projects each needing Silver either (a) share one
//! streaming refinement and read the product, or (b) each re-derive
//! Silver from Bronze. Expected shape: the shared path's cost is flat
//! in N; the duplicated path grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oda_bench::bronze_with_rows;
use oda_pipeline::ops::{group_by, Agg, AggSpec};
use oda_pipeline::window::assign_window;
use std::hint::black_box;

fn refine(bronze: &oda_pipeline::Frame) -> oda_pipeline::Frame {
    let windowed = assign_window(bronze, "ts_ms", 15_000).unwrap();
    group_by(
        &windowed,
        &["window", "node", "sensor"],
        &[AggSpec::new("value", Agg::Mean, "mean")],
    )
    .unwrap()
}

/// The per-project consumption step: a cheap read of the Silver product.
fn consume(silver: &oda_pipeline::Frame) -> usize {
    let means = silver.f64s("mean").unwrap();
    means.iter().filter(|v| v.is_finite()).count()
}

fn bench_shared(c: &mut Criterion) {
    let bronze = bronze_with_rows(51, 300_000);
    let mut group = c.benchmark_group("ablation_hourglass");
    group.sample_size(10);
    for projects in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("shared_service", projects),
            &projects,
            |b, &n| {
                b.iter(|| {
                    let silver = refine(&bronze); // once for everyone
                    let mut total = 0;
                    for _ in 0..n {
                        total += consume(&silver);
                    }
                    black_box(total)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("per_project_duplication", projects),
            &projects,
            |b, &n| {
                b.iter(|| {
                    let mut total = 0;
                    for _ in 0..n {
                        let silver = refine(&bronze); // redundant work
                        total += consume(&silver);
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shared);
criterion_main!(benches);
