//! # oda-govern — data governance and management (§IX)
//!
//! The policy half of the ODA framework:
//!
//! * [`catalog`] — the Table I registry: every organizational area and
//!   its operational-data use.
//! * [`maturity`] — the L0–L5 data-readiness model of Fig. 2 and the
//!   per-(area x source) maturity matrix of Fig. 3, seeded cell-for-cell
//!   from the paper.
//! * [`dictionary`] — the data dictionary that exploration campaigns
//!   build first (§VI-A); completeness gates maturity promotion.
//! * [`advisory`] — the Table II advisory chain and the Fig. 12
//!   DataRUC release workflow, as an auditable state machine.
//! * [`sanitize`] — deterministic anonymization/sanitization applied
//!   before external release.
//! * [`access`] — per-project channel grants with usage tracking.

pub mod access;
pub mod advisory;
pub mod catalog;
pub mod dictionary;
pub mod incident;
pub mod maturity;
pub mod sanitize;

pub use advisory::{AdvisoryStage, DataRuc, Decision, ReleaseRequest, RequestState};
pub use catalog::usage_catalog;
pub use dictionary::DataDictionary;
pub use incident::{Incident, IncidentLog, IncidentStatus};
pub use maturity::{Area, Maturity, MaturityMatrix, StreamRow};
pub use sanitize::Sanitizer;
