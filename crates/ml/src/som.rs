//! Self-organizing map: the Fig. 10 population grid.
//!
//! The right panel of Fig. 10 shows a grid where "cells are profile
//! shapes and the color is the observed population". A SOM produces
//! exactly that: each cell holds a prototype profile-shape vector;
//! mapping a dataset counts the population per cell; similar shapes
//! land in neighboring cells.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// A rectangular SOM over fixed-dimension feature vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelfOrganizingMap {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    dim: usize,
    /// Cell prototypes, row-major, `width*height` entries of `dim`.
    weights: Vec<Vec<f64>>,
}

impl SelfOrganizingMap {
    /// Random-initialized map (deterministic under `seed`).
    pub fn new(width: usize, height: usize, dim: usize, seed: u64) -> SelfOrganizingMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = (0..width * height)
            .map(|_| (0..dim).map(|_| rng.random::<f64>()).collect())
            .collect();
        SelfOrganizingMap {
            width,
            height,
            dim,
            weights,
        }
    }

    fn grid_pos(&self, cell: usize) -> (usize, usize) {
        (cell % self.width, cell / self.width)
    }

    fn dist2(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Best-matching cell index for a sample.
    pub fn bmu(&self, sample: &[f64]) -> usize {
        assert_eq!(sample.len(), self.dim);
        self.weights
            .iter()
            .enumerate()
            .min_by(|a, b| {
                Self::dist2(a.1, sample)
                    .partial_cmp(&Self::dist2(b.1, sample))
                    .expect("finite distances")
            })
            .map(|(i, _)| i)
            .expect("non-empty grid")
    }

    /// Train with exponentially decaying learning rate and neighborhood.
    pub fn train(&mut self, samples: &[Vec<f64>], epochs: usize) {
        assert!(!samples.is_empty());
        let total_steps = (epochs * samples.len()) as f64;
        let sigma0 = (self.width.max(self.height) as f64) / 2.0;
        let lr0 = 0.3;
        let mut step = 0.0;
        for _ in 0..epochs {
            for sample in samples {
                let t = step / total_steps;
                let sigma = (sigma0 * (-3.0 * t).exp()).max(0.5);
                let lr = lr0 * (-3.0 * t).exp();
                let bmu = self.bmu(sample);
                let (bx, by) = self.grid_pos(bmu);
                for cell in 0..self.weights.len() {
                    let (x, y) = self.grid_pos(cell);
                    let d2 = ((x as f64 - bx as f64).powi(2) + (y as f64 - by as f64).powi(2))
                        / (2.0 * sigma * sigma);
                    if d2 > 9.0 {
                        continue; // negligible influence
                    }
                    let h = lr * (-d2).exp();
                    for (w, s) in self.weights[cell].iter_mut().zip(sample) {
                        *w += h * (s - *w);
                    }
                }
                step += 1.0;
            }
        }
    }

    /// Population per cell (`width*height` counts, row-major).
    pub fn population(&self, samples: &[Vec<f64>]) -> Vec<u64> {
        let mut counts = vec![0u64; self.weights.len()];
        for s in samples {
            counts[self.bmu(s)] += 1;
        }
        counts
    }

    /// Dominant label per cell given labeled samples (`None` for empty
    /// cells) — used to render the archetype-separation view.
    pub fn dominant_labels(&self, samples: &[Vec<f64>], labels: &[String]) -> Vec<Option<String>> {
        use std::collections::HashMap;
        let mut per_cell: Vec<HashMap<&str, u64>> = vec![HashMap::new(); self.weights.len()];
        for (s, l) in samples.iter().zip(labels) {
            *per_cell[self.bmu(s)].entry(l.as_str()).or_insert(0) += 1;
        }
        per_cell
            .into_iter()
            .map(|counts| {
                counts
                    .into_iter()
                    .max_by_key(|&(label, n)| (n, std::cmp::Reverse(label)))
                    .map(|(label, _)| label.to_string())
            })
            .collect()
    }

    /// Prototype of one cell.
    pub fn prototype(&self, cell: usize) -> &[f64] {
        &self.weights[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight clusters in 4-D.
    fn clusters() -> (Vec<Vec<f64>>, Vec<String>) {
        let mut rng = StdRng::seed_from_u64(5);
        let centers = [
            (vec![0.0, 0.0, 0.0, 0.0], "a"),
            (vec![1.0, 1.0, 0.0, 0.0], "b"),
            (vec![0.0, 0.0, 1.0, 1.0], "c"),
        ];
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..60 {
            for (center, label) in &centers {
                let s: Vec<f64> = center
                    .iter()
                    .map(|c| c + 0.05 * (rng.random::<f64>() - 0.5))
                    .collect();
                samples.push(s);
                labels.push(label.to_string());
            }
        }
        (samples, labels)
    }

    #[test]
    fn training_is_deterministic() {
        let (samples, _) = clusters();
        let run = || {
            let mut som = SelfOrganizingMap::new(4, 4, 4, 7);
            som.train(&samples, 3);
            som.weights.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clusters_map_to_distinct_cells() {
        let (samples, labels) = clusters();
        let mut som = SelfOrganizingMap::new(5, 5, 4, 7);
        som.train(&samples, 5);
        // Each cluster's samples should concentrate on a different BMU.
        let mut bmus_per_label = std::collections::HashMap::new();
        for (s, l) in samples.iter().zip(&labels) {
            bmus_per_label
                .entry(l.clone())
                .or_insert_with(std::collections::HashSet::new)
                .insert(som.bmu(s));
        }
        let a = &bmus_per_label["a"];
        let b = &bmus_per_label["b"];
        let c = &bmus_per_label["c"];
        assert!(a.is_disjoint(b), "clusters a/b share cells");
        assert!(a.is_disjoint(c), "clusters a/c share cells");
        assert!(b.is_disjoint(c), "clusters b/c share cells");
    }

    #[test]
    fn population_sums_to_sample_count() {
        let (samples, _) = clusters();
        let mut som = SelfOrganizingMap::new(3, 3, 4, 1);
        som.train(&samples, 2);
        let pop = som.population(&samples);
        assert_eq!(pop.iter().sum::<u64>() as usize, samples.len());
        assert_eq!(pop.len(), 9);
    }

    #[test]
    fn dominant_labels_cover_populated_cells() {
        let (samples, labels) = clusters();
        let mut som = SelfOrganizingMap::new(4, 4, 4, 3);
        som.train(&samples, 4);
        let pop = som.population(&samples);
        let dom = som.dominant_labels(&samples, &labels);
        for (i, &count) in pop.iter().enumerate() {
            assert_eq!(dom[i].is_some(), count > 0, "cell {i}");
        }
        let distinct: std::collections::HashSet<_> = dom.iter().flatten().collect();
        assert_eq!(distinct.len(), 3, "all three clusters visible");
    }
}
