//! Experiment tracking and model registry (the MLflow role in Fig. 9).
//!
//! Each training run records its parameters (including the feature-store
//! version pin and seed), metrics, and the resulting model's content
//! hash. The registry maps model names to versioned artifacts for
//! "downstream inference workloads".

use crate::store::content_hash;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Run {
    /// Dense run id.
    pub id: u64,
    /// Experiment name.
    pub experiment: String,
    /// String-typed parameters ("seed", "dataset_version", ...).
    pub params: BTreeMap<String, String>,
    /// Metrics ("test_accuracy", "loss", ...).
    pub metrics: BTreeMap<String, f64>,
    /// Content hash of the produced model, when one was registered.
    pub model_hash: Option<String>,
}

/// Tracker plus model registry.
#[derive(Default)]
pub struct ExperimentTracker {
    runs: RwLock<Vec<Run>>,
    /// model name -> version hash -> bytes.
    registry: RwLock<BTreeMap<String, BTreeMap<String, Vec<u8>>>>,
}

impl ExperimentTracker {
    /// Empty tracker.
    pub fn new() -> ExperimentTracker {
        ExperimentTracker::default()
    }

    /// Record a run; returns its id.
    pub fn log_run(
        &self,
        experiment: &str,
        params: BTreeMap<String, String>,
        metrics: BTreeMap<String, f64>,
        model_bytes: Option<&[u8]>,
    ) -> u64 {
        let model_hash = model_bytes.map(content_hash);
        if let (Some(bytes), Some(hash)) = (model_bytes, &model_hash) {
            self.registry
                .write()
                .entry(experiment.to_string())
                .or_default()
                .insert(hash.clone(), bytes.to_vec());
        }
        let mut runs = self.runs.write();
        let id = runs.len() as u64;
        runs.push(Run {
            id,
            experiment: experiment.to_string(),
            params,
            metrics,
            model_hash,
        });
        id
    }

    /// All runs of an experiment.
    pub fn runs(&self, experiment: &str) -> Vec<Run> {
        self.runs
            .read()
            .iter()
            .filter(|r| r.experiment == experiment)
            .cloned()
            .collect()
    }

    /// The run with the best (max) value of `metric`.
    pub fn best_run(&self, experiment: &str, metric: &str) -> Option<Run> {
        self.runs(experiment)
            .into_iter()
            .filter(|r| r.metrics.contains_key(metric))
            .max_by(|a, b| {
                a.metrics[metric]
                    .partial_cmp(&b.metrics[metric])
                    .expect("finite metrics")
            })
    }

    /// Fetch a registered model's bytes by hash.
    pub fn model(&self, experiment: &str, hash: &str) -> Option<Vec<u8>> {
        self.registry.read().get(experiment)?.get(hash).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(seed: u64) -> BTreeMap<String, String> {
        [("seed".to_string(), seed.to_string())]
            .into_iter()
            .collect()
    }

    fn metrics(acc: f64) -> BTreeMap<String, f64> {
        [("test_accuracy".to_string(), acc)].into_iter().collect()
    }

    #[test]
    fn runs_recorded_in_order() {
        let t = ExperimentTracker::new();
        let a = t.log_run("clf", params(1), metrics(0.8), None);
        let b = t.log_run("clf", params(2), metrics(0.9), None);
        assert_eq!((a, b), (0, 1));
        assert_eq!(t.runs("clf").len(), 2);
        assert!(t.runs("other").is_empty());
    }

    #[test]
    fn best_run_by_metric() {
        let t = ExperimentTracker::new();
        t.log_run("clf", params(1), metrics(0.8), None);
        t.log_run("clf", params(2), metrics(0.95), None);
        t.log_run("clf", params(3), metrics(0.7), None);
        let best = t.best_run("clf", "test_accuracy").unwrap();
        assert_eq!(best.params["seed"], "2");
        assert!(t.best_run("clf", "unknown_metric").is_none());
    }

    #[test]
    fn model_registry_roundtrip() {
        let t = ExperimentTracker::new();
        let bytes = b"model-bytes";
        let id = t.log_run("clf", params(1), metrics(0.9), Some(bytes));
        let run = &t.runs("clf")[id as usize];
        let hash = run.model_hash.clone().unwrap();
        assert_eq!(t.model("clf", &hash).unwrap(), bytes);
        assert!(t.model("clf", "deadbeef").is_none());
    }

    #[test]
    fn identical_models_share_hash() {
        let t = ExperimentTracker::new();
        t.log_run("clf", params(1), metrics(0.9), Some(b"same"));
        t.log_run("clf", params(2), metrics(0.9), Some(b"same"));
        let runs = t.runs("clf");
        assert_eq!(runs[0].model_hash, runs[1].model_hash);
    }
}
