//! # oda-analytics — well-packaged data applications (§VII)
//!
//! The paper's "sustainable software services" built on the data
//! pipelines, each reproduced here:
//!
//! * [`profiles`] — contextualized job power profiles, the specialized
//!   Silver artifact behind Live Visual Analytics (Fig. 8).
//! * [`lva`] — Live Visual Analytics: a precomputed profile index that
//!   answers interactive queries orders of magnitude faster than
//!   re-scanning Bronze (the design claim benchmarked in `lva_query`).
//! * [`rats`] — the RATS usage report (Fig. 7): per-program CPU/GPU
//!   usage, node-hours, and allocation burn rates.
//! * [`dashboard`] — the User Assistance dashboard (Fig. 6): one
//!   indexed, job-contextualized view replacing manual per-source scans.
//! * [`copacetic`] — the security correlator: flags auth-failure bursts
//!   followed by a success, from the real-time event feed.
//! * [`online`] — streaming ODA operators: rolling z-score / EWMA
//!   anomaly detection, sensor-health scoring, and job-footprint
//!   classification, emitting deterministic replay-stable alerts from
//!   inside the pipeline.
//! * [`sparkline`] — terminal rendering for the example binaries.

pub mod copacetic;
pub mod dashboard;
pub mod io_profile;
pub mod lva;
pub mod online;
pub mod profiles;
pub mod rats;
pub mod reliability;
pub mod sparkline;

pub use copacetic::{Copacetic, SecurityAlert};
pub use dashboard::{TicketContext, UaDashboard};
pub use io_profile::JobIoProfile;
pub use lva::{LvaIndex, ProfileSummary};
pub use online::{
    alerts_jsonl, parse_alerts_jsonl, publish_alerts, train_footprint_classifier, Alert,
    AlertingSink, OnlineAnalytics, OnlineConfig, Severity,
};
pub use profiles::JobPowerProfile;
pub use rats::RatsReport;
pub use reliability::{reliability_report, ReliabilityReport};
