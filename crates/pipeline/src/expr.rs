//! Predicate and projection expressions (the WHERE/SELECT clauses).

use crate::error::PipelineError;
use crate::frame::Frame;
use oda_storage::buffer::Buffer;
use oda_storage::colfile::ColumnData;
use std::sync::Arc;

/// A scalar expression over frame columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Col(String),
    /// Float literal.
    LitF(f64),
    /// Integer literal.
    LitI(i64),
    /// String literal.
    LitS(String),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// True where the (f64) operand is NaN.
    IsNan(Box<Expr>),
    /// Numeric arithmetic (operands coerce to f64).
    Arith(ArithOp, Box<Expr>, Box<Expr>),
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (x/0 follows IEEE: ±inf / NaN).
    Div,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// Evaluated column of values. Column references hold shared buffer
/// views (a refcount bump, not a copy); only computed results own
/// fresh allocations.
enum Evaluated {
    F64(Buffer<f64>),
    I64(Buffer<i64>),
    Str(Buffer<String>),
    Dict(Arc<Vec<String>>, Buffer<u32>),
    Bool(Vec<bool>),
}

impl Expr {
    /// `col(name)` helper.
    pub fn col(name: &str) -> Expr {
        Expr::Col(name.to_string())
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(self), Box::new(other))
    }

    /// `self == other`.
    pub fn eq_(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self != other`.
    pub fn ne_(self, other: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `isnan(self)`.
    pub fn is_nan(self) -> Expr {
        Expr::IsNan(Box::new(self))
    }

    fn eval(&self, frame: &Frame) -> Result<Evaluated, PipelineError> {
        let n = frame.rows();
        Ok(match self {
            Expr::Col(name) => match frame.column(name)? {
                ColumnData::I64(v) => Evaluated::I64(v.clone()),
                ColumnData::F64(v) => Evaluated::F64(v.clone()),
                ColumnData::Str(v) => Evaluated::Str(v.clone()),
                ColumnData::Dict { dict, codes } => {
                    Evaluated::Dict(Arc::clone(dict), codes.clone())
                }
            },
            Expr::LitF(x) => Evaluated::F64(vec![*x; n].into()),
            Expr::LitI(x) => Evaluated::I64(vec![*x; n].into()),
            Expr::LitS(s) => Evaluated::Str(vec![s.clone(); n].into()),
            Expr::Cmp(op, a, b) => {
                let av = a.eval(frame)?;
                let bv = b.eval(frame)?;
                Evaluated::Bool(cmp(*op, &av, &bv)?)
            }
            Expr::And(a, b) => {
                let av = a.eval_mask_inner(frame)?;
                let bv = b.eval_mask_inner(frame)?;
                Evaluated::Bool(av.iter().zip(&bv).map(|(x, y)| *x && *y).collect())
            }
            Expr::Or(a, b) => {
                let av = a.eval_mask_inner(frame)?;
                let bv = b.eval_mask_inner(frame)?;
                Evaluated::Bool(av.iter().zip(&bv).map(|(x, y)| *x || *y).collect())
            }
            Expr::Not(a) => {
                let av = a.eval_mask_inner(frame)?;
                Evaluated::Bool(av.iter().map(|x| !x).collect())
            }
            Expr::Arith(op, a, b) => {
                let av = a.eval(frame)?.into_f64(frame.rows())?;
                let bv = b.eval(frame)?.into_f64(frame.rows())?;
                let f = |x: f64, y: f64| match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                };
                Evaluated::F64(av.iter().zip(&bv).map(|(x, y)| f(*x, *y)).collect())
            }
            Expr::IsNan(a) => match a.eval(frame)? {
                Evaluated::F64(v) => Evaluated::Bool(v.iter().map(|x| x.is_nan()).collect()),
                _ => {
                    return Err(PipelineError::TypeMismatch {
                        column: format!("{a:?}"),
                        expected: "f64 for isnan".into(),
                    })
                }
            },
        })
    }

    fn eval_mask_inner(&self, frame: &Frame) -> Result<Vec<bool>, PipelineError> {
        match self.eval(frame)? {
            Evaluated::Bool(b) => Ok(b),
            _ => Err(PipelineError::TypeMismatch {
                column: format!("{self:?}"),
                expected: "boolean".into(),
            }),
        }
    }

    /// Evaluate as a row mask over `frame`.
    pub fn eval_mask(&self, frame: &Frame) -> Result<Vec<bool>, PipelineError> {
        self.eval_mask_inner(frame)
    }

    /// Evaluate as a numeric (f64) column over `frame`.
    pub fn eval_f64(&self, frame: &Frame) -> Result<Vec<f64>, PipelineError> {
        self.eval(frame)?.into_f64(frame.rows())
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    /// `self + other` (numeric, coerces to f64).
    fn add(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Add, Box::new(self), Box::new(other))
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    /// `self - other` (numeric, coerces to f64).
    fn sub(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Sub, Box::new(self), Box::new(other))
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    /// `self * other` (numeric, coerces to f64).
    fn mul(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Mul, Box::new(self), Box::new(other))
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    /// `self / other` (numeric, IEEE division).
    fn div(self, other: Expr) -> Expr {
        Expr::Arith(ArithOp::Div, Box::new(self), Box::new(other))
    }
}

impl Evaluated {
    fn into_f64(self, _rows: usize) -> Result<Vec<f64>, PipelineError> {
        match self {
            Evaluated::F64(v) => Ok(v.into_vec()),
            Evaluated::I64(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            Evaluated::Bool(_) | Evaluated::Str(_) | Evaluated::Dict(..) => {
                Err(PipelineError::TypeMismatch {
                    column: "expression".into(),
                    expected: "numeric".into(),
                })
            }
        }
    }
}

/// Add a computed column: `frame` plus `name = expr` (always F64).
///
/// This is the SELECT-with-derivation idiom of Gold featurization —
/// e.g. watts per node, energy from power x time, ratios of counters.
pub fn with_column(frame: &Frame, name: &str, expr: &Expr) -> Result<Frame, PipelineError> {
    let values = expr.eval_f64(frame)?;
    let mut out = frame.clone();
    out.push_column(name, ColumnData::F64(values.into()))?;
    Ok(out)
}

fn cmp(op: CmpOp, a: &Evaluated, b: &Evaluated) -> Result<Vec<bool>, PipelineError> {
    let test_f = |x: f64, y: f64| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    let test_s = |x: &str, y: &str| match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    };
    Ok(match (a, b) {
        (Evaluated::F64(x), Evaluated::F64(y)) => {
            x.iter().zip(y).map(|(x, y)| test_f(*x, *y)).collect()
        }
        (Evaluated::I64(x), Evaluated::I64(y)) => x
            .iter()
            .zip(y)
            .map(|(x, y)| test_f(*x as f64, *y as f64))
            .collect(),
        (Evaluated::F64(x), Evaluated::I64(y)) => x
            .iter()
            .zip(y)
            .map(|(x, y)| test_f(*x, *y as f64))
            .collect(),
        (Evaluated::I64(x), Evaluated::F64(y)) => x
            .iter()
            .zip(y)
            .map(|(x, y)| test_f(*x as f64, *y))
            .collect(),
        (Evaluated::Str(x), Evaluated::Str(y)) => {
            x.iter().zip(y).map(|(x, y)| test_s(x, y)).collect()
        }
        (Evaluated::Dict(dict, codes), Evaluated::Str(y)) => codes
            .iter()
            .zip(y)
            .map(|(&c, y)| test_s(&dict[c as usize], y))
            .collect(),
        (Evaluated::Str(x), Evaluated::Dict(dict, codes)) => x
            .iter()
            .zip(codes)
            .map(|(x, &c)| test_s(x, &dict[c as usize]))
            .collect(),
        (Evaluated::Dict(da, ca), Evaluated::Dict(db, cb)) => ca
            .iter()
            .zip(cb)
            .map(|(&x, &y)| test_s(&da[x as usize], &db[y as usize]))
            .collect(),
        _ => {
            return Err(PipelineError::TypeMismatch {
                column: "comparison".into(),
                expected: "compatible operand types".into(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> Frame {
        Frame::new(vec![
            ("ts".into(), ColumnData::I64(vec![10, 20, 30].into())),
            ("v".into(), ColumnData::F64(vec![1.0, f64::NAN, 3.0].into())),
            (
                "s".into(),
                ColumnData::Str(vec!["x".into(), "y".into(), "x".into()].into()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn numeric_comparisons() {
        let f = frame();
        let mask = Expr::col("ts").ge(Expr::LitI(20)).eval_mask(&f).unwrap();
        assert_eq!(mask, vec![false, true, true]);
        // Mixed int/float comparison coerces.
        let mask = Expr::col("ts").lt(Expr::LitF(25.0)).eval_mask(&f).unwrap();
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn string_equality() {
        let f = frame();
        let mask = Expr::col("s")
            .eq_(Expr::LitS("x".into()))
            .eval_mask(&f)
            .unwrap();
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn boolean_combinators() {
        let f = frame();
        let e = Expr::col("ts")
            .gt(Expr::LitI(10))
            .and(Expr::col("s").eq_(Expr::LitS("x".into())));
        assert_eq!(e.eval_mask(&f).unwrap(), vec![false, false, true]);
        let e = Expr::col("ts")
            .eq_(Expr::LitI(10))
            .or(Expr::col("ts").eq_(Expr::LitI(30)));
        assert_eq!(e.eval_mask(&f).unwrap(), vec![true, false, true]);
        let e = Expr::col("ts").eq_(Expr::LitI(10)).not();
        assert_eq!(e.eval_mask(&f).unwrap(), vec![false, true, true]);
    }

    #[test]
    fn nan_detection_and_semantics() {
        let f = frame();
        let mask = Expr::col("v").is_nan().eval_mask(&f).unwrap();
        assert_eq!(mask, vec![false, true, false]);
        // NaN compares false with everything.
        let mask = Expr::col("v").ge(Expr::LitF(0.0)).eval_mask(&f).unwrap();
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn arithmetic_and_computed_columns() {
        let f = frame();
        // (ts * 2) + 1, int inputs coerce to f64.
        let e = Expr::col("ts") * Expr::LitI(2) + Expr::LitF(1.0);
        assert_eq!(e.eval_f64(&f).unwrap(), vec![21.0, 41.0, 61.0]);
        // Division follows IEEE through NaN operands.
        let e = Expr::col("v") / Expr::col("ts");
        let out = e.eval_f64(&f).unwrap();
        assert!((out[0] - 0.1).abs() < 1e-12);
        assert!(out[1].is_nan());
        // Computed column lands on the frame.
        let g = with_column(&f, "v_per_ts", &(Expr::col("v") / Expr::col("ts"))).unwrap();
        assert_eq!(g.names().last().map(String::as_str), Some("v_per_ts"));
        assert_eq!(g.f64s("v_per_ts").unwrap().len(), 3);
        // Arithmetic on strings is rejected.
        assert!((Expr::col("s") + Expr::LitI(1)).eval_f64(&f).is_err());
        // Comparisons over arithmetic results compose.
        let mask = (Expr::col("ts") * Expr::LitI(2))
            .ge(Expr::LitF(40.0))
            .eval_mask(&f)
            .unwrap();
        assert_eq!(mask, vec![false, true, true]);
    }

    #[test]
    fn division_by_zero_is_ieee() {
        let f = Frame::new(vec![(
            "x".into(),
            ColumnData::F64(vec![1.0, 0.0, -1.0].into()),
        )])
        .unwrap();
        let out = (Expr::col("x") / Expr::LitF(0.0)).eval_f64(&f).unwrap();
        assert_eq!(out[0], f64::INFINITY);
        assert!(out[1].is_nan());
        assert_eq!(out[2], f64::NEG_INFINITY);
    }

    #[test]
    fn type_errors_surface() {
        let f = frame();
        assert!(Expr::col("s").gt(Expr::LitI(1)).eval_mask(&f).is_err());
        assert!(Expr::col("missing").is_nan().eval_mask(&f).is_err());
        // A bare column is not a mask.
        assert!(Expr::col("ts").eval_mask(&f).is_err());
    }
}
