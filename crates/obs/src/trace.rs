//! Structured event tracing with deterministic IDs.
//!
//! Where the metric layer answers "how much, in aggregate", the trace
//! layer answers "what happened to *this* epoch": every instrumented
//! component records typed [`TraceEvent`]s into a bounded
//! [`TraceJournal`], and span-shaped events nest into per-epoch trees
//! that exporters ([`crate::export`]) can lay out for `chrome://tracing`
//! or parse back from JSONL.
//!
//! # Determinism rules
//!
//! The chaos suite replays seeded fault schedules and asserts
//! byte-identical Gold output; the trace layer extends that contract to
//! the journal itself:
//!
//! * **IDs carry no entropy.** [`TraceId`] is FNV-1a of the query name
//!   folded with the epoch; [`TraceSpanId`] folds the stage name and a
//!   site context (partition, offset, artifact hash) on top. No wall
//!   clock, no randomness, no addresses.
//! * **Pipeline events are emitted serially.** The executor's worker
//!   threads only *measure*; the epoch's span tree is recorded by the
//!   serial tail after the checkpoint commits, from the same captured
//!   values the metric layer reads. Exactly one tree per committed
//!   epoch, regardless of worker count or crash replays.
//! * **Canonical order.** [`TraceJournal::snapshot`] sorts by
//!   `(scope, lane, ctx, seq, span)` — all replay-stable integers — so
//!   two runs that record the same events in different arrival orders
//!   export the same bytes. `seq` is a per-span repeat counter assigned
//!   by the journal at record time.
//! * **Wall clock stays in `dur_ns`.** Durations ride along for the
//!   JSONL export and human display; the byte-pinned Chrome export uses
//!   a logical layout and never serializes them.
//!
//! Eviction order (when the ring overflows) is arrival order, which is
//! scheduling-dependent; deterministic-export runs size the journal so
//! it never evicts (see [`DEFAULT_JOURNAL_CAPACITY`]).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::lineage::{Lineage, LineageNode};

/// FNV-1a hash of a byte slice — the stack's one stable hash. Exposed
/// so frame digests and trace IDs share a single pinned algorithm.
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continue an FNV-1a hash over `bytes` from state `hash`.
const fn fnv1a_fold(hash: u64, bytes: &[u8]) -> u64 {
    let mut hash = hash;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// Fold the 8 little-endian bytes of `v` into an FNV-1a state.
const fn fnv1a_fold_u64(hash: u64, v: u64) -> u64 {
    fnv1a_fold(hash, &v.to_le_bytes())
}

/// Epoch sentinel for traces that belong to a long-lived service
/// (broker retention, storage tiers) rather than a pipeline epoch.
pub const SERVICE_TRACE: u64 = u64::MAX;

/// Default [`TraceJournal`] capacity: large enough that the chaos and
/// golden-export runs never evict, small enough to stay bounded.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// Stable identifier for one trace: a query's one committed epoch, or a
/// service-scoped stream of events ([`SERVICE_TRACE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

/// Stable identifier for one span or instant-event site within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceSpanId(pub u64);

/// Derive a [`TraceId`] from a query (or component) name and an epoch.
///
/// FNV-1a of the name, folded with the epoch's little-endian bytes —
/// stable across runs, builds, hosts, and worker counts.
pub const fn trace_id(query: &str, epoch: u64) -> TraceId {
    TraceId(fnv1a_fold_u64(fnv1a(query.as_bytes()), epoch))
}

/// Derive a [`TraceSpanId`] from its trace, a stage name, and a
/// site-specific context (partition id, artifact hash, 0 for singletons).
pub const fn trace_span(trace: TraceId, stage: &str, ctx: u64) -> TraceSpanId {
    TraceSpanId(fnv1a_fold_u64(fnv1a_fold(trace.0, stage.as_bytes()), ctx))
}

/// The typed payload of a trace event — the stack's event taxonomy.
///
/// Each variant carries only replay-stable values (names, counts,
/// offsets, byte sizes); anything wall-clock lives in
/// [`TraceEvent::dur_ns`]. The variant's *lane* (see
/// [`TraceEventKind::lane`]) fixes its place in the canonical sort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A record appended to a STREAM topic partition.
    Produce {
        /// Destination topic.
        topic: String,
        /// Partition the record landed in.
        partition: u64,
        /// Offset assigned to the record.
        offset: u64,
        /// Approximate record footprint in bytes.
        bytes: u64,
    },
    /// A retention sweep over a topic dropped `dropped` records.
    RetentionSweep {
        /// Topic swept.
        topic: String,
        /// Records dropped by the sweep.
        dropped: u64,
    },
    /// Root span of one committed pipeline epoch.
    Epoch {
        /// Records processed by the epoch.
        records: u64,
        /// Partitions that contributed records.
        partitions: u64,
        /// Replay-stable event-time watermark (ms).
        watermark_ms: i64,
    },
    /// Per-partition wrapper span (fetch + decode) under the epoch.
    Partition {
        /// Partition id.
        partition: u64,
        /// Records fetched from this partition this epoch.
        records: u64,
    },
    /// Fetch of one partition's slice of the epoch.
    PartitionFetch {
        /// Source topic.
        topic: String,
        /// Partition id.
        partition: u64,
        /// First offset fetched (the position before the epoch).
        from: u64,
        /// Position after the fetch (exclusive end offset).
        to: u64,
        /// Records returned.
        records: u64,
    },
    /// Decode of one partition's records into a Bronze frame.
    PartitionDecode {
        /// Partition id.
        partition: u64,
        /// Rows in the decoded (and partition-mapped) frame.
        rows: u64,
    },
    /// The serial Bronze→Silver transform.
    Transform {
        /// Rows entering the transform (merged Bronze frame).
        rows_in: u64,
        /// Rows leaving the transform (Silver frame).
        rows_out: u64,
    },
    /// The sink write of the epoch's output frame.
    SinkWrite {
        /// Rows written.
        rows: u64,
    },
    /// The checkpoint commit that sealed the epoch.
    Checkpoint {
        /// Epoch committed.
        epoch: u64,
    },
    /// An object written to OCEAN.
    OceanPut {
        /// Destination bucket.
        bucket: String,
        /// Object key.
        key: String,
        /// Object size in bytes.
        bytes: u64,
    },
    /// An object read from OCEAN.
    OceanGet {
        /// Source bucket.
        bucket: String,
        /// Object key.
        key: String,
        /// Object size in bytes.
        bytes: u64,
    },
    /// Points appended to a LAKE series.
    LakeInsert {
        /// Series key.
        series: String,
        /// Points inserted.
        points: u64,
    },
    /// A lifecycle action taken by the tier manager.
    Lifecycle {
        /// Artifact acted on.
        artifact: String,
        /// Action taken (`expire`, `archive`, `migrate-failed`).
        action: String,
        /// Tier the artifact occupied when the action fired.
        tier: String,
        /// Artifact size in bytes.
        bytes: u64,
    },
    /// A fault fired by the armed fault-plan injector.
    FaultInjected {
        /// Injection site label (e.g. `fetch`, `sink_write`).
        site: String,
        /// Human-readable fault kind.
        kind: String,
    },
    /// A retried operation that needed more than one attempt.
    Retry {
        /// Operation label (`produce`, `fetch`).
        op: String,
        /// Attempts consumed (including the final one).
        attempts: u64,
        /// True when the retry budget was exhausted and the call failed.
        gave_up: bool,
    },
    /// A cluster fetch served from a specific replica's log.
    ReplicaFetch {
        /// Source topic.
        topic: String,
        /// Partition id.
        partition: u64,
        /// Node whose log served the read.
        node: u64,
        /// First offset fetched (inclusive).
        from: u64,
        /// Position after the fetch (exclusive end offset).
        to: u64,
        /// Records returned.
        records: u64,
        /// True when the serving replica was in the in-sync set.
        isr: bool,
    },
    /// A partition leader election after a node crash.
    LeaderElected {
        /// Topic of the partition.
        topic: String,
        /// Partition id.
        partition: u64,
        /// Crashed leader the partition failed over from.
        from_node: u64,
        /// New leader (the lowest-id in-sync follower).
        to_node: u64,
    },
    /// A replica joined or left a partition's in-sync set.
    IsrChange {
        /// Topic of the partition.
        topic: String,
        /// Partition id.
        partition: u64,
        /// Replica node whose membership changed.
        node: u64,
        /// True when the replica (re)joined; false when it was dropped.
        joined: bool,
    },
    /// A logical query plan finished executing: records which colfile
    /// chunks fed the answer so lineage can walk from a result back to
    /// the exact row groups scanned.
    PlanExecuted {
        /// Query label (explain-tree root or caller-supplied name).
        query: String,
        /// Rows in the result frame.
        rows_out: u64,
        /// Column chunks actually decoded.
        chunks_read: u64,
        /// Column chunks skipped by stats pruning / index lookups.
        chunks_pruned: u64,
        /// Pushed predicates answered from a secondary index.
        index_hits: u64,
        /// Row groups scanned, comma-joined ascending (`"0,2,5"`; empty
        /// when the scan touched no groups or read an in-memory frame).
        groups: String,
    },
    /// An online detector fired an alert on a closed window.
    AlertFired {
        /// Detector that fired (`zscore`, `ewma`, `health`, `footprint`).
        detector: String,
        /// Alert severity (`info`, `warning`, `critical`).
        severity: String,
        /// Sensor (or subject) the alert is about.
        sensor: String,
        /// Node scope (-1 for facility-wide subjects).
        node: i64,
        /// Event-time window start the alert fired on (ms).
        window_ms: i64,
    },
}

impl TraceEventKind {
    /// Short stable name used by exporters and span-tree displays.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Produce { .. } => "produce",
            TraceEventKind::RetentionSweep { .. } => "retention_sweep",
            TraceEventKind::Epoch { .. } => "epoch",
            TraceEventKind::Partition { .. } => "partition",
            TraceEventKind::PartitionFetch { .. } => "fetch",
            TraceEventKind::PartitionDecode { .. } => "decode",
            TraceEventKind::Transform { .. } => "transform",
            TraceEventKind::SinkWrite { .. } => "sink",
            TraceEventKind::Checkpoint { .. } => "checkpoint",
            TraceEventKind::OceanPut { .. } => "ocean_put",
            TraceEventKind::OceanGet { .. } => "ocean_get",
            TraceEventKind::LakeInsert { .. } => "lake_insert",
            TraceEventKind::Lifecycle { .. } => "lifecycle",
            TraceEventKind::FaultInjected { .. } => "fault_injected",
            TraceEventKind::Retry { .. } => "retry",
            TraceEventKind::ReplicaFetch { .. } => "replica_fetch",
            TraceEventKind::LeaderElected { .. } => "leader_elected",
            TraceEventKind::IsrChange { .. } => "isr_change",
            TraceEventKind::PlanExecuted { .. } => "plan_executed",
            TraceEventKind::AlertFired { .. } => "alert_fired",
        }
    }

    /// Canonical sort lane: fixes the relative order of event kinds
    /// within one scope, independent of arrival order.
    pub fn lane(&self) -> u8 {
        match self {
            TraceEventKind::Produce { .. } => 0,
            TraceEventKind::RetentionSweep { .. } => 1,
            TraceEventKind::Epoch { .. } => 2,
            TraceEventKind::Partition { .. } => 3,
            TraceEventKind::PartitionFetch { .. } => 4,
            TraceEventKind::PartitionDecode { .. } => 5,
            TraceEventKind::Transform { .. } => 6,
            TraceEventKind::SinkWrite { .. } => 7,
            TraceEventKind::Checkpoint { .. } => 8,
            TraceEventKind::OceanPut { .. } => 9,
            TraceEventKind::OceanGet { .. } => 10,
            TraceEventKind::LakeInsert { .. } => 11,
            TraceEventKind::Lifecycle { .. } => 12,
            TraceEventKind::FaultInjected { .. } => 13,
            TraceEventKind::Retry { .. } => 14,
            TraceEventKind::ReplicaFetch { .. } => 15,
            TraceEventKind::LeaderElected { .. } => 16,
            TraceEventKind::IsrChange { .. } => 17,
            TraceEventKind::PlanExecuted { .. } => 18,
            TraceEventKind::AlertFired { .. } => 19,
        }
    }

    /// True for span-shaped events (they have a meaningful duration and
    /// participate in the span tree); false for instant events.
    pub fn is_span(&self) -> bool {
        matches!(
            self,
            TraceEventKind::Epoch { .. }
                | TraceEventKind::Partition { .. }
                | TraceEventKind::PartitionFetch { .. }
                | TraceEventKind::PartitionDecode { .. }
                | TraceEventKind::Transform { .. }
                | TraceEventKind::SinkWrite { .. }
                | TraceEventKind::Checkpoint { .. }
                | TraceEventKind::PlanExecuted { .. }
        )
    }
}

/// One structured trace event: stable IDs, a deterministic sort key,
/// an optional parent span, and a typed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Trace this event belongs to.
    pub trace: TraceId,
    /// This event's span site (stable across runs).
    pub span: TraceSpanId,
    /// Enclosing span, if any (builds the span tree).
    pub parent: Option<TraceSpanId>,
    /// Deterministic scope for canonical ordering: the epoch for
    /// pipeline events, 0 for service-scoped events.
    pub scope: u64,
    /// Site context (partition id, packed offsets, artifact hash…).
    pub ctx: u64,
    /// Per-span repeat counter, assigned by the journal at record time.
    pub seq: u64,
    /// Wall-clock duration in nanoseconds (0 for instant events).
    /// Excluded from the byte-pinned Chrome export by construction.
    pub dur_ns: u64,
    /// Typed payload.
    pub kind: TraceEventKind,
}

impl TraceEvent {
    /// Short stable name of the event's kind.
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }

    /// Canonical sort key: `(scope, lane, ctx, seq, span, trace)` —
    /// every component replay-stable.
    pub fn sort_key(&self) -> (u64, u8, u64, u64, u64, u64) {
        (
            self.scope,
            self.kind.lane(),
            self.ctx,
            self.seq,
            self.span.0,
            self.trace.0,
        )
    }
}

#[derive(Debug, Default)]
struct JournalState {
    events: VecDeque<TraceEvent>,
    /// Next repeat index per span site.
    seq: HashMap<u64, u64>,
    evicted: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// Recording takes one short mutex hold (the stack records at epoch /
/// object / fault granularity, not per row, so contention is nil). When
/// full, the oldest events are evicted in arrival order; [`Self::evicted`]
/// counts the loss so exporters can flag truncated journals. A journal
/// with capacity 0 — and any journal when `collect` is compiled out —
/// records nothing.
#[derive(Debug)]
pub struct TraceJournal {
    capacity: usize,
    state: Mutex<JournalState>,
}

impl TraceJournal {
    /// A journal bounded to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            state: Mutex::new(JournalState::default()),
        }
    }

    /// The bound this journal was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Record one event, assigning its per-span `seq`. No-op when the
    /// capacity is 0 or collection is compiled out.
    pub fn record(&self, mut event: TraceEvent) {
        if !crate::enabled() || self.capacity == 0 {
            return;
        }
        let mut state = self.state.lock().unwrap();
        let next = state.seq.entry(event.span.0).or_insert(0);
        event.seq = *next;
        *next += 1;
        state.events.push_back(event);
        while state.events.len() > self.capacity {
            state.events.pop_front();
            state.evicted += 1;
        }
    }

    /// Events currently held (after any eviction).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().events.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted so far because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.state.lock().unwrap().evicted
    }

    /// Snapshot in canonical order — sorted by [`TraceEvent::sort_key`],
    /// so identical event sets export identical bytes regardless of
    /// arrival interleaving.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut events = self.snapshot_arrival();
        events.sort_by_key(TraceEvent::sort_key);
        events
    }

    /// Snapshot in arrival order (the ring's raw contents) — the order
    /// eviction follows.
    pub fn snapshot_arrival(&self) -> Vec<TraceEvent> {
        let state = self.state.lock().unwrap();
        state.events.iter().cloned().collect()
    }
}

impl Default for TraceJournal {
    fn default() -> Self {
        Self::new(DEFAULT_JOURNAL_CAPACITY)
    }
}

/// The handle instrumented components hold: a shared [`TraceJournal`]
/// plus a shared [`Lineage`] graph. Cheap to clone (both are
/// `Arc`-backed); attach one tracer to every component in a flow via
/// the `attach_tracer` idiom and all events land in one journal.
#[derive(Debug, Clone)]
pub struct Tracer {
    journal: Arc<TraceJournal>,
    lineage: Lineage,
}

impl Tracer {
    /// A tracer with the default journal bound.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A tracer whose journal holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            journal: Arc::new(TraceJournal::new(capacity)),
            lineage: Lineage::new(),
        }
    }

    /// The shared journal.
    pub fn journal(&self) -> &TraceJournal {
        &self.journal
    }

    /// The shared lineage graph.
    pub fn lineage(&self) -> &Lineage {
        &self.lineage
    }

    /// Record one event (convenience over building a [`TraceEvent`]).
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        trace: TraceId,
        span: TraceSpanId,
        parent: Option<TraceSpanId>,
        scope: u64,
        ctx: u64,
        dur_ns: u64,
        kind: TraceEventKind,
    ) {
        self.journal.record(TraceEvent {
            trace,
            span,
            parent,
            scope,
            ctx,
            seq: 0,
            dur_ns,
            kind,
        });
    }

    /// Canonical-order snapshot of the journal.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.journal.snapshot()
    }

    /// Record a lineage edge `from --relation--> to`.
    pub fn link(&self, from: LineageNode, to: LineageNode, relation: &str) {
        self.lineage.link(from, to, relation);
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(ctx: u64) -> TraceEvent {
        let trace = trace_id("t", 0);
        TraceEvent {
            trace,
            span: trace_span(trace, "produce", ctx),
            parent: None,
            scope: 0,
            ctx,
            seq: 0,
            dur_ns: 0,
            kind: TraceEventKind::Produce {
                topic: "t".into(),
                partition: 0,
                offset: ctx,
                bytes: 1,
            },
        }
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        assert_eq!(trace_id("q", 3), trace_id("q", 3));
        assert_ne!(trace_id("q", 3), trace_id("q", 4));
        assert_ne!(trace_id("q", 3), trace_id("r", 3));
        let t = trace_id("q", 3);
        assert_eq!(trace_span(t, "fetch", 1), trace_span(t, "fetch", 1));
        assert_ne!(trace_span(t, "fetch", 1), trace_span(t, "fetch", 2));
        assert_ne!(trace_span(t, "fetch", 1), trace_span(t, "decode", 1));
        // Pinned: the empty-input FNV-1a basis must never drift.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // trace_id folds exactly 8 epoch bytes onto the name hash.
        assert_eq!(
            trace_id("q", 0).0,
            fnv1a_fold_u64(fnv1a(b"q"), 0),
            "derivation must stay FNV-1a(name) ⊕ epoch bytes"
        );
    }

    #[test]
    fn journal_assigns_per_span_seq() {
        let j = TraceJournal::new(16);
        for _ in 0..3 {
            j.record(instant(7));
        }
        j.record(instant(8));
        if !crate::enabled() {
            assert_eq!(j.len(), 0);
            return;
        }
        let events = j.snapshot();
        let seqs: Vec<u64> = events
            .iter()
            .filter(|e| e.ctx == 7)
            .map(|e| e.seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(events.iter().filter(|e| e.ctx == 8).count(), 1);
    }

    #[test]
    fn snapshot_is_canonically_sorted() {
        let j = TraceJournal::new(16);
        // Record out of ctx order; snapshot must sort.
        j.record(instant(5));
        j.record(instant(1));
        j.record(instant(3));
        if !crate::enabled() {
            return;
        }
        let ctxs: Vec<u64> = j.snapshot().iter().map(|e| e.ctx).collect();
        assert_eq!(ctxs, vec![1, 3, 5]);
        let arrival: Vec<u64> = j.snapshot_arrival().iter().map(|e| e.ctx).collect();
        assert_eq!(arrival, vec![5, 1, 3]);
    }
}
