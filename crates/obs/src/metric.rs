//! Scalar metrics: monotonic [`Counter`]s and signed [`Gauge`]s.
//!
//! Both are a single atomic with relaxed ordering — the data plane pays
//! one uncontended atomic add per observation, no locks. With the
//! `collect` feature off the atomic disappears and every method is an
//! inlined no-op returning zero.

#[cfg(feature = "collect")]
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing `u64` counter (events, records, bytes).
///
/// Counters only go up; wrapping on overflow keeps addition exactly
/// associative, though at u64 width overflow is not a practical
/// concern. Cheap to clone behind an `Arc` from the registry.
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "collect")]
    value: AtomicU64,
}

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "collect")]
            value: AtomicU64::new(0),
        }
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "collect")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "collect"))]
        let _ = n;
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (zero when collection is compiled out).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "collect")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "collect"))]
        {
            0
        }
    }
}

/// A signed `i64` gauge (lag, occupancy, in-flight counts).
///
/// Gauges move both ways: `set` for absolute readings, `add`/`sub` for
/// deltas maintained at the call site.
#[derive(Debug, Default)]
pub struct Gauge {
    #[cfg(feature = "collect")]
    value: AtomicI64,
}

impl Gauge {
    /// A fresh gauge at zero.
    pub const fn new() -> Self {
        Self {
            #[cfg(feature = "collect")]
            value: AtomicI64::new(0),
        }
    }

    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(feature = "collect")]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(not(feature = "collect"))]
        let _ = v;
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, n: i64) {
        #[cfg(feature = "collect")]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "collect"))]
        let _ = n;
    }

    /// Subtract a delta.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Current value (zero when collection is compiled out).
    #[inline]
    pub fn get(&self) -> i64 {
        #[cfg(feature = "collect")]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(not(feature = "collect"))]
        {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        if crate::enabled() {
            assert_eq!(c.get(), 42);
        } else {
            assert_eq!(c.get(), 0);
        }
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        if crate::enabled() {
            assert_eq!(g.get(), 12);
        } else {
            assert_eq!(g.get(), 0);
        }
    }

    #[test]
    fn counter_is_exact_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        if crate::enabled() {
            assert_eq!(c.get(), 8000);
        }
    }
}
