//! Checkpoints: atomic (epoch, offsets, state) snapshots.
//!
//! The streaming engine commits a checkpoint after each micro-batch:
//! the batch epoch, the consumer offsets *after* the batch, and the
//! state snapshot. Recovery loads the latest checkpoint and replays
//! from there — with an idempotent sink this yields exactly-once output
//! (§V-B: "advanced failure and recovery mechanisms that can be
//! difficult to re-engineer from scratch" — re-engineered here).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One committed checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Micro-batch epoch (0-based, dense).
    pub epoch: u64,
    /// partition -> next offset to read.
    pub offsets: BTreeMap<u32, u64>,
    /// Serialized [`crate::state::StateStore`].
    pub state: Vec<u8>,
}

/// Durable checkpoint store (in-memory stand-in for a checkpoint
/// directory; keeps the full history so tests can inspect progression).
#[derive(Debug, Default, Clone)]
pub struct CheckpointStore {
    inner: Arc<Mutex<Vec<Checkpoint>>>,
}

impl CheckpointStore {
    /// Empty store.
    pub fn new() -> CheckpointStore {
        CheckpointStore::default()
    }

    /// Commit a checkpoint. Epochs must be dense and increasing.
    pub fn commit(&self, cp: Checkpoint) {
        let mut inner = self.inner.lock();
        let expected = inner.len() as u64;
        assert_eq!(cp.epoch, expected, "checkpoint epochs must be dense");
        inner.push(cp);
    }

    /// Latest committed checkpoint, if any.
    pub fn latest(&self) -> Option<Checkpoint> {
        self.inner.lock().last().cloned()
    }

    /// Number of committed checkpoints.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been committed.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_and_latest() {
        let store = CheckpointStore::new();
        assert!(store.latest().is_none());
        store.commit(Checkpoint {
            epoch: 0,
            offsets: BTreeMap::new(),
            state: vec![1],
        });
        store.commit(Checkpoint {
            epoch: 1,
            offsets: [(0u32, 10u64)].into_iter().collect(),
            state: vec![2],
        });
        let latest = store.latest().unwrap();
        assert_eq!(latest.epoch, 1);
        assert_eq!(latest.offsets[&0], 10);
        assert_eq!(store.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn sparse_epochs_rejected() {
        let store = CheckpointStore::new();
        store.commit(Checkpoint {
            epoch: 5,
            offsets: BTreeMap::new(),
            state: vec![],
        });
    }

    #[test]
    fn clones_share_storage() {
        let a = CheckpointStore::new();
        let b = a.clone();
        a.commit(Checkpoint {
            epoch: 0,
            offsets: BTreeMap::new(),
            state: vec![],
        });
        assert_eq!(b.len(), 1);
    }
}
