//! Storage-tier metrics: tier occupancy, lifecycle/compaction activity,
//! and OCEAN read/write byte counters.

use std::sync::Arc;

use oda_obs::{Counter, Gauge, Registry};

use crate::tiering::{LifecycleAction, Tier, TierManager};

/// Occupancy gauges and lifecycle counters for [`TierManager`].
#[derive(Debug, Clone)]
pub struct TierMetrics {
    tier_bytes: [Arc<Gauge>; Tier::ALL.len()],
    expired: Arc<Counter>,
    expired_bytes: Arc<Counter>,
    archived: Arc<Counter>,
    archived_bytes: Arc<Counter>,
    migrate_failed: Arc<Counter>,
}

impl TierMetrics {
    /// Register the tier metric families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        let tier_bytes = Tier::ALL.map(|t| {
            registry.gauge(
                "storage_tier_bytes",
                "Bytes held per storage tier",
                &[("tier", t.label())],
            )
        });
        let action = |a: &str| {
            registry.counter(
                "storage_lifecycle_actions_total",
                "Lifecycle transitions applied, by action",
                &[("action", a)],
            )
        };
        let action_bytes = |a: &str| {
            registry.counter(
                "storage_lifecycle_bytes_total",
                "Bytes moved or released by lifecycle transitions, by action",
                &[("action", a)],
            )
        };
        Self {
            tier_bytes,
            expired: action("expired"),
            expired_bytes: action_bytes("expired"),
            archived: action("archived"),
            archived_bytes: action_bytes("archived"),
            migrate_failed: action("migrate-failed"),
        }
    }

    /// Refresh occupancy gauges from the manager's accounting.
    pub fn record_occupancy(&self, manager: &TierManager) {
        let by_tier = manager.bytes_by_tier();
        for (i, t) in Tier::ALL.iter().enumerate() {
            self.tier_bytes[i].set(by_tier[t] as i64);
        }
    }

    /// Fold one lifecycle pass's actions into the counters.
    pub fn record_actions(&self, actions: &[LifecycleAction]) {
        for a in actions {
            match a {
                LifecycleAction::Expired { bytes, .. } => {
                    self.expired.inc();
                    self.expired_bytes.add(*bytes);
                }
                LifecycleAction::Archived { bytes, .. } => {
                    self.archived.inc();
                    self.archived_bytes.add(*bytes);
                }
                LifecycleAction::MigrateFailed { .. } => {
                    self.migrate_failed.inc();
                }
            }
        }
    }
}

/// Zero-copy frame-buffer accounting: publishes the process-wide
/// [`crate::buffer`] copy/share counters into a registry.
///
/// Deliberately a separate, explicitly-attached family (not auto-wired
/// into pipeline metrics): the counters are process globals, and the
/// caller decides when a snapshot lands in which registry.
#[derive(Debug)]
pub struct BufferMetrics {
    bytes_copied: Arc<Counter>,
    buffers_shared: Arc<Counter>,
    last: std::sync::Mutex<(u64, u64)>,
}

impl BufferMetrics {
    /// Register the buffer metric families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            bytes_copied: registry.counter(
                "frame_bytes_copied_total",
                "Bytes deep-copied when a shared frame buffer had to materialize",
                &[],
            ),
            buffers_shared: registry.counter(
                "frame_buffers_shared_total",
                "Frame buffers shared by refcount bump instead of copied",
                &[],
            ),
            last: std::sync::Mutex::new((0, 0)),
        }
    }

    /// Fold the process-wide buffer counters into the registry. Only
    /// the delta since this instance's previous publish is added, so
    /// repeated publishes never double-count.
    pub fn publish(&self) {
        let (copied, shared) = crate::buffer::buffer_stats();
        let mut last = self.last.lock().expect("buffer metrics poisoned");
        self.bytes_copied.add(copied.saturating_sub(last.0));
        self.buffers_shared.add(shared.saturating_sub(last.1));
        *last = (copied, shared);
    }
}

/// Object-store read/write accounting for [`crate::Ocean`].
#[derive(Debug, Clone)]
pub struct OceanMetrics {
    /// Objects written.
    pub put_objects: Arc<Counter>,
    /// Bytes written.
    pub put_bytes: Arc<Counter>,
    /// Objects read.
    pub get_objects: Arc<Counter>,
    /// Bytes read.
    pub get_bytes: Arc<Counter>,
    /// Objects currently stored.
    pub objects: Arc<Gauge>,
}

impl OceanMetrics {
    /// Register the OCEAN metric families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            put_objects: registry.counter(
                "ocean_put_objects_total",
                "Objects written to the OCEAN store",
                &[],
            ),
            put_bytes: registry.counter(
                "ocean_put_bytes_total",
                "Bytes written to the OCEAN store",
                &[],
            ),
            get_objects: registry.counter(
                "ocean_get_objects_total",
                "Objects read from the OCEAN store",
                &[],
            ),
            get_bytes: registry.counter(
                "ocean_get_bytes_total",
                "Bytes read from the OCEAN store",
                &[],
            ),
            objects: registry.gauge(
                "ocean_objects",
                "Objects currently stored across all buckets",
                &[],
            ),
        }
    }
}

/// Point-count and compaction accounting for [`crate::Lake`].
#[derive(Debug, Clone)]
pub struct LakeMetrics {
    /// Points inserted.
    pub inserted: Arc<Counter>,
    /// Points dropped by segment retention (LAKE compaction).
    pub retention_dropped: Arc<Counter>,
    /// Points currently retained.
    pub points: Arc<Gauge>,
}

impl LakeMetrics {
    /// Register the LAKE metric families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            inserted: registry.counter(
                "lake_inserted_points_total",
                "Points inserted into the LAKE store",
                &[],
            ),
            retention_dropped: registry.counter(
                "lake_retention_dropped_points_total",
                "Points dropped by LAKE segment retention",
                &[],
            ),
            points: registry.gauge(
                "lake_points",
                "Points currently retained in the LAKE store",
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiering::DataClass;

    #[test]
    fn buffer_metrics_publish_deltas_without_double_counting() {
        let reg = Registry::new();
        let m = BufferMetrics::new(&reg);
        // Share and copy through real buffers so the globals move.
        let b: crate::buffer::Buffer<i64> = vec![1, 2, 3, 4].into();
        let view = b.clone();
        let mut copy = view.slice(1, 2);
        let _ = copy.make_mut();
        m.publish();
        m.publish();
        if oda_obs::enabled() {
            let shared = reg.counter_value("frame_buffers_shared_total", &[]);
            let copied = reg.counter_value("frame_bytes_copied_total", &[]);
            // Other tests share the process globals: assert floors only.
            assert!(shared >= 2, "clone + slice both share: {shared}");
            assert!(copied >= 16, "windowed make_mut copies 2x8 bytes: {copied}");
            // Publishing twice must not double-count: the registry can
            // never exceed the monotonic process-wide totals.
            let (g_copied, g_shared) = crate::buffer::buffer_stats();
            assert!(shared <= g_shared);
            assert!(copied <= g_copied);
        }
    }

    #[test]
    fn tier_metrics_track_occupancy_and_actions() {
        let reg = Registry::new();
        let m = TierMetrics::new(&reg);
        let mut mgr = TierManager::new();
        mgr.register("a", DataClass::Bronze, Tier::Ocean, 1_000_000, 0);
        m.record_occupancy(&mgr);
        if oda_obs::enabled() {
            assert_eq!(
                reg.gauge_value("storage_tier_bytes", &[("tier", "OCEAN")]),
                1_000_000
            );
        }
        let actions = mgr.advance(40 * 86_400_000);
        m.record_actions(&actions);
        m.record_occupancy(&mgr);
        if oda_obs::enabled() {
            assert_eq!(
                reg.counter_value("storage_lifecycle_actions_total", &[("action", "archived")]),
                1
            );
            assert_eq!(
                reg.counter_value("storage_lifecycle_bytes_total", &[("action", "archived")]),
                500_000
            );
            assert_eq!(
                reg.gauge_value("storage_tier_bytes", &[("tier", "OCEAN")]),
                0
            );
            assert_eq!(
                reg.gauge_value("storage_tier_bytes", &[("tier", "GLACIER")]),
                500_000
            );
        }
    }
}
