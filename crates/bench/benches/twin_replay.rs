//! Experiment F11 (paper Fig. 11): ExaDigiT replay performance and
//! validation headline.
//!
//! Prints the replay validation numbers once (MAPE / correlation of
//! predicted vs measured facility power through an HPL run), then
//! benchmarks the twin's unit costs: one power sample, one cooling
//! step, and a full 2-hour replay.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oda_telemetry::SystemModel;
use oda_twin::cooling::{CoolingParams, CoolingPlant};
use oda_twin::power::PowerSim;
use oda_twin::replay::replay;
use oda_twin::scenario::hpl_run;
use std::hint::black_box;

fn measured_series(system: &SystemModel, jobs: &[oda_telemetry::jobs::Job]) -> Vec<(i64, f64)> {
    let sim = PowerSim::new(system.clone(), jobs.to_vec());
    (0..240)
        .map(|i| {
            let ts = i * 30_000;
            let truth = sim.sample(ts).facility_w;
            let noise = 1.0 + 0.02 * ((i as f64) * 0.9).sin();
            (ts, truth * noise)
        })
        .collect()
}

fn bench_twin(c: &mut Criterion) {
    let system = SystemModel::tiny();
    let jobs = vec![hpl_run(&system, 1.0, 2.0)];
    let measured = measured_series(&system, &jobs);

    // Headline: the Fig. 11 validation.
    let report = replay(&system, &jobs, &measured);
    println!("\n=== F11: replay validation headline ===");
    println!(
        "  MAPE {:.2}%  correlation {:.3}  mean losses {:.0} W\n",
        report.power_mape * 100.0,
        report.power_correlation,
        report.mean_losses_w
    );

    let mut group = c.benchmark_group("f11_twin");
    let sim = PowerSim::new(system.clone(), jobs.clone());
    group.bench_function("power_sample", |b| {
        let mut t = 0i64;
        b.iter(|| {
            t += 1_000;
            black_box(sim.sample(t % 7_200_000).facility_w)
        })
    });
    group.bench_function("cooling_step_60s", |b| {
        let mut plant = CoolingPlant::new(CoolingParams::sized_for(system.peak_mw));
        b.iter(|| black_box(plant.step(12_000.0, 60.0).t_secondary_return_c))
    });
    group.throughput(Throughput::Elements(measured.len() as u64));
    group.sample_size(10);
    group.bench_function("full_replay_240_samples", |b| {
        b.iter(|| black_box(replay(&system, &jobs, &measured).power_mape))
    });
    group.finish();
}

criterion_group!(benches, bench_twin);
criterion_main!(benches);
