//! Chunked, branch-lean compute kernels over primitive slices and
//! dictionary codes.
//!
//! Every hot row loop in the pipeline — filter, gather, predicate
//! masks, grouped aggregation — funnels through this module instead of
//! living as a private loop in its consumer, so there is exactly one
//! place where the access pattern is tuned. The kernel contract
//! (DESIGN.md §14):
//!
//! * Kernels take plain slices (`&[T]`, `&[bool]`, `&[u32]` codes) and
//!   return owned `Vec`s or mutate a caller-provided mask in place —
//!   they never see `Frame`, `ColumnData`, or `Buffer`. Callers decide
//!   what is a view and what is a copy; kernels only compute.
//! * Filter kernels walk the mask in fixed [`CHUNK`]-row blocks and
//!   count each block first: all-true blocks bulk-copy
//!   (`extend_from_slice`), all-false blocks are skipped, and only
//!   mixed blocks fall back to the per-row loop. Dense and sparse
//!   masks — the common cases after pruning — never branch per row.
//! * Comparison kernels hoist the operator match out of the loop so
//!   the inner loop is a single fused compare-and-AND per row, and
//!   follow `Expr` semantics exactly: i64 coerces to f64, NaN compares
//!   false for every operator except `!=`.

use crate::expr::CmpOp;
use crate::ops::Agg;

/// Rows per block in the chunked filter kernels.
pub const CHUNK: usize = 64;

/// Number of set lanes in `mask`.
pub fn count_true(mask: &[bool]) -> usize {
    mask.iter().map(|&m| m as usize).sum()
}

/// Filter `Copy` elements through `mask`.
///
/// # Panics
/// If `vals` and `mask` lengths differ.
pub fn filter_copy<T: Copy>(vals: &[T], mask: &[bool]) -> Vec<T> {
    assert_eq!(vals.len(), mask.len(), "mask length mismatch");
    let mut out = Vec::with_capacity(count_true(mask));
    for (vc, mc) in vals.chunks(CHUNK).zip(mask.chunks(CHUNK)) {
        let n = count_true(mc);
        if n == mc.len() {
            out.extend_from_slice(vc);
        } else if n > 0 {
            for (v, &m) in vc.iter().zip(mc) {
                if m {
                    out.push(*v);
                }
            }
        }
    }
    out
}

/// Filter `Clone` elements (strings) through `mask`.
///
/// # Panics
/// If `vals` and `mask` lengths differ.
pub fn filter_clone<T: Clone>(vals: &[T], mask: &[bool]) -> Vec<T> {
    assert_eq!(vals.len(), mask.len(), "mask length mismatch");
    let mut out = Vec::with_capacity(count_true(mask));
    for (vc, mc) in vals.chunks(CHUNK).zip(mask.chunks(CHUNK)) {
        let n = count_true(mc);
        if n == mc.len() {
            out.extend_from_slice(vc);
        } else if n > 0 {
            for (v, &m) in vc.iter().zip(mc) {
                if m {
                    out.push(v.clone());
                }
            }
        }
    }
    out
}

/// Gather `Copy` elements by row index (indices may repeat/reorder).
pub fn gather_copy<T: Copy>(vals: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| vals[i]).collect()
}

/// Gather `Clone` elements by row index (indices may repeat/reorder).
pub fn gather_clone<T: Clone>(vals: &[T], indices: &[usize]) -> Vec<T> {
    indices.iter().map(|&i| vals[i].clone()).collect()
}

#[inline]
fn mask_and_by<T: Copy>(mask: &mut [bool], vals: &[T], f: impl Fn(T) -> bool) {
    for (m, &x) in mask.iter_mut().zip(vals) {
        *m &= f(x);
    }
}

/// AND a per-code truth table into `mask` over dictionary codes: the
/// dictionary is tested once per distinct entry (building `table`),
/// never per row.
pub fn mask_and_code_table(mask: &mut [bool], codes: &[u32], table: &[bool]) {
    mask_and_by(mask, codes, |c| table[c as usize]);
}

/// AND `(s == value) == want` into `mask` over plain strings.
pub fn mask_and_str_eq(mask: &mut [bool], vals: &[String], value: &str, want: bool) {
    for (m, s) in mask.iter_mut().zip(vals) {
        *m &= (s == value) == want;
    }
}

/// `x op y` under IEEE semantics (NaN false for all but `!=`).
pub fn cmp_f64(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
    }
}

/// AND `x op value` into `mask` over f64 values. The operator match is
/// hoisted out of the loop.
pub fn mask_and_cmp_f64(mask: &mut [bool], vals: &[f64], op: CmpOp, value: f64) {
    match op {
        CmpOp::Eq => mask_and_by(mask, vals, |x| x == value),
        CmpOp::Ne => mask_and_by(mask, vals, |x| x != value),
        CmpOp::Lt => mask_and_by(mask, vals, |x| x < value),
        CmpOp::Le => mask_and_by(mask, vals, |x| x <= value),
        CmpOp::Gt => mask_and_by(mask, vals, |x| x > value),
        CmpOp::Ge => mask_and_by(mask, vals, |x| x >= value),
    }
}

/// AND `(x as f64) op value` into `mask` over i64 values (the same
/// int-to-float coercion `Expr` comparisons use).
pub fn mask_and_cmp_i64(mask: &mut [bool], vals: &[i64], op: CmpOp, value: f64) {
    match op {
        CmpOp::Eq => mask_and_by(mask, vals, |x| x as f64 == value),
        CmpOp::Ne => mask_and_by(mask, vals, |x| x as f64 != value),
        CmpOp::Lt => mask_and_by(mask, vals, |x| (x as f64) < value),
        CmpOp::Le => mask_and_by(mask, vals, |x| x as f64 <= value),
        CmpOp::Gt => mask_and_by(mask, vals, |x| x as f64 > value),
        CmpOp::Ge => mask_and_by(mask, vals, |x| x as f64 >= value),
    }
}

/// Streaming sum/count/min/max/first/last accumulator with NaN-skipping
/// semantics (NaN still counts for First/Last, which record raw
/// values). Shared by `ops::group_by`, `ops::pivot`, and the grouped
/// kernels below.
#[derive(Debug, Clone)]
pub(crate) struct NumAcc {
    pub(crate) sum: f64,
    pub(crate) count: u64,
    pub(crate) min: f64,
    pub(crate) max: f64,
    pub(crate) first: f64,
    pub(crate) last: f64,
    pub(crate) seen: bool,
}

impl NumAcc {
    pub(crate) fn new() -> NumAcc {
        NumAcc {
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            first: f64::NAN,
            last: f64::NAN,
            seen: false,
        }
    }

    #[inline]
    pub(crate) fn push(&mut self, v: f64) {
        if !self.seen {
            self.first = v;
            self.seen = true;
        }
        self.last = v;
        if v.is_nan() {
            return;
        }
        self.sum += v;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub(crate) fn get(&self, agg: Agg) -> f64 {
        match agg {
            Agg::Sum => self.sum,
            Agg::Mean => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
            Agg::Min => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.min
                }
            }
            Agg::Max => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.max
                }
            }
            Agg::Count => self.count as f64,
            Agg::First => self.first,
            Agg::Last => self.last,
        }
    }
}

/// Accumulate f64 values into per-group accumulators: row i feeds
/// `accs[groups[i]]`.
pub(crate) fn accumulate_grouped_f64(accs: &mut [NumAcc], groups: &[usize], vals: &[f64]) {
    for (&g, &v) in groups.iter().zip(vals) {
        accs[g].push(v);
    }
}

/// Accumulate i64 values (coerced to f64) into per-group accumulators.
pub(crate) fn accumulate_grouped_i64(accs: &mut [NumAcc], groups: &[usize], vals: &[i64]) {
    for (&g, &v) in groups.iter().zip(vals) {
        accs[g].push(v as f64);
    }
}

/// Accumulate f64 values into a (group, slot) cell grid: row i feeds
/// `cells[groups[i]][slots[i]]` — the pivot inner loop.
pub(crate) fn accumulate_cells_f64(
    cells: &mut [Vec<NumAcc>],
    groups: &[usize],
    slots: &[usize],
    vals: &[f64],
) {
    for ((&g, &s), &v) in groups.iter().zip(slots).zip(vals) {
        cells[g][s].push(v);
    }
}

/// Accumulate i64 values (coerced to f64) into a (group, slot) grid.
pub(crate) fn accumulate_cells_i64(
    cells: &mut [Vec<NumAcc>],
    groups: &[usize],
    slots: &[usize],
    vals: &[i64],
) {
    for ((&g, &s), &v) in groups.iter().zip(slots).zip(vals) {
        cells[g][s].push(v as f64);
    }
}

/// Sum of non-NaN values.
pub fn sum_f64(vals: &[f64]) -> f64 {
    vals.iter().filter(|v| !v.is_nan()).sum()
}

/// `(min, max)` over non-NaN values; `None` when every value is NaN or
/// the slice is empty.
pub fn min_max_f64(vals: &[f64]) -> Option<(f64, f64)> {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut seen = false;
    for &v in vals {
        if !v.is_nan() {
            min = min.min(v);
            max = max.max(v);
            seen = true;
        }
    }
    seen.then_some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scattered_mask(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 3 != 1).collect()
    }

    #[test]
    fn filter_copy_matches_naive_across_block_shapes() {
        // Cover all-true blocks, all-false blocks, mixed blocks, and a
        // ragged tail shorter than CHUNK.
        for n in [0, 1, CHUNK - 1, CHUNK, CHUNK + 7, 3 * CHUNK + 5] {
            let vals: Vec<i64> = (0..n as i64).collect();
            for mask in [
                vec![true; n],
                vec![false; n],
                scattered_mask(n),
                (0..n).map(|i| i < n / 2).collect::<Vec<bool>>(),
            ] {
                let naive: Vec<i64> = vals
                    .iter()
                    .zip(&mask)
                    .filter(|(_, &m)| m)
                    .map(|(v, _)| *v)
                    .collect();
                assert_eq!(filter_copy(&vals, &mask), naive, "n={n}");
                assert_eq!(count_true(&mask), naive.len());
            }
        }
    }

    #[test]
    fn filter_clone_matches_naive() {
        let vals: Vec<String> = (0..150).map(|i| format!("s{i}")).collect();
        let mask = scattered_mask(150);
        let naive: Vec<String> = vals
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(v, _)| v.clone())
            .collect();
        assert_eq!(filter_clone(&vals, &mask), naive);
    }

    #[test]
    #[should_panic(expected = "mask length mismatch")]
    fn filter_rejects_ragged_mask() {
        filter_copy(&[1i64, 2], &[true]);
    }

    #[test]
    fn gather_repeats_and_reorders() {
        assert_eq!(gather_copy(&[10i64, 20, 30], &[2, 0, 0]), vec![30, 10, 10]);
        assert_eq!(
            gather_clone(&["a".to_string(), "b".to_string()], &[1, 1, 0]),
            vec!["b".to_string(), "b".to_string(), "a".to_string()]
        );
    }

    #[test]
    fn code_table_mask_matches_per_row_lookup() {
        let codes: Vec<u32> = (0..100).map(|i| (i % 4) as u32).collect();
        let table = [true, false, true, false];
        let mut mask = vec![true; 100];
        mask[7] = false; // pre-cleared lanes stay cleared
        mask_and_code_table(&mut mask, &codes, &table);
        for (i, (&m, &c)) in mask.iter().zip(&codes).enumerate() {
            assert_eq!(m, i != 7 && table[c as usize]);
        }
    }

    #[test]
    fn cmp_masks_follow_ieee_and_coercion_semantics() {
        let vals = [1.0, f64::NAN, 3.0];
        for (op, expect) in [
            (CmpOp::Lt, [true, false, false]),
            (CmpOp::Ne, [true, true, true]),
            (CmpOp::Eq, [false, false, false]),
            (CmpOp::Ge, [false, false, true]),
        ] {
            let mut mask = vec![true; 3];
            mask_and_cmp_f64(&mut mask, &vals, op, 2.0);
            assert_eq!(mask, expect, "{op:?}");
            for (i, &v) in vals.iter().enumerate() {
                assert_eq!(cmp_f64(op, v, 2.0), expect[i]);
            }
        }
        let ints = [1i64, 2, 3];
        let mut mask = vec![true; 3];
        mask_and_cmp_i64(&mut mask, &ints, CmpOp::Le, 2.0);
        assert_eq!(mask, vec![true, true, false]);
    }

    #[test]
    fn grouped_accumulation_matches_scalar_pushes() {
        let groups = [0usize, 1, 0, 1, 0];
        let vals = [1.0, 10.0, f64::NAN, 20.0, 3.0];
        let mut accs = vec![NumAcc::new(), NumAcc::new()];
        accumulate_grouped_f64(&mut accs, &groups, &vals);
        assert_eq!(accs[0].get(Agg::Sum), 4.0);
        assert_eq!(accs[0].get(Agg::Count), 2.0);
        assert_eq!(accs[0].get(Agg::First), 1.0);
        assert_eq!(accs[0].get(Agg::Last), 3.0);
        assert_eq!(accs[1].get(Agg::Mean), 15.0);
        let mut iaccs = vec![NumAcc::new()];
        accumulate_grouped_i64(&mut iaccs, &[0, 0], &[2, 4]);
        assert_eq!(iaccs[0].get(Agg::Max), 4.0);
    }

    #[test]
    fn cell_accumulation_matches_scalar_pushes() {
        let groups = [0usize, 0, 1];
        let slots = [0usize, 1, 0];
        let mut cells = vec![
            vec![NumAcc::new(), NumAcc::new()],
            vec![NumAcc::new(), NumAcc::new()],
        ];
        accumulate_cells_f64(&mut cells, &groups, &slots, &[1.0, 2.0, 3.0]);
        assert_eq!(cells[0][0].get(Agg::Sum), 1.0);
        assert_eq!(cells[0][1].get(Agg::Sum), 2.0);
        assert_eq!(cells[1][0].get(Agg::Sum), 3.0);
        assert!(cells[1][1].get(Agg::Mean).is_nan());
        let mut icells = vec![vec![NumAcc::new()]];
        accumulate_cells_i64(&mut icells, &[0], &[0], &[7]);
        assert_eq!(icells[0][0].get(Agg::Last), 7.0);
    }

    #[test]
    fn slice_reductions_skip_nan() {
        assert_eq!(sum_f64(&[1.0, f64::NAN, 2.0]), 3.0);
        assert_eq!(min_max_f64(&[3.0, f64::NAN, -1.0]), Some((-1.0, 3.0)));
        assert_eq!(min_max_f64(&[f64::NAN]), None);
        assert_eq!(min_max_f64(&[]), None);
    }
}
