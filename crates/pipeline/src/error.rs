//! Error type for pipeline operations.

use oda_storage::StorageError;
use oda_stream::StreamError;
use std::fmt;

/// Errors from frame operations, plans, and streaming queries.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A referenced column does not exist.
    ColumnNotFound(String),
    /// A column had an unexpected type for the operation.
    TypeMismatch {
        /// Column name.
        column: String,
        /// What the operation needed.
        expected: String,
    },
    /// Frame construction with ragged column lengths.
    RaggedColumns,
    /// Underlying broker error.
    Stream(StreamError),
    /// Underlying storage error.
    Storage(StorageError),
    /// Malformed payload on the stream.
    Decode(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::ColumnNotFound(c) => write!(f, "column {c:?} not found"),
            PipelineError::TypeMismatch { column, expected } => {
                write!(f, "column {column:?} is not {expected}")
            }
            PipelineError::RaggedColumns => write!(f, "columns have differing lengths"),
            PipelineError::Stream(e) => write!(f, "stream: {e}"),
            PipelineError::Storage(e) => write!(f, "storage: {e}"),
            PipelineError::Decode(m) => write!(f, "decode: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<StreamError> for PipelineError {
    fn from(e: StreamError) -> Self {
        PipelineError::Stream(e)
    }
}

impl From<StorageError> for PipelineError {
    fn from(e: StorageError) -> Self {
        PipelineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PipelineError = StreamError::UnknownTopic("t".into()).into();
        assert!(e.to_string().contains("stream"));
        let e: PipelineError = StorageError::NotFound("x".into()).into();
        assert!(e.to_string().contains("storage"));
        assert!(PipelineError::ColumnNotFound("c".into())
            .to_string()
            .contains("c"));
    }
}
