//! Tumbling time windows and watermarks.
//!
//! The paper's Silver stage aggregates long-format data "over designated
//! time intervals (e.g., every 15 seconds) to reconcile differences in
//! sample rates" (§V-A). [`assign_window`] adds a window-start column;
//! [`Watermark`] tracks event-time progress so streaming aggregations
//! know when a window can be finalized despite out-of-order arrivals.

use crate::error::PipelineError;
use crate::frame::Frame;
use oda_storage::colfile::ColumnData;

/// Start of the tumbling window containing `ts_ms`.
pub fn window_start(ts_ms: i64, width_ms: i64) -> i64 {
    ts_ms.div_euclid(width_ms) * width_ms
}

/// Add a `window` column: the tumbling-window start of `ts_col`.
pub fn assign_window(frame: &Frame, ts_col: &str, width_ms: i64) -> Result<Frame, PipelineError> {
    assign_window_as(frame, ts_col, width_ms, "window")
}

/// Add a named tumbling-window column (for re-windowing frames that
/// already carry a `window` column, e.g. hourly roll-ups of Silver).
pub fn assign_window_as(
    frame: &Frame,
    ts_col: &str,
    width_ms: i64,
    out_col: &str,
) -> Result<Frame, PipelineError> {
    assert!(width_ms > 0, "window width must be positive");
    let ts = frame.i64s(ts_col)?;
    let windows: Vec<i64> = ts.iter().map(|&t| window_start(t, width_ms)).collect();
    let mut out = frame.clone();
    out.push_column(out_col, ColumnData::I64(windows.into()))?;
    Ok(out)
}

/// Event-time watermark with bounded lateness.
#[derive(Debug, Clone, Copy)]
pub struct Watermark {
    max_event_ms: i64,
    allowed_lateness_ms: i64,
}

impl Watermark {
    /// A watermark tolerating `allowed_lateness_ms` of disorder.
    pub fn new(allowed_lateness_ms: i64) -> Watermark {
        Watermark {
            max_event_ms: i64::MIN,
            allowed_lateness_ms,
        }
    }

    /// Observe a batch's max event time.
    pub fn observe(&mut self, ts_ms: i64) {
        self.max_event_ms = self.max_event_ms.max(ts_ms);
    }

    /// Observe every timestamp of a frame column.
    pub fn observe_frame(&mut self, frame: &Frame, ts_col: &str) -> Result<(), PipelineError> {
        if let Some(&max) = frame.i64s(ts_col)?.iter().max() {
            self.observe(max);
        }
        Ok(())
    }

    /// Current watermark: events at or before this time are complete.
    pub fn current(&self) -> i64 {
        if self.max_event_ms == i64::MIN {
            i64::MIN
        } else {
            self.max_event_ms - self.allowed_lateness_ms
        }
    }

    /// True when the tumbling window starting at `window_start` (width
    /// `width_ms`) is closed: no in-order event can still land in it.
    pub fn window_closed(&self, window_start: i64, width_ms: i64) -> bool {
        self.current() >= window_start + width_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_start_floors() {
        assert_eq!(window_start(0, 15_000), 0);
        assert_eq!(window_start(14_999, 15_000), 0);
        assert_eq!(window_start(15_000, 15_000), 15_000);
        assert_eq!(window_start(-1, 15_000), -15_000);
    }

    #[test]
    fn assign_window_adds_column() {
        let f = Frame::new(vec![(
            "ts".into(),
            ColumnData::I64(vec![0, 7_000, 15_000, 31_000].into()),
        )])
        .unwrap();
        let w = assign_window(&f, "ts", 15_000).unwrap();
        assert_eq!(w.i64s("window").unwrap(), &[0, 0, 15_000, 30_000]);
    }

    #[test]
    fn watermark_tracks_max_minus_lateness() {
        let mut wm = Watermark::new(5_000);
        assert_eq!(wm.current(), i64::MIN);
        wm.observe(20_000);
        wm.observe(10_000); // regression ignored
        assert_eq!(wm.current(), 15_000);
    }

    #[test]
    fn window_closes_only_after_watermark_passes() {
        let mut wm = Watermark::new(5_000);
        wm.observe(19_999);
        assert!(!wm.window_closed(0, 15_000), "watermark 14_999 < 15_000");
        wm.observe(20_000);
        assert!(wm.window_closed(0, 15_000));
        assert!(!wm.window_closed(15_000, 15_000));
    }

    #[test]
    fn observe_frame_uses_max() {
        let f = Frame::new(vec![(
            "ts".into(),
            ColumnData::I64(vec![5, 100, 50].into()),
        )])
        .unwrap();
        let mut wm = Watermark::new(0);
        wm.observe_frame(&f, "ts").unwrap();
        assert_eq!(wm.current(), 100);
    }
}
