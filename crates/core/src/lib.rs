//! # oda-core — the end-to-end ODA framework facade
//!
//! Wires every subsystem into the "hourglass" architecture of §V: the
//! instrumented systems feed the STREAM broker; pipelines refine
//! Bronze → Silver → Gold; tiered services hold the artifacts; packaged
//! applications, ML, and the digital twin consume them; governance
//! gates distribution.
//!
//! * [`config`] — facility configuration.
//! * [`facility`] — assembly: systems + broker + tiers + governance.
//! * [`ingest`] — telemetry publication into STREAM topics.
//! * [`lifecycle`] — the Fig. 1 manual operational feedback control
//!   loop, closed end-to-end: collect → engineer → analyze → decide →
//!   adjust (the adjustment actually changes subsequent telemetry).
//! * [`campaign`] — the §VI data-exploration campaign driver: build the
//!   dictionary, stand up the Silver pipeline, promote maturity.
//! * [`error`] — [`OdaError`], the workspace-level error every facade
//!   entry point returns.

pub mod campaign;
pub mod config;
pub mod error;
pub mod facility;
pub mod ingest;
pub mod lifecycle;

pub use config::FacilityConfig;
pub use error::OdaError;
pub use facility::Facility;
pub use lifecycle::{Adjustment, LoopReport, OperationalLoop};

/// Commonly used types across the workspace.
pub mod prelude {
    pub use crate::campaign::{run_campaign, CampaignReport};
    pub use crate::config::FacilityConfig;
    pub use crate::error::OdaError;
    pub use crate::facility::Facility;
    pub use crate::lifecycle::{Adjustment, LoopReport, OperationalLoop};
    pub use oda_analytics::{Copacetic, LvaIndex, RatsReport, UaDashboard};
    pub use oda_govern::{DataRuc, MaturityMatrix, ReleaseRequest, Sanitizer};
    pub use oda_ml::{FeatureStore, ProfileClassifier, SelfOrganizingMap};
    pub use oda_pipeline::{Frame, PipelinePlan};
    pub use oda_storage::{DataClass, Glacier, Lake, Ocean};
    pub use oda_stream::{Broker, Consumer, RetentionPolicy};
    pub use oda_telemetry::{SystemModel, TelemetryGenerator};
    pub use oda_twin::{replay, CoolingPlant, PowerSim};
}
