//! Classification metrics.

/// Fraction of matching predictions.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len());
    if labels.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Confusion matrix: `m[true][pred]` counts.
pub fn confusion_matrix(predictions: &[usize], labels: &[usize], classes: usize) -> Vec<Vec<u64>> {
    let mut m = vec![vec![0u64; classes]; classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        m[l][p] += 1;
    }
    m
}

/// Macro-averaged F1 over classes (classes absent from both truth and
/// prediction are skipped).
#[allow(clippy::needless_range_loop)] // class-indexed confusion math
pub fn macro_f1(predictions: &[usize], labels: &[usize], classes: usize) -> f64 {
    let m = confusion_matrix(predictions, labels, classes);
    let mut f1_sum = 0.0;
    let mut counted = 0;
    for c in 0..classes {
        let tp = m[c][c] as f64;
        let fp: f64 = (0..classes)
            .filter(|&t| t != c)
            .map(|t| m[t][c] as f64)
            .sum();
        let fn_: f64 = (0..classes)
            .filter(|&p| p != c)
            .map(|p| m[c][p] as f64)
            .sum();
        if tp + fp + fn_ == 0.0 {
            continue;
        }
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        f1_sum += f1;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        f1_sum / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts_by_truth_row() {
        let m = confusion_matrix(&[0, 0, 1], &[0, 1, 1], 2);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[1][0], 1);
        assert_eq!(m[1][1], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    fn perfect_predictions_score_one() {
        let labels = [0, 1, 2, 0, 1, 2];
        assert_eq!(accuracy(&labels, &labels), 1.0);
        assert!((macro_f1(&labels, &labels, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_penalizes_collapsed_predictions() {
        // Everything predicted as class 0.
        let preds = [0, 0, 0, 0];
        let labels = [0, 0, 1, 1];
        let f1 = macro_f1(&preds, &labels, 2);
        assert!(f1 < 0.5, "collapsed predictor f1 {f1}");
    }
}
