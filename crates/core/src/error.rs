//! Workspace-level error type.
//!
//! Cross-crate drivers (examples, integration tests, the facade
//! modules here) juggle errors from the STREAM tier, the pipeline
//! engine, and the storage tiers. [`OdaError`] unifies them behind one
//! type with `From` impls in every direction that matters, so callers
//! write `?` instead of string-matching variants, and
//! [`oda_faults::Retryable`] carries through so supervisor loops can
//! still classify what escaped.

use oda_faults::{FaultClass, Retryable};
use oda_pipeline::PipelineError;
use oda_storage::StorageError;
use oda_stream::StreamError;
use std::fmt;

/// Any error the ODA stack can surface to a driver.
#[derive(Debug, Clone, PartialEq)]
pub enum OdaError {
    /// STREAM tier (broker, producer, consumer).
    Stream(StreamError),
    /// Pipeline engine (frames, plans, streaming queries).
    Pipeline(PipelineError),
    /// Storage tiers (LAKE / OCEAN / GLACIER).
    Storage(StorageError),
}

impl fmt::Display for OdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdaError::Stream(e) => write!(f, "stream: {e}"),
            OdaError::Pipeline(e) => write!(f, "pipeline: {e}"),
            OdaError::Storage(e) => write!(f, "storage: {e}"),
        }
    }
}

impl std::error::Error for OdaError {}

impl Retryable for OdaError {
    fn fault_class(&self) -> FaultClass {
        match self {
            OdaError::Stream(e) => e.fault_class(),
            OdaError::Pipeline(e) => e.fault_class(),
            // Storage errors carry no retry classification of their
            // own: corrupt/missing artifacts don't heal on retry.
            OdaError::Storage(_) => FaultClass::Fatal,
        }
    }
}

impl From<StreamError> for OdaError {
    fn from(e: StreamError) -> Self {
        OdaError::Stream(e)
    }
}

impl From<PipelineError> for OdaError {
    fn from(e: PipelineError) -> Self {
        OdaError::Pipeline(e)
    }
}

impl From<StorageError> for OdaError {
    fn from(e: StorageError) -> Self {
        OdaError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_display_and_classification() {
        let e: OdaError = StreamError::UnknownTopic("t".into()).into();
        assert!(e.to_string().contains("stream"));
        assert_eq!(e.fault_class(), FaultClass::Fatal);

        let e: OdaError = PipelineError::InvalidQuery("no source".into()).into();
        assert!(e.to_string().contains("invalid streaming query"));
        assert_eq!(e.fault_class(), FaultClass::Fatal);

        let e: OdaError = StorageError::NotFound("x".into()).into();
        assert!(e.to_string().contains("storage"));
        assert_eq!(e.fault_class(), FaultClass::Fatal);

        // Retryability carries through from the inner classification.
        let e: OdaError = StreamError::FetchFailed {
            topic: "t".into(),
            partition: 0,
        }
        .into();
        assert_eq!(e.fault_class(), FaultClass::Retryable);
    }
}
