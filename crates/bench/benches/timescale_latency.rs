//! Experiment F4c (paper Fig. 4-c): multi-timescale pipeline latency.
//!
//! The paper: pipeline implementation is "driven by the multi-timescale
//! data usage" — real-time control loops need second-scale freshness,
//! daily reports tolerate batch. Reproduced as the end-to-end cost of
//! delivering one *refined result* at three control-loop timescales:
//!
//! * real-time (15 s windows, incremental streaming),
//! * hourly roll-up (re-aggregate the last hour from Silver),
//! * daily batch (full Bronze re-scan, the reporting path).
//!
//! Expected shape: per-result latency real-time << hourly << daily.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use oda_bench::tiny_observations;
use oda_pipeline::checkpoint::CheckpointStore;
use oda_pipeline::medallion::{bronze_frame, observation_decoder, streaming_silver_transform};
use oda_pipeline::ops::{group_by, Agg, AggSpec};
use oda_pipeline::streaming::{MemorySink, StreamingQuery};
use oda_pipeline::window::assign_window;
use oda_stream::{Broker, Consumer, RetentionPolicy};
use oda_telemetry::record::Observation;
use std::hint::black_box;
use std::sync::Arc;

/// One simulated hour of tiny telemetry, pre-generated.
fn hour_of_data() -> (oda_telemetry::SensorCatalog, Vec<Observation>) {
    tiny_observations(21, 3_600)
}

fn loaded_broker(obs: &[Observation]) -> Arc<Broker> {
    let broker = Broker::new();
    broker
        .create_topic("bronze", 4, RetentionPolicy::unbounded())
        .unwrap();
    for chunk in obs.chunks(200) {
        let ts = chunk.last().map(|o| o.ts_ms).unwrap_or(0);
        broker
            .produce(
                "bronze",
                ts,
                Some(Bytes::from_static(b"k")),
                Bytes::from(Observation::encode_batch(chunk)),
            )
            .unwrap();
    }
    broker
}

fn bench_timescales(c: &mut Criterion) {
    let (catalog, obs) = hour_of_data();
    let bronze = bronze_frame(&obs, &catalog);

    // Real-time tier: incremental cost of one 15 s micro-batch, with
    // state already warm (the steady-state streaming cost).
    let mut group = c.benchmark_group("f4c_per_result_latency");
    group.sample_size(10);
    group.bench_function("realtime_15s_increment", |b| {
        // Set up a warm streaming query over the first half; measure
        // per-batch cost across the rest, re-arming per iteration batch.
        b.iter_batched_ref(
            || {
                let broker = loaded_broker(&obs);
                let consumer = Consumer::subscribe(broker, "rt", "bronze").unwrap();
                let mut q = StreamingQuery::builder()
                    .source(consumer)
                    .decoder(observation_decoder(catalog.clone()))
                    .transform(streaming_silver_transform(15_000, 0))
                    .checkpoints(CheckpointStore::new())
                    .max_records(8) // ~one tick of records per batch
                    .build()
                    .unwrap();
                let mut sink = MemorySink::new();
                // Warm up half the stream.
                for _ in 0..100 {
                    q.run_once(&mut sink).unwrap();
                }
                (q, sink)
            },
            |(q, sink)| black_box(q.run_once(sink).unwrap()),
            criterion::BatchSize::LargeInput,
        );
    });

    // Hourly tier: re-aggregate an hour of *Silver* rows (already
    // refined once) into the hourly roll-up.
    let windowed = assign_window(&bronze, "ts_ms", 15_000).unwrap();
    let silver = group_by(
        &windowed,
        &["window", "node", "sensor"],
        &[AggSpec::new("value", Agg::Mean, "mean")],
    )
    .unwrap();
    let hourly_silver =
        oda_pipeline::window::assign_window_as(&silver, "window", 3_600_000, "hour").unwrap();
    group.bench_function("hourly_rollup_from_silver", |b| {
        b.iter(|| {
            black_box(
                group_by(
                    &hourly_silver,
                    &["hour", "node", "sensor"],
                    &[AggSpec::new("mean", Agg::Mean, "mean")],
                )
                .unwrap(),
            )
        })
    });

    // Daily/batch tier: the full Bronze re-scan path for the same result.
    group.bench_function("daily_batch_from_bronze", |b| {
        b.iter(|| {
            let windowed = assign_window(&bronze, "ts_ms", 3_600_000).unwrap();
            black_box(
                group_by(
                    &windowed,
                    &["window", "node", "sensor"],
                    &[AggSpec::new("value", Agg::Mean, "mean")],
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_timescales);
criterion_main!(benches);
