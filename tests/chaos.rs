//! Chaos suite: exactly-once semantics under seeded fault plans.
//!
//! Replays the same synthetic telemetry stream through the
//! STREAM → medallion pipeline under several deterministic
//! [`FaultPlan::chaos`] schedules (transient produce/fetch faults,
//! crashes in the sink→checkpoint window, lost checkpoint commits) and
//! asserts that the recovered output is *byte-identical* to a
//! fault-free run: no duplicated epoch, no lost epoch, identical row
//! counts, identical Gold reduction, monotone checkpoint recovery.

use bytes::Bytes;
use oda::faults::{FaultClass, FaultPlan, FaultPoint, FaultSite, FaultSpec, Retry, Retryable};
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::frame_io::frame_to_colfile;
use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform};
use oda::pipeline::ops::{group_by, Agg, AggSpec};
use oda::pipeline::streaming::{MemorySink, Sink};
use oda::pipeline::{Frame, StreamingQuery};
use oda::storage::tiering::{DataClass, LifecycleAction, Tier, TierManager};
use oda::stream::{Broker, Cluster, Consumer, MessageBus, RetentionPolicy};
use oda::telemetry::record::Observation;
use oda::telemetry::system::SystemModel;
use oda::telemetry::{SensorCatalog, TelemetryGenerator};
use std::sync::Arc;

const TOPIC: &str = "bronze";
const BATCHES: usize = 80;
const MAX_RECORDS: usize = 5;
const MAX_RESTARTS: usize = 60;

/// Produce the same synthetic telemetry stream (fault-free: data
/// creation must be identical across runs) into a fresh broker.
fn seeded_broker() -> (Arc<Broker>, SensorCatalog) {
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 7);
    let broker = Broker::new();
    broker
        .create_topic(TOPIC, 2, RetentionPolicy::unbounded())
        .unwrap();
    for _ in 0..BATCHES {
        let batch = generator.next_batch();
        let payload = Observation::encode_batch(&batch.observations);
        broker
            .produce(
                TOPIC,
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(payload),
            )
            .unwrap();
    }
    (broker, generator.catalog().clone())
}

struct RunReport {
    sink: MemorySink,
    checkpoints: CheckpointStore,
    restarts: usize,
}

/// Drive the query to completion under an optional fault plan,
/// rebuilding it from the checkpoint store after every fatal fault —
/// the crash/recovery loop a supervisor would run. `workers` sizes the
/// partition-stage pool; output must not depend on it. With `metrics`
/// and/or `tracer`, the whole path is instrumented (broker, fault
/// plan, query) — which must not change a single output byte.
fn run_instrumented(
    plan: Option<Arc<FaultPlan>>,
    workers: usize,
    metrics: Option<&oda::obs::Registry>,
    tracer: Option<&oda::obs::Tracer>,
) -> RunReport {
    let (broker, catalog) = seeded_broker();
    let checkpoints = CheckpointStore::new();
    if let Some(p) = &plan {
        broker.arm_faults(p.clone() as Arc<dyn FaultPoint>);
        checkpoints.arm_faults(p.clone() as Arc<dyn FaultPoint>);
    }
    if let Some(reg) = metrics {
        broker.attach_metrics(reg);
        if let Some(p) = &plan {
            p.attach_metrics(reg);
        }
    }
    if let Some(tr) = tracer {
        broker.attach_tracer(tr);
        if let Some(p) = &plan {
            p.attach_tracer(tr);
        }
    }
    drive_query(
        broker,
        &catalog,
        checkpoints,
        plan,
        workers,
        metrics,
        tracer,
    )
}

/// The supervisor loop proper, generic over the message bus so the same
/// crash/recovery harness drives a single [`Broker`] or a replicated
/// [`Cluster`].
fn drive_query<B: MessageBus + 'static>(
    bus: Arc<B>,
    catalog: &SensorCatalog,
    checkpoints: CheckpointStore,
    plan: Option<Arc<FaultPlan>>,
    workers: usize,
    metrics: Option<&oda::obs::Registry>,
    tracer: Option<&oda::obs::Tracer>,
) -> RunReport {
    let mut sink = MemorySink::new();
    let restarts = drive_query_into(
        bus,
        catalog,
        &checkpoints,
        plan,
        workers,
        metrics,
        tracer,
        &mut sink,
    );
    RunReport {
        sink,
        checkpoints,
        restarts,
    }
}

/// Sink-generic core of the supervisor loop, so the same crash/recovery
/// harness can drive a plain [`MemorySink`] or an
/// [`oda::analytics::AlertingSink`] wrapping one.
#[allow(clippy::too_many_arguments)]
fn drive_query_into<B: MessageBus + 'static, S: Sink>(
    bus: Arc<B>,
    catalog: &SensorCatalog,
    checkpoints: &CheckpointStore,
    plan: Option<Arc<FaultPlan>>,
    workers: usize,
    metrics: Option<&oda::obs::Registry>,
    tracer: Option<&oda::obs::Tracer>,
    sink: &mut S,
) -> usize {
    let mut restarts = 0;
    let mut last_recovered_epoch = 0u64;
    loop {
        let consumer = Consumer::subscribe(bus.clone(), "chaos", TOPIC)
            .unwrap()
            .with_retry(Retry::with_attempts(25));
        let mut builder = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(catalog.clone()))
            .transform(streaming_silver_transform(15_000, 0))
            .checkpoints(checkpoints.clone())
            .max_records(MAX_RECORDS)
            .workers(workers);
        if let Some(reg) = metrics {
            builder = builder.metrics(reg);
        }
        if let Some(tr) = tracer {
            builder = builder.tracer(tr).trace_name("chaos");
        }
        if let Some(p) = &plan {
            builder = builder.faults(p.clone() as Arc<dyn FaultPoint>);
        }
        let mut query = builder.build().unwrap();
        assert!(
            query.epoch() >= last_recovered_epoch,
            "recovery must never move the epoch backwards: {} < {}",
            query.epoch(),
            last_recovered_epoch
        );
        last_recovered_epoch = query.epoch();
        let outcome = loop {
            match query.run_once(sink) {
                Ok(0) => break Ok(()),
                Ok(_) => {}
                Err(e) => break Err(e),
            }
        };
        match outcome {
            Ok(()) => break,
            Err(e) => {
                assert_eq!(
                    e.fault_class(),
                    FaultClass::Fatal,
                    "only fatal faults may escape the retry envelope: {e}"
                );
                restarts += 1;
                assert!(
                    restarts <= MAX_RESTARTS,
                    "crash/recovery loop failed to converge"
                );
            }
        }
    }
    restarts
}

/// Produce the same synthetic telemetry stream into a replicated
/// cluster of three nodes. The seed-phase `plan` may crash nodes and
/// lag replicas *while the data is being written* — `acks=all`
/// replication must keep the acked stream byte-identical regardless.
fn seeded_cluster(
    replication: u32,
    plan: Option<Arc<FaultPlan>>,
    tracer: Option<&oda::obs::Tracer>,
) -> (Arc<Cluster>, SensorCatalog) {
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 7);
    let cluster = Cluster::new(3, replication);
    cluster
        .create_topic(TOPIC, 2, RetentionPolicy::unbounded())
        .unwrap();
    if let Some(p) = &plan {
        cluster.arm_faults(p.clone() as Arc<dyn FaultPoint>);
    }
    if let Some(tr) = tracer {
        cluster.attach_tracer(tr);
    }
    for _ in 0..BATCHES {
        let batch = generator.next_batch();
        let payload = Observation::encode_batch(&batch.observations);
        cluster
            .produce(
                TOPIC,
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(payload),
            )
            .unwrap();
    }
    (cluster, generator.catalog().clone())
}

fn run_pipeline_with_workers(plan: Option<Arc<FaultPlan>>, workers: usize) -> RunReport {
    run_instrumented(plan, workers, None, None)
}

fn run_pipeline(plan: Option<Arc<FaultPlan>>) -> RunReport {
    run_pipeline_with_workers(plan, 1)
}

/// Deterministic Gold reduction over the Silver stream: per-(node,
/// sensor) day aggregate.
fn gold_reduction(sink: &MemorySink) -> Frame {
    let silver = sink.concat().unwrap();
    group_by(
        &silver,
        &["node", "sensor"],
        &[
            AggSpec::new("mean", Agg::Mean, "day_mean"),
            AggSpec::new("count", Agg::Sum, "samples"),
        ],
    )
    .unwrap()
}

#[test]
fn chaos_runs_are_byte_identical_to_fault_free_run() {
    let baseline = run_pipeline(None);
    assert_eq!(baseline.restarts, 0);
    let baseline_epochs = baseline.sink.epochs();
    assert!(
        baseline_epochs >= 13,
        "need enough epochs to hit both crash points"
    );
    let baseline_gold = gold_reduction(&baseline.sink);

    // CI runs a fixed-seed matrix by exporting CHAOS_SEED; locally the
    // default trio runs in one pass.
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![11, 29, 4242],
    };
    let single_seed = seeds.len() == 1;
    let mut crashes_seen = 0;
    for seed in seeds {
        let plan = Arc::new(FaultPlan::chaos(seed));
        let report = run_pipeline(Some(plan.clone()));
        crashes_seen += report.restarts;

        // Exactly-once: same epochs, same rows, no duplicate or hole.
        assert_eq!(report.sink.epochs(), baseline_epochs, "seed {seed}");
        assert_eq!(
            report.sink.total_rows(),
            baseline.sink.total_rows(),
            "seed {seed}"
        );
        // Byte-identical per-epoch frames.
        for (ours, theirs) in report.sink.frames().iter().zip(baseline.sink.frames()) {
            assert_eq!(
                frame_to_colfile(ours).unwrap(),
                frame_to_colfile(theirs).unwrap(),
                "seed {seed}: epoch frame diverged"
            );
        }
        // Identical Gold reduction.
        assert_eq!(
            frame_to_colfile(&gold_reduction(&report.sink)).unwrap(),
            frame_to_colfile(&baseline_gold).unwrap(),
            "seed {seed}: gold diverged"
        );
        // Checkpoint log is dense and its head matches the sink.
        assert_eq!(report.checkpoints.len(), baseline_epochs);
        assert_eq!(
            report.checkpoints.latest().unwrap().epoch as usize,
            baseline_epochs - 1
        );
        // The schedule really fired: both derived crash epochs are within
        // the run, so at least two sink-site faults must appear in the log.
        let by_site = plan.injected_by_site();
        assert_eq!(
            by_site.get(&FaultSite::SinkWrite).copied().unwrap_or(0),
            2,
            "seed {seed}: both crash epochs must fire exactly once"
        );
    }
    let expected_crashes = if single_seed { 2 } else { 6 };
    assert!(
        crashes_seen >= expected_crashes,
        "chaos seeds must force at least their scheduled crashes ({crashes_seen} < {expected_crashes})"
    );
}

#[test]
fn metrics_do_not_perturb_chaos_byte_identity() {
    // The observability layer is a read-only tap: running the full
    // chaos crash/recovery loop with every subsystem instrumented must
    // leave Gold byte-identical to the uninstrumented fault-free run.
    let baseline = run_pipeline(None);
    let baseline_gold = frame_to_colfile(&gold_reduction(&baseline.sink)).unwrap();
    for seed in [11u64, 29, 4242] {
        let plan = Arc::new(FaultPlan::chaos(seed));
        let reg = oda::obs::Registry::new();
        let report = run_instrumented(Some(plan.clone()), 2, Some(&reg), None);
        assert_eq!(report.sink.epochs(), baseline.sink.epochs(), "seed {seed}");
        for (ours, theirs) in report.sink.frames().iter().zip(baseline.sink.frames()) {
            assert_eq!(
                frame_to_colfile(ours).unwrap(),
                frame_to_colfile(theirs).unwrap(),
                "seed {seed}: epoch frame diverged with metrics enabled"
            );
        }
        assert_eq!(
            frame_to_colfile(&gold_reduction(&report.sink)).unwrap(),
            baseline_gold,
            "seed {seed}: gold diverged with metrics enabled"
        );
        if oda::obs::enabled() {
            // The registry's fault-trip counters must agree with the
            // plan's own injection log, site for site.
            let by_site = plan.injected_by_site();
            assert!(!by_site.is_empty(), "seed {seed}: chaos plan never fired");
            for site in FaultSite::ALL {
                assert_eq!(
                    reg.counter_value("faults_injected_total", &[("site", site.label())]),
                    by_site.get(&site).copied().unwrap_or(0),
                    "seed {seed}: {} counter diverged from the injection log",
                    site.label()
                );
            }
            // The engine committed every broker record exactly once
            // despite crashes and retries.
            let consumed: usize = baseline.sink.metas().iter().map(|m| m.records).sum();
            assert_eq!(
                reg.counter_value("pipeline_records_total", &[]),
                consumed as u64,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn traces_do_not_perturb_chaos_byte_identity() {
    // Tracing is the same kind of read-only tap as metrics: the full
    // chaos crash/recovery loop with the tracer attached everywhere
    // (broker, fault plan, query) must leave every epoch frame and the
    // Gold reduction byte-identical to the untraced fault-free run —
    // and the journal's fault events must agree with the plan's own
    // injection log, site for site.
    let baseline = run_pipeline(None);
    let baseline_gold = frame_to_colfile(&gold_reduction(&baseline.sink)).unwrap();
    for seed in [11u64, 29, 4242] {
        let plan = Arc::new(FaultPlan::chaos(seed));
        let tracer = oda::obs::Tracer::new();
        let report = run_instrumented(Some(plan.clone()), 2, None, Some(&tracer));
        assert_eq!(report.sink.epochs(), baseline.sink.epochs(), "seed {seed}");
        for (ours, theirs) in report.sink.frames().iter().zip(baseline.sink.frames()) {
            assert_eq!(
                frame_to_colfile(ours).unwrap(),
                frame_to_colfile(theirs).unwrap(),
                "seed {seed}: epoch frame diverged with tracing enabled"
            );
        }
        assert_eq!(
            frame_to_colfile(&gold_reduction(&report.sink)).unwrap(),
            baseline_gold,
            "seed {seed}: gold diverged with tracing enabled"
        );
        if oda::obs::enabled() {
            assert_eq!(
                tracer.journal().evicted(),
                0,
                "seed {seed}: journal must hold a whole chaos run"
            );
            // Journal fault events vs the plan's injection log.
            let mut by_label: std::collections::BTreeMap<String, u64> =
                std::collections::BTreeMap::new();
            for e in tracer.events() {
                if let oda::obs::TraceEventKind::FaultInjected { site, .. } = &e.kind {
                    *by_label.entry(site.clone()).or_insert(0) += 1;
                }
            }
            let by_site = plan.injected_by_site();
            assert!(!by_site.is_empty(), "seed {seed}: chaos plan never fired");
            for site in FaultSite::ALL {
                assert_eq!(
                    by_label.get(site.label()).copied().unwrap_or(0),
                    by_site.get(&site).copied().unwrap_or(0),
                    "seed {seed}: {} journal count diverged from the injection log",
                    site.label()
                );
            }
            // Every committed epoch left exactly one checkpoint span.
            let checkpoint_spans = tracer
                .events()
                .iter()
                .filter(|e| matches!(e.kind, oda::obs::TraceEventKind::Checkpoint { .. }))
                .count();
            assert_eq!(checkpoint_spans, baseline.sink.epochs(), "seed {seed}");
        } else {
            assert!(
                tracer.events().is_empty(),
                "compiled-out tracing must record nothing"
            );
        }
    }
}

#[test]
fn node_crash_failover_gold_byte_identity() {
    // The full replication matrix: every chaos seed × replication
    // factor {1,2,3} × worker pool {1,8}, each run seeded under
    // crash/lag faults and then driven through the crash/recovery loop
    // under [`FaultPlan::cluster_chaos`] (which adds `NodeCrash` and
    // `ReplicaLag` to the classic chaos sites). Gold must stay
    // byte-identical to the single-node fault-free baseline: failover
    // may change *which node serves*, never *which bytes flow*.
    let baseline = run_pipeline(None);
    let baseline_gold = frame_to_colfile(&gold_reduction(&baseline.sink)).unwrap();
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![11, 29, 4242],
    };
    let mut new_site_injections = 0u64;
    for &seed in &seeds {
        for replication in [1u32, 2, 3] {
            for workers in [1usize, 8] {
                let label = format!("seed {seed} rf {replication} workers {workers}");
                let tracer = oda::obs::Tracer::new();
                // Seed phase: only the replication sites are live, so
                // the acked record stream itself is never perturbed.
                let seed_plan = Arc::new(FaultPlan::new(
                    seed,
                    FaultSpec {
                        node_crash: 0.02,
                        replica_lag: 0.10,
                        ..FaultSpec::default()
                    },
                ));
                seed_plan.attach_tracer(&tracer);
                let (cluster, catalog) =
                    seeded_cluster(replication, Some(seed_plan.clone()), Some(&tracer));
                // Run phase: the full chaos schedule plus replication
                // faults drives the supervisor loop.
                let run_plan = Arc::new(FaultPlan::cluster_chaos(seed));
                run_plan.attach_tracer(&tracer);
                cluster.arm_faults(run_plan.clone() as Arc<dyn FaultPoint>);
                let checkpoints = CheckpointStore::new();
                checkpoints.arm_faults(run_plan.clone() as Arc<dyn FaultPoint>);
                let report = drive_query(
                    cluster.clone(),
                    &catalog,
                    checkpoints,
                    Some(run_plan.clone()),
                    workers,
                    None,
                    Some(&tracer),
                );
                // Byte identity against the single-node baseline.
                assert_eq!(report.sink.epochs(), baseline.sink.epochs(), "{label}");
                for (ours, theirs) in report.sink.frames().iter().zip(baseline.sink.frames()) {
                    assert_eq!(
                        frame_to_colfile(ours).unwrap(),
                        frame_to_colfile(theirs).unwrap(),
                        "{label}: epoch frame diverged from single-node baseline"
                    );
                }
                assert_eq!(
                    frame_to_colfile(&gold_reduction(&report.sink)).unwrap(),
                    baseline_gold,
                    "{label}: gold diverged from single-node baseline"
                );
                // Every election the cluster performed is on the record,
                // and the surviving leaders still serve the full log.
                for e in cluster.elections() {
                    assert_ne!(e.from_node, e.to_node, "{label}");
                }
                let mut acked_total = 0;
                for p in 0..2 {
                    let hw = cluster.high_watermark(TOPIC, p).unwrap();
                    acked_total += hw;
                    let leader = cluster.leader(TOPIC, p).unwrap();
                    assert_eq!(cluster.log_end(leader, TOPIC, p).unwrap(), hw, "{label}");
                }
                // Every batch keys on "all", so one partition carries
                // the whole stream — but none of it may be lost.
                assert_eq!(acked_total, BATCHES as u64, "{label}: acked records lost");
                // The journal's FaultInjected events for the replication
                // sites must agree with the two plans' own injection
                // logs, count for count.
                let plan_counts: u64 = [&seed_plan, &run_plan]
                    .iter()
                    .flat_map(|p| p.injected_by_site())
                    .filter(|(site, _)| {
                        matches!(site, FaultSite::NodeCrash | FaultSite::ReplicaLag)
                    })
                    .map(|(_, n)| n)
                    .sum();
                new_site_injections += plan_counts;
                if oda::obs::enabled() {
                    let journal_counts = tracer
                        .events()
                        .iter()
                        .filter(|e| {
                            matches!(
                                &e.kind,
                                oda::obs::TraceEventKind::FaultInjected { site, .. }
                                    if site == FaultSite::NodeCrash.label()
                                        || site == FaultSite::ReplicaLag.label()
                            )
                        })
                        .count() as u64;
                    assert_eq!(
                        journal_counts, plan_counts,
                        "{label}: journal disagrees with the injection logs"
                    );
                }
            }
        }
    }
    assert!(
        new_site_injections > 0,
        "the matrix never exercised NodeCrash/ReplicaLag — rates too low"
    );
}

/// Detector knobs tuned down so the short chaos stream (a few Silver
/// windows per series) arms and fires: the byte-identity claim is only
/// interesting when alerts actually exist.
fn chaos_alert_engine() -> oda::analytics::OnlineAnalytics {
    let config = oda::analytics::OnlineConfig {
        min_windows: 2,
        z_window: 4,
        z_threshold: 1.5,
        ewma_threshold: 2.0,
        ..oda::analytics::OnlineConfig::default()
    };
    oda::analytics::OnlineAnalytics::new(config)
}

/// Run the supervisor loop with the online detectors riding on the sink.
fn run_alerting(plan: Option<Arc<FaultPlan>>, workers: usize) -> (RunReport, Vec<u8>) {
    let (broker, catalog) = seeded_broker();
    let checkpoints = CheckpointStore::new();
    if let Some(p) = &plan {
        broker.arm_faults(p.clone() as Arc<dyn FaultPoint>);
        checkpoints.arm_faults(p.clone() as Arc<dyn FaultPoint>);
    }
    let mut sink = oda::analytics::AlertingSink::new(MemorySink::new(), chaos_alert_engine());
    let restarts = drive_query_into(
        broker,
        &catalog,
        &checkpoints,
        plan,
        workers,
        None,
        None,
        &mut sink,
    );
    let (inner, engine) = sink.into_parts();
    (
        RunReport {
            sink: inner,
            checkpoints,
            restarts,
        },
        engine.alerts_bytes(),
    )
}

#[test]
fn alerts_do_not_perturb_chaos_byte_identity() {
    // The online detectors are a tap on the sink path: wrapping the
    // sink in an AlertingSink must leave every Silver epoch frame and
    // the Gold reduction byte-identical to the plain run — and the
    // alert stream itself must be byte-identical across every chaos
    // seed and worker count, because the epoch-dedupe in AlertingSink
    // skips replayed (byte-identical) epochs instead of re-analyzing
    // them.
    let plain = run_pipeline(None);
    let plain_gold = frame_to_colfile(&gold_reduction(&plain.sink)).unwrap();
    let (baseline, baseline_alerts) = run_alerting(None, 1);
    assert_eq!(baseline.restarts, 0);
    assert!(
        !baseline_alerts.is_empty(),
        "detector knobs too tight: the chaos stream raised no alerts"
    );
    // The tap changed nothing downstream.
    assert_eq!(baseline.sink.epochs(), plain.sink.epochs());
    for (ours, theirs) in baseline.sink.frames().iter().zip(plain.sink.frames()) {
        assert_eq!(
            frame_to_colfile(ours).unwrap(),
            frame_to_colfile(theirs).unwrap(),
            "alerting sink perturbed a Silver epoch frame"
        );
    }
    assert_eq!(
        frame_to_colfile(&gold_reduction(&baseline.sink)).unwrap(),
        plain_gold,
        "alerting sink perturbed gold"
    );

    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![11, 29, 4242],
    };
    for &seed in &seeds {
        for workers in [1usize, 8] {
            let plan = Arc::new(FaultPlan::chaos(seed));
            let (report, alerts) = run_alerting(Some(plan), workers);
            assert_eq!(
                report.sink.epochs(),
                baseline.sink.epochs(),
                "seed {seed} workers {workers}"
            );
            assert_eq!(
                frame_to_colfile(&gold_reduction(&report.sink)).unwrap(),
                plain_gold,
                "seed {seed} workers {workers}: gold diverged"
            );
            assert_eq!(
                alerts, baseline_alerts,
                "seed {seed} workers {workers}: alert stream diverged under chaos"
            );
        }
    }
}

#[test]
fn chaos_schedule_is_reproducible_across_runs() {
    // The same seed must produce the same fault log, fault for fault.
    let logs: Vec<_> = (0..2)
        .map(|_| {
            let plan = Arc::new(FaultPlan::chaos(99));
            run_pipeline(Some(plan.clone()));
            plan.injected()
        })
        .collect();
    assert_eq!(
        logs[0], logs[1],
        "fault schedule must be seed-deterministic"
    );
    assert!(!logs[0].is_empty());
}

#[test]
fn tier_migrations_retry_until_clean_under_chaos() {
    // TierManager under the chaos plan: failed OCEAN→GLACIER migrations
    // leave artifacts in place and eventually all freeze, with byte
    // accounting identical to a fault-free pass.
    const DAY: i64 = 86_400_000;
    let build = |faults: Option<Arc<FaultPlan>>| {
        let mut m = TierManager::new();
        for i in 0..10 {
            m.register(
                &format!("ds-{i}"),
                DataClass::Bronze,
                Tier::Ocean,
                1_000 + i,
                0,
            );
        }
        if let Some(f) = faults {
            m.arm_faults(f as Arc<dyn FaultPoint>);
        }
        m
    };
    let mut clean = build(None);
    clean.advance(31 * DAY);
    let clean_bytes = clean.bytes_by_tier()[&Tier::Glacier];

    let mut chaotic = build(Some(Arc::new(FaultPlan::chaos(17))));
    let mut passes = 0;
    loop {
        let actions = chaotic.advance(31 * DAY + passes);
        passes += 1;
        assert!(passes < 100, "migrations failed to converge");
        let failed = actions
            .iter()
            .any(|a| matches!(a, LifecycleAction::MigrateFailed { .. }));
        if !failed && chaotic.bytes_by_tier()[&Tier::Ocean] == 0 {
            break;
        }
    }
    assert_eq!(chaotic.bytes_by_tier()[&Tier::Glacier], clean_bytes);
    assert!(
        passes > 1,
        "chaos plan (25% fail rate) should force retries"
    );
}
