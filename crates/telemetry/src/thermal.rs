//! First-order thermal response of nodes and cooling loops.
//!
//! A node's outlet coolant temperature follows its power with a
//! first-order lag; GPU junction temperatures ride on top of the loop
//! supply temperature. This is intentionally the *same physics family*
//! (lumped capacitance) as the digital twin's plant model, at node
//! granularity.

/// Node-level thermal state with first-order lag.
#[derive(Debug, Clone, Copy)]
pub struct NodeThermal {
    /// Current outlet temperature in Celsius.
    outlet_c: f64,
}

/// Thermal constants shared by all nodes of a system.
#[derive(Debug, Clone, Copy)]
pub struct ThermalModel {
    /// Coolant supply (inlet) temperature in Celsius.
    pub supply_c: f64,
    /// Outlet temperature rise per kilowatt of node power.
    pub rise_c_per_kw: f64,
    /// Lag time constant in seconds.
    pub tau_s: f64,
    /// GPU junction temperature rise above outlet per unit utilization.
    pub gpu_rise_c: f64,
}

impl Default for ThermalModel {
    fn default() -> Self {
        // Warm-water cooling: 21 C supply, ~8 C rise per kW through a
        // cold plate, ~90 s node thermal time constant.
        ThermalModel {
            supply_c: 21.0,
            rise_c_per_kw: 8.0,
            tau_s: 90.0,
            gpu_rise_c: 35.0,
        }
    }
}

impl ThermalModel {
    /// Steady-state outlet temperature for a node drawing `watts`.
    pub fn steady_outlet_c(&self, watts: f64) -> f64 {
        self.supply_c + self.rise_c_per_kw * watts / 1_000.0
    }

    /// GPU junction temperature given loop outlet temp and utilization.
    pub fn gpu_temp_c(&self, outlet_c: f64, gpu_util: f64) -> f64 {
        outlet_c + self.gpu_rise_c * gpu_util
    }
}

impl NodeThermal {
    /// Start at thermal equilibrium with an idle node.
    pub fn new(model: &ThermalModel, idle_watts: f64) -> Self {
        NodeThermal {
            outlet_c: model.steady_outlet_c(idle_watts),
        }
    }

    /// Advance the lag by `dt_s` seconds toward the steady state implied
    /// by `watts`, returning the new outlet temperature.
    pub fn step(&mut self, model: &ThermalModel, watts: f64, dt_s: f64) -> f64 {
        let target = model.steady_outlet_c(watts);
        // Exact discretization of d(T)/dt = (target - T)/tau.
        let alpha = 1.0 - (-dt_s / model.tau_s).exp();
        self.outlet_c += alpha * (target - self.outlet_c);
        self.outlet_c
    }

    /// Current outlet temperature.
    pub fn outlet_c(&self) -> f64 {
        self.outlet_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrium_holds() {
        let m = ThermalModel::default();
        let mut t = NodeThermal::new(&m, 1_000.0);
        let before = t.outlet_c();
        for _ in 0..100 {
            t.step(&m, 1_000.0, 1.0);
        }
        assert!((t.outlet_c() - before).abs() < 1e-9);
    }

    #[test]
    fn step_approaches_steady_state() {
        let m = ThermalModel::default();
        let mut t = NodeThermal::new(&m, 500.0);
        let target = m.steady_outlet_c(3_000.0);
        for _ in 0..(10 * m.tau_s as usize) {
            t.step(&m, 3_000.0, 1.0);
        }
        assert!(
            (t.outlet_c() - target).abs() < 0.05,
            "{} vs {target}",
            t.outlet_c()
        );
    }

    #[test]
    fn lag_means_transient_undershoot() {
        let m = ThermalModel::default();
        let mut t = NodeThermal::new(&m, 500.0);
        let target = m.steady_outlet_c(3_000.0);
        t.step(&m, 3_000.0, 10.0);
        // After one-ninth of a time constant we must still be well below
        // the steady state.
        assert!(t.outlet_c() < target - 5.0);
    }

    #[test]
    fn gpu_temp_rises_with_util() {
        let m = ThermalModel::default();
        assert!(m.gpu_temp_c(30.0, 1.0) > m.gpu_temp_c(30.0, 0.0) + 30.0);
    }

    #[test]
    fn hotter_node_hotter_outlet() {
        let m = ThermalModel::default();
        assert!(m.steady_outlet_c(3_000.0) > m.steady_outlet_c(500.0));
    }
}
