//! Facility assembly: systems, broker, tiers, and bookkeeping.

use crate::config::FacilityConfig;
use crate::ingest::{publish_batch, topics};
use oda_storage::lake::Lake;
use oda_storage::ocean::Ocean;
use oda_storage::tiering::TierManager;
use oda_storage::Glacier;
use oda_stream::{Broker, RetentionPolicy};
use oda_telemetry::events::Event;
use oda_telemetry::jobs::{Job, JobEvent};
use oda_telemetry::{SystemModel, TelemetryGenerator};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Aggregate statistics of one facility tick.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TickStats {
    /// Observations published.
    pub observations: usize,
    /// Events published.
    pub events: usize,
    /// Job lifecycle records published.
    pub job_events: usize,
}

/// The assembled facility: the one-stop shop of §V.
pub struct Facility {
    config: FacilityConfig,
    generators: Vec<TelemetryGenerator>,
    broker: Arc<Broker>,
    lake: Arc<Lake>,
    ocean: Arc<Ocean>,
    glacier: Glacier,
    tiers: TierManager,
    /// Completed + running jobs seen so far, per system.
    job_history: Vec<Vec<Job>>,
    /// Events seen so far, per system.
    event_history: Vec<Vec<Event>>,
    now_ms: i64,
}

impl Facility {
    /// Build the facility: generators, topics, tiers.
    pub fn build(config: FacilityConfig) -> Facility {
        let broker = Broker::new();
        let mut generators = Vec::new();
        for (i, system) in config.systems.iter().enumerate() {
            let seed = config.seed.wrapping_add(i as u64 * 0x9e37_79b9);
            generators.push(
                TelemetryGenerator::with_workload(system.clone(), seed, config.workload.clone())
                    .with_tick_ms(config.tick_ms),
            );
            let (bronze, events, jobs) = topics(&system.name);
            broker
                .create_topic(
                    &bronze,
                    config.bronze_partitions,
                    RetentionPolicy::stream_default(),
                )
                .expect("fresh topic");
            broker
                .create_topic(&events, 1, RetentionPolicy::stream_default())
                .expect("fresh");
            broker
                .create_topic(&jobs, 1, RetentionPolicy::unbounded())
                .expect("fresh");
        }
        let n = config.systems.len();
        Facility {
            config,
            generators,
            broker,
            lake: Arc::new(Lake::new()),
            ocean: Ocean::new(),
            glacier: Glacier::new(),
            tiers: TierManager::new(),
            job_history: vec![Vec::new(); n],
            event_history: vec![Vec::new(); n],
            now_ms: 0,
        }
    }

    /// The facility configuration.
    pub fn config(&self) -> &FacilityConfig {
        &self.config
    }

    /// Simulated time (ms).
    pub fn now_ms(&self) -> i64 {
        self.now_ms
    }

    /// The STREAM broker.
    pub fn broker(&self) -> Arc<Broker> {
        self.broker.clone()
    }

    /// The LAKE service.
    pub fn lake(&self) -> Arc<Lake> {
        self.lake.clone()
    }

    /// The OCEAN service.
    pub fn ocean(&self) -> Arc<Ocean> {
        self.ocean.clone()
    }

    /// The GLACIER service.
    pub fn glacier(&self) -> &Glacier {
        &self.glacier
    }

    /// The tier lifecycle manager.
    pub fn tiers(&mut self) -> &mut TierManager {
        &mut self.tiers
    }

    /// Systems in the facility.
    pub fn systems(&self) -> Vec<&SystemModel> {
        self.generators.iter().map(|g| g.system()).collect()
    }

    /// The telemetry generator of system `i` (actuators live here).
    pub fn generator_mut(&mut self, i: usize) -> &mut TelemetryGenerator {
        &mut self.generators[i]
    }

    /// Every job observed so far on system `i` (running + completed).
    pub fn jobs(&self, i: usize) -> &[Job] {
        &self.job_history[i]
    }

    /// Every event observed so far on system `i`.
    pub fn events(&self, i: usize) -> &[Event] {
        &self.event_history[i]
    }

    /// Advance the whole facility one tick: generate, publish to
    /// STREAM, feed the LAKE's hot series, track jobs/events.
    pub fn tick(&mut self) -> TickStats {
        let mut stats = TickStats::default();
        for (i, generator) in self.generators.iter_mut().enumerate() {
            let system_name = generator.system().name.clone();
            let node_power_id = generator.catalog().by_name("node_power_w").map(|s| s.id);
            let batch = generator.next_batch();
            self.now_ms = self.now_ms.max(batch.ts_ms);
            let (o, e, j) =
                publish_batch(&self.broker, &system_name, &batch).expect("facility topics exist");
            stats.observations += o;
            stats.events += e;
            stats.job_events += j;
            // Hot path into the LAKE: node power series for dashboards.
            if let Some(id) = node_power_id {
                for obs in &batch.observations {
                    if obs.sensor == id && !obs.value.is_nan() {
                        self.lake.insert(
                            &format!("{}/node{}/node_power_w", system_name, obs.component.node),
                            obs.ts_ms,
                            obs.value,
                        );
                    }
                }
            }
            self.event_history[i].extend(batch.events.iter().cloned());
            for je in &batch.job_events {
                if let JobEvent::Start(job) = je {
                    self.job_history[i].push(job.clone());
                }
            }
        }
        stats
    }

    /// Run `n` ticks, returning cumulative stats.
    pub fn run(&mut self, n: usize) -> TickStats {
        let mut total = TickStats::default();
        for _ in 0..n {
            let s = self.tick();
            total.observations += s.observations;
            total.events += s.events;
            total.job_events += s.job_events;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FacilityConfig;
    use oda_stream::Consumer;

    #[test]
    fn build_creates_topics_per_system() {
        let f = Facility::build(FacilityConfig::tiny(1));
        let names = f.broker().topic_names();
        assert!(names.contains(&"tiny.bronze".to_string()));
        assert!(names.contains(&"tiny.events".to_string()));
        assert!(names.contains(&"tiny.jobs".to_string()));
    }

    #[test]
    fn ticks_publish_and_feed_lake() {
        let mut f = Facility::build(FacilityConfig::tiny(2));
        let stats = f.run(30);
        assert!(stats.observations > 0);
        // Bronze is consumable.
        let mut c = Consumer::subscribe(f.broker(), "t", "tiny.bronze").unwrap();
        assert!(!c.poll(10).unwrap().is_empty());
        // The LAKE has hot node power series.
        let series = f.lake().series_with_prefix("tiny/", 0, f.now_ms() + 1);
        assert_eq!(series.len(), 8, "one power series per node");
        let pts = f
            .lake()
            .plan(0, f.now_ms() + 1)
            .series("tiny/node0/node_power_w")
            .points();
        assert!(!pts.is_empty());
    }

    #[test]
    fn job_history_accumulates() {
        let mut f = Facility::build(FacilityConfig::tiny(3));
        // One simulated hour at 1-minute ticks for job turnover.
        let mut cfg = FacilityConfig::tiny(3);
        cfg.tick_ms = 60_000;
        let mut f2 = Facility::build(cfg);
        f2.run(120);
        assert!(!f2.jobs(0).is_empty(), "no jobs started in 2h");
        f.run(5);
        assert!(f.now_ms() >= 5_000);
    }

    #[test]
    fn paper_facility_builds_both_systems() {
        let f = Facility::build(FacilityConfig::paper_facility(1));
        let names: Vec<&str> = f.systems().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["mountain", "compass"]);
        assert_eq!(f.broker().topic_names().len(), 6);
    }
}
