//! Pipeline engine metrics: epoch/record throughput counters and
//! per-stage latency histograms.
//!
//! Attached to a query with
//! [`crate::streaming::StreamingQueryBuilder::metrics`]; each committed
//! epoch bumps the counters and feeds its [`EpochTimings`] into the
//! `pipeline_stage_duration_ns{stage=...}` histograms.

use std::sync::Arc;

use oda_obs::{exponential_bounds, Counter, Histogram, Registry};

use crate::executor::EpochTimings;

/// The pipeline stages a timing histogram exists for.
const STAGES: [&str; 5] = ["fetch", "decode", "transform", "sink", "checkpoint"];

/// Cached instruments for the streaming engine.
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Epochs committed (checkpoint durable).
    pub epochs: Arc<Counter>,
    /// Records processed across committed epochs.
    pub records: Arc<Counter>,
    /// Epochs that failed before their checkpoint committed.
    pub failed_epochs: Arc<Counter>,
    stage_ns: [Arc<Histogram>; STAGES.len()],
}

impl PipelineMetrics {
    /// Register the pipeline metric families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        // 1 µs .. ~4.3 s in ×4 steps — spans a cheap decode of a few
        // records up to a pathological stateful transform.
        let bounds = exponential_bounds(1_000, 4, 12);
        let stage_ns = STAGES.map(|stage| {
            registry.histogram(
                "pipeline_stage_duration_ns",
                "Per-epoch stage latency, by stage",
                &[("stage", stage)],
                &bounds,
            )
        });
        Self {
            epochs: registry.counter("pipeline_epochs_total", "Micro-batch epochs committed", &[]),
            records: registry.counter(
                "pipeline_records_total",
                "Records processed in committed epochs",
                &[],
            ),
            failed_epochs: registry.counter(
                "pipeline_failed_epochs_total",
                "Epochs that errored before their checkpoint committed",
                &[],
            ),
            stage_ns,
        }
    }

    /// Record one committed epoch's record count and stage timings.
    pub fn record_epoch(&self, records: usize, timings: &EpochTimings) {
        self.epochs.inc();
        self.records.add(records as u64);
        for (h, ns) in self.stage_ns.iter().zip([
            timings.fetch_ns,
            timings.decode_ns,
            timings.transform_ns,
            timings.sink_ns,
            timings.checkpoint_ns,
        ]) {
            h.observe(ns);
        }
    }

    /// The latency histogram of one named stage (`fetch`, `decode`,
    /// `transform`, `sink`, or `checkpoint`).
    pub fn stage_histogram(&self, stage: &str) -> Option<&Arc<Histogram>> {
        STAGES
            .iter()
            .position(|&s| s == stage)
            .map(|i| &self.stage_ns[i])
    }
}

/// Counters for the logical query planner — how much pushdown saved.
///
/// Fed by [`crate::logical::LogicalPlan::execute_with`] through
/// [`crate::logical::ExecContext`].
#[derive(Debug, Clone)]
pub struct PlanMetrics {
    /// Planned queries executed.
    pub plans: Arc<Counter>,
    /// Column chunks decompressed and decoded by planned scans.
    pub chunks_read: Arc<Counter>,
    /// Column chunks skipped by stats or index pruning.
    pub chunks_pruned: Arc<Counter>,
    /// Pushed predicates answered by a secondary index.
    pub index_hits: Arc<Counter>,
}

impl PlanMetrics {
    /// Register the planner metric families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            plans: registry.counter(
                "query_plans_executed_total",
                "Logical query plans executed",
                &[],
            ),
            chunks_read: registry.counter(
                "query_chunks_read_total",
                "Column chunks decoded by planned scans",
                &[],
            ),
            chunks_pruned: registry.counter(
                "query_chunks_pruned_total",
                "Column chunks skipped by stats or index pruning",
                &[],
            ),
            index_hits: registry.counter(
                "query_index_hits_total",
                "Pushed predicates answered by a secondary index",
                &[],
            ),
        }
    }

    /// Record one executed plan's pruning statistics.
    pub fn record(&self, stats: &crate::logical::ExecStats) {
        self.plans.inc();
        self.chunks_read.add(stats.chunks_read);
        self.chunks_pruned.add(stats.chunks_pruned);
        self.index_hits.add(stats.index_hits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_epoch_feeds_counters_and_histograms() {
        let reg = Registry::new();
        let m = PipelineMetrics::new(&reg);
        m.record_epoch(
            250,
            &EpochTimings {
                fetch_ns: 10_000,
                decode_ns: 20_000,
                transform_ns: 30_000,
                sink_ns: 5_000,
                checkpoint_ns: 2_000,
            },
        );
        m.record_epoch(50, &EpochTimings::default());
        if oda_obs::enabled() {
            assert_eq!(reg.counter_value("pipeline_epochs_total", &[]), 2);
            assert_eq!(reg.counter_value("pipeline_records_total", &[]), 300);
            let fetch = m.stage_histogram("fetch").unwrap().snapshot();
            assert_eq!(fetch.count(), 2);
            assert_eq!(fetch.sum, 10_000);
        }
        assert!(m.stage_histogram("nope").is_none());
    }
}
