//! # oda-pipeline — medallion structured-streaming engine
//!
//! The Spark-structured-streaming analogue of the paper (§V-B): typed
//! columnar [`frame::Frame`]s, relational operators ([`ops`]), tumbling
//! windows ([`window`]), a SQL-clause pipeline plan mirroring the
//! anatomy of Fig. 4-b ([`plan`]), and a checkpointed micro-batch engine
//! over the STREAM broker with exactly-once sinks ([`streaming`]).
//!
//! The ODA-specific refinement stages — Bronze → Silver → Gold of the
//! "Medallion Architecture" the paper adapts — live in [`medallion`]:
//! long-format observations are window-aggregated, pivoted wide, and
//! joined with job allocations (Silver), then reduced to analysis-ready
//! artifacts (Gold).

pub mod checkpoint;
pub mod error;
pub mod executor;
pub mod expr;
pub mod frame;
pub mod frame_io;
pub mod kernels;
pub mod logical;
pub mod medallion;
pub mod metrics;
pub mod ops;
pub mod plan;
pub(crate) mod rowkey;
pub mod state;
pub mod streaming;
pub mod window;

pub use checkpoint::{Checkpoint, CheckpointStore};
pub use error::PipelineError;
pub use executor::{EpochMeta, EpochTimings};
pub use expr::Expr;
pub use frame::{Frame, StrColumn};
pub use logical::{ExecContext, ExecStats, LogicalPlan, Query, ScanPredicate, ScanSource, SortKey};
pub use metrics::{PipelineMetrics, PlanMetrics};
pub use plan::{PipelinePlan, Stage, StageTiming};
pub use streaming::{MemorySink, Sink, StreamingQuery, StreamingQueryBuilder};
