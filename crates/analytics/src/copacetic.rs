//! Copacetic: real-time security event correlation (§VII-B).
//!
//! "It detects when certain specific combinations of network
//! availability, system state, and user behavior occur and informs
//! administrative teams" — fed by the ODA event stream rather than a
//! batch SIEM. The rule reproduced here: a burst of failed
//! authentications followed by a success from the same user within a
//! follow window (credential stuffing / brute force success), plus a
//! node-instability rule correlating link flaps with node failures.

use oda_telemetry::events::{Event, EventKind};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};

/// A raised alert.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SecurityAlert {
    /// Alert time (ms): the triggering event's timestamp.
    pub ts_ms: i64,
    /// Rule identifier.
    pub rule: String,
    /// Affected user, when user-scoped.
    pub user: Option<u32>,
    /// Affected node, when node-scoped.
    pub node: Option<u32>,
    /// Human-readable detail.
    pub detail: String,
}

/// Streaming correlator with bounded per-user memory.
pub struct Copacetic {
    /// Failures within this window count toward a burst.
    pub burst_window_ms: i64,
    /// Minimum failures to arm the rule.
    pub burst_threshold: usize,
    /// A success within this window after an armed burst alerts.
    pub follow_window_ms: i64,
    /// user -> recent failure timestamps.
    fail_history: HashMap<u32, VecDeque<i64>>,
    /// node -> recent link-flap timestamps (for the instability rule).
    flap_history: HashMap<u32, VecDeque<i64>>,
}

impl Copacetic {
    /// Default tuning: 5 failures in 2 minutes armed for 5 minutes.
    pub fn new() -> Copacetic {
        Copacetic {
            burst_window_ms: 120_000,
            burst_threshold: 5,
            follow_window_ms: 300_000,
            fail_history: HashMap::new(),
            flap_history: HashMap::new(),
        }
    }

    fn trim(history: &mut VecDeque<i64>, now: i64, window: i64) {
        while history.front().is_some_and(|&t| now - t > window) {
            history.pop_front();
        }
    }

    /// Feed events (in time order); returns alerts raised.
    pub fn ingest(&mut self, events: &[Event]) -> Vec<SecurityAlert> {
        let mut alerts = Vec::new();
        for e in events {
            match e.kind {
                EventKind::AuthFail => {
                    if let Some(user) = e.user {
                        let h = self.fail_history.entry(user).or_default();
                        h.push_back(e.ts_ms);
                        // Keep both windows' worth of history.
                        Self::trim(h, e.ts_ms, self.burst_window_ms + self.follow_window_ms);
                    }
                }
                EventKind::LoginSuccess => {
                    if let Some(user) = e.user {
                        if let Some(h) = self.fail_history.get_mut(&user) {
                            // Burst = threshold failures inside burst_window,
                            // ending within follow_window of this success.
                            let recent: Vec<i64> = h
                                .iter()
                                .copied()
                                .filter(|&t| e.ts_ms - t <= self.follow_window_ms)
                                .collect();
                            let bursty = recent
                                .windows(self.burst_threshold)
                                .any(|w| w[w.len() - 1] - w[0] <= self.burst_window_ms);
                            if bursty {
                                alerts.push(SecurityAlert {
                                    ts_ms: e.ts_ms,
                                    rule: "auth-burst-then-success".into(),
                                    user: Some(user),
                                    node: None,
                                    detail: format!(
                                        "user {user}: {} failures then success",
                                        recent.len()
                                    ),
                                });
                                h.clear();
                            }
                        }
                    }
                }
                EventKind::LinkFlap => {
                    if let Some(node) = e.node {
                        let h = self.flap_history.entry(node).or_default();
                        h.push_back(e.ts_ms);
                        Self::trim(h, e.ts_ms, 600_000);
                    }
                }
                EventKind::NodeFail => {
                    if let Some(node) = e.node {
                        let flaps = self
                            .flap_history
                            .get(&node)
                            .map(|h| h.iter().filter(|&&t| e.ts_ms - t <= 600_000).count())
                            .unwrap_or(0);
                        if flaps >= 2 {
                            alerts.push(SecurityAlert {
                                ts_ms: e.ts_ms,
                                rule: "flapping-then-node-fail".into(),
                                user: None,
                                node: Some(node),
                                detail: format!("node {node}: {flaps} link flaps then failure"),
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        alerts
    }
}

impl Default for Copacetic {
    fn default() -> Self {
        Copacetic::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oda_telemetry::events::Severity;

    fn auth(ts: i64, user: u32, ok: bool) -> Event {
        let kind = if ok {
            EventKind::LoginSuccess
        } else {
            EventKind::AuthFail
        };
        Event {
            ts_ms: ts,
            kind,
            severity: kind.severity(),
            node: None,
            user: Some(user),
            message: String::new(),
        }
    }

    fn node_event(ts: i64, node: u32, kind: EventKind) -> Event {
        Event {
            ts_ms: ts,
            kind,
            severity: Severity::Error,
            node: Some(node),
            user: None,
            message: String::new(),
        }
    }

    #[test]
    fn burst_then_success_alerts() {
        let mut c = Copacetic::new();
        let mut events: Vec<Event> = (0..6).map(|i| auth(i * 10_000, 3, false)).collect();
        events.push(auth(70_000, 3, true));
        let alerts = c.ingest(&events);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "auth-burst-then-success");
        assert_eq!(alerts[0].user, Some(3));
    }

    #[test]
    fn slow_failures_do_not_alert() {
        let mut c = Copacetic::new();
        // 6 failures spread over an hour: never 5 within 2 minutes.
        let mut events: Vec<Event> = (0..6).map(|i| auth(i * 600_000, 3, false)).collect();
        events.push(auth(3_700_000, 3, true));
        assert!(c.ingest(&events).is_empty());
    }

    #[test]
    fn success_without_failures_is_benign() {
        let mut c = Copacetic::new();
        let events: Vec<Event> = (0..10).map(|i| auth(i * 1_000, 1, true)).collect();
        assert!(c.ingest(&events).is_empty());
    }

    #[test]
    fn users_do_not_cross_contaminate() {
        let mut c = Copacetic::new();
        let mut events: Vec<Event> = (0..6).map(|i| auth(i * 10_000, 1, false)).collect();
        events.push(auth(70_000, 2, true)); // different user succeeds
        assert!(c.ingest(&events).is_empty());
    }

    #[test]
    fn stale_burst_does_not_alert() {
        let mut c = Copacetic::new();
        let mut events: Vec<Event> = (0..6).map(|i| auth(i * 10_000, 3, false)).collect();
        // Success 20 minutes later: outside follow window.
        events.push(auth(1_260_000, 3, true));
        assert!(c.ingest(&events).is_empty());
    }

    #[test]
    fn incremental_ingest_matches_batch() {
        let mut batch = Copacetic::new();
        let mut incremental = Copacetic::new();
        let mut events: Vec<Event> = (0..6).map(|i| auth(i * 10_000, 3, false)).collect();
        events.push(auth(70_000, 3, true));
        let batch_alerts = batch.ingest(&events);
        let mut inc_alerts = Vec::new();
        for e in &events {
            inc_alerts.extend(incremental.ingest(std::slice::from_ref(e)));
        }
        assert_eq!(batch_alerts, inc_alerts);
    }

    #[test]
    fn flapping_node_failure_alerts() {
        let mut c = Copacetic::new();
        let events = vec![
            node_event(0, 9, EventKind::LinkFlap),
            node_event(60_000, 9, EventKind::LinkFlap),
            node_event(120_000, 9, EventKind::NodeFail),
        ];
        let alerts = c.ingest(&events);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "flapping-then-node-fail");
        assert_eq!(alerts[0].node, Some(9));
        // A clean node failure does not alert.
        let mut c = Copacetic::new();
        assert!(c
            .ingest(&[node_event(0, 9, EventKind::NodeFail)])
            .is_empty());
    }
}
