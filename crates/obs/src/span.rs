//! Lightweight span timing with stable IDs.
//!
//! A [`SpanId`] is the FNV-1a hash of the span's name — stable across
//! runs, builds, and hosts, so logs and metrics that key on it can be
//! correlated without a registration step. [`Stopwatch`] wraps
//! `Instant` behind the `collect` gate (elapsed is 0 ns when compiled
//! out); [`Span`] is an RAII guard that records its elapsed nanoseconds
//! into a histogram on drop.

use std::sync::Arc;

use crate::histogram::Histogram;

/// Stable 64-bit identifier for a named span (FNV-1a of the name).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// FNV-1a hash of `name` — deterministic across processes, unlike
/// `DefaultHasher` which is seeded per-process. Shares the one pinned
/// hash ([`crate::trace::fnv1a`]) with trace IDs and frame digests.
pub const fn span_id(name: &str) -> SpanId {
    SpanId(crate::trace::fnv1a(name.as_bytes()))
}

/// A monotonic timer that compiles down to nothing without `collect`.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    #[cfg(feature = "collect")]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self {
            #[cfg(feature = "collect")]
            start: std::time::Instant::now(),
        }
    }

    /// Nanoseconds since `start` (0 when collection is compiled out),
    /// saturated to `u64`.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "collect")]
        {
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(not(feature = "collect"))]
        {
            0
        }
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// RAII guard: records elapsed nanoseconds into `sink` when dropped.
///
/// ```
/// let reg = oda_obs::Registry::new();
/// let h = reg.histogram("stage_ns", "stage latency", &[], &[1_000, 1_000_000]);
/// {
///     let _span = oda_obs::Span::enter("decode", &h);
///     // ... timed work ...
/// }
/// assert_eq!(h.snapshot().count(), u64::from(oda_obs::enabled()));
/// ```
#[derive(Debug)]
pub struct Span {
    id: SpanId,
    watch: Stopwatch,
    sink: Arc<Histogram>,
}

impl Span {
    /// Start a span named `name`, recording into `sink` on drop.
    pub fn enter(name: &str, sink: &Arc<Histogram>) -> Self {
        Self {
            id: span_id(name),
            watch: Stopwatch::start(),
            sink: Arc::clone(sink),
        }
    }

    /// The span's stable identifier.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Nanoseconds elapsed so far.
    pub fn elapsed_ns(&self) -> u64 {
        self.watch.elapsed_ns()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.sink.observe(self.watch.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_stable_and_distinct() {
        assert_eq!(span_id("fetch"), span_id("fetch"));
        assert_ne!(span_id("fetch"), span_id("decode"));
        // Pinned value: FNV-1a("fetch") must never drift across builds.
        assert_eq!(span_id("").0, 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn span_records_on_drop() {
        let h = Arc::new(Histogram::new(&[1_000_000_000]));
        {
            let s = Span::enter("work", &h);
            assert_eq!(s.id(), span_id("work"));
        }
        if crate::enabled() {
            assert_eq!(h.snapshot().count(), 1);
        } else {
            assert_eq!(h.snapshot().count(), 0);
        }
    }

    #[test]
    fn stopwatch_is_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed_ns();
        let b = w.elapsed_ns();
        assert!(b >= a);
    }
}
