//! # oda-twin — a digital twin of a liquid-cooled supercomputer
//!
//! The ExaDigiT analogue (§VIII-C, Fig. 11): white-box models that
//! "overcome the limitations of black-box data-driven machine learning
//! models that do not extrapolate to unknown states". Three modules
//! mirror the paper's decomposition:
//!
//! 1. [`power`] — a resource-allocator-driven power simulator,
//!    including rectification and voltage-conversion losses.
//! 2. [`cooling`] — a transient thermo-fluidic model of the cooling
//!    chain (cold plates → CDU heat exchanger → primary loop → cooling
//!    tower), integrated explicitly with a stability-bounded step.
//! 3. [`mod@replay`] — telemetry replay for verification & validation:
//!    drive the twin with a recorded job schedule and compare predicted
//!    against measured facility power and loop temperatures.
//!
//! [`scenario`] adds what-if studies (the HPL run of Fig. 11, coolant
//! set-point changes, load scaling); [`validate`] holds the error
//! metrics.

pub mod cooling;
pub mod power;
pub mod replay;
pub mod scenario;
pub mod validate;

pub use cooling::{CoolingPlant, CoolingState};
pub use power::{PowerSample, PowerSim};
pub use replay::{replay, ReplayReport};
pub use scenario::{hpl_run, Scenario};
