//! The data dictionary exploration campaigns build first (§VI-A).
//!
//! "These data exploration campaigns first focus on building a data
//! dictionary that has qualitative information about the dataset such
//! as sample rate, failure rates, logical and physical sensor location,
//! and their meaning." An entry is *complete* when every one of those
//! fields is filled — completeness gates maturity promotion to L3.

use crate::maturity::StreamRow;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One sensor's dictionary entry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DictionaryEntry {
    /// Sensor/stream name.
    pub name: String,
    /// Sampling rate description ("1 Hz out-of-band").
    pub sample_rate: Option<String>,
    /// Observed loss/failure rate description.
    pub failure_rate: Option<String>,
    /// Logical and physical location ("node cold plate outlet").
    pub location: Option<String>,
    /// Meaning with respect to the underlying process.
    pub meaning: Option<String>,
    /// Authoritative vendor contact / document.
    pub vendor_reference: Option<String>,
}

impl DictionaryEntry {
    /// Complete when every qualitative field is present.
    pub fn is_complete(&self) -> bool {
        self.sample_rate.is_some()
            && self.failure_rate.is_some()
            && self.location.is_some()
            && self.meaning.is_some()
            && self.vendor_reference.is_some()
    }
}

/// Dictionary grouped by stream row.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DataDictionary {
    entries: BTreeMap<StreamRow, Vec<DictionaryEntry>>,
}

impl DataDictionary {
    /// Empty dictionary.
    pub fn new() -> DataDictionary {
        DataDictionary::default()
    }

    /// Add or replace an entry under a stream.
    pub fn upsert(&mut self, row: StreamRow, entry: DictionaryEntry) {
        let list = self.entries.entry(row).or_default();
        if let Some(existing) = list.iter_mut().find(|e| e.name == entry.name) {
            *existing = entry;
        } else {
            list.push(entry);
        }
    }

    /// Entries under a stream.
    pub fn entries(&self, row: StreamRow) -> &[DictionaryEntry] {
        self.entries.get(&row).map(Vec::as_slice).unwrap_or(&[])
    }

    /// A stream is dictionary-complete when it has at least one entry
    /// and every entry is complete.
    pub fn is_complete(&self, row: StreamRow) -> bool {
        let entries = self.entries(row);
        !entries.is_empty() && entries.iter().all(DictionaryEntry::is_complete)
    }

    /// Convenience for tests/examples: mark a stream complete with one
    /// fully-filled synthetic entry.
    pub fn complete_stream(&mut self, row: StreamRow) {
        self.upsert(
            row,
            DictionaryEntry {
                name: format!("{}-primary", row.label()),
                sample_rate: Some("1 Hz".into()),
                failure_rate: Some("0.2% sample loss".into()),
                location: Some("per-node out-of-band".into()),
                meaning: Some("primary signal of the stream".into()),
                vendor_reference: Some("vendor doc rev A".into()),
            },
        );
    }

    /// Fraction of streams (of the 11 Fig. 3 rows) that are complete —
    /// the "data coverage" number.
    pub fn coverage(&self) -> f64 {
        let complete = StreamRow::ALL
            .iter()
            .filter(|&&r| self.is_complete(r))
            .count();
        complete as f64 / StreamRow::ALL.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_completeness_requires_all_fields() {
        let mut e = DictionaryEntry {
            name: "node_power_w".into(),
            ..Default::default()
        };
        assert!(!e.is_complete());
        e.sample_rate = Some("1 Hz".into());
        e.failure_rate = Some("0.2%".into());
        e.location = Some("node".into());
        e.meaning = Some("total node input power".into());
        assert!(!e.is_complete(), "vendor reference still missing");
        e.vendor_reference = Some("BMC spec 4.2".into());
        assert!(e.is_complete());
    }

    #[test]
    fn stream_completeness_needs_every_entry_complete() {
        let mut d = DataDictionary::new();
        assert!(
            !d.is_complete(StreamRow::PowerTemp),
            "empty stream incomplete"
        );
        d.complete_stream(StreamRow::PowerTemp);
        assert!(d.is_complete(StreamRow::PowerTemp));
        // Adding an incomplete entry breaks completeness.
        d.upsert(
            StreamRow::PowerTemp,
            DictionaryEntry {
                name: "gpu_power_w".into(),
                ..Default::default()
            },
        );
        assert!(!d.is_complete(StreamRow::PowerTemp));
    }

    #[test]
    fn upsert_replaces_by_name() {
        let mut d = DataDictionary::new();
        d.upsert(
            StreamRow::Facility,
            DictionaryEntry {
                name: "x".into(),
                ..Default::default()
            },
        );
        d.upsert(
            StreamRow::Facility,
            DictionaryEntry {
                name: "x".into(),
                meaning: Some("better".into()),
                ..Default::default()
            },
        );
        assert_eq!(d.entries(StreamRow::Facility).len(), 1);
        assert_eq!(
            d.entries(StreamRow::Facility)[0].meaning.as_deref(),
            Some("better")
        );
    }

    #[test]
    fn coverage_counts_complete_rows() {
        let mut d = DataDictionary::new();
        assert_eq!(d.coverage(), 0.0);
        d.complete_stream(StreamRow::PowerTemp);
        d.complete_stream(StreamRow::Facility);
        assert!((d.coverage() - 2.0 / 11.0).abs() < 1e-12);
    }
}
