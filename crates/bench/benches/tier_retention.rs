//! Experiment F5 (paper Fig. 5): tiered services and retention.
//!
//! Benchmarks the byte-level machinery behind the tier architecture —
//! columnar+compressed OCEAN writes vs naive row serialization, GLACIER
//! archive/recall, and the lifecycle manager at scale — and prints the
//! compression ratios that justify the tiering ("significant data
//! compression and minimal I/O footprint").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use oda_bench::tiny_observations;
use oda_storage::colfile::{ColumnData, ColumnType, TableFile, TableSchema};
use oda_storage::tiering::{DataClass, Tier, TierManager};
use oda_storage::Glacier;
use std::hint::black_box;

fn columns_of(obs: &[oda_telemetry::record::Observation]) -> Vec<ColumnData> {
    vec![
        ColumnData::I64(obs.iter().map(|o| o.ts_ms).collect()),
        ColumnData::I64(obs.iter().map(|o| i64::from(o.component.node)).collect()),
        ColumnData::I64(obs.iter().map(|o| i64::from(o.sensor)).collect()),
        ColumnData::F64(obs.iter().map(|o| o.value).collect()),
    ]
}

fn schema() -> TableSchema {
    TableSchema::new(&[
        ("ts_ms", ColumnType::I64),
        ("node", ColumnType::I64),
        ("sensor", ColumnType::I64),
        ("value", ColumnType::F64),
    ])
}

fn bench_formats(c: &mut Criterion) {
    let (_, obs) = tiny_observations(31, 2_000);
    let cols = columns_of(&obs);
    let rows = obs.len();

    // Print the ratio table once.
    let mut w = TableFile::writer(schema());
    w.write_row_group(&cols).unwrap();
    let colfile_bytes = w.finish().len();
    let row_json: usize = obs
        .iter()
        .map(|o| {
            format!(
                "{{\"ts\":{},\"node\":{},\"sensor\":{},\"value\":{}}}",
                o.ts_ms, o.component.node, o.sensor, o.value
            )
            .len()
        })
        .sum();
    let wire = oda_telemetry::record::Observation::encode_batch(&obs).len();
    println!("\n=== F5: storage formats for {rows} observations ===");
    println!("  row JSON        {:>10} bytes (1.0x)", row_json);
    println!(
        "  binary wire     {:>10} bytes ({:.1}x)",
        wire,
        row_json as f64 / wire as f64
    );
    println!(
        "  OCEAN colfile   {:>10} bytes ({:.1}x)\n",
        colfile_bytes,
        row_json as f64 / colfile_bytes as f64
    );

    let mut group = c.benchmark_group("f5_format");
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("colfile_write", |b| {
        b.iter(|| {
            let mut w = TableFile::writer(schema());
            w.write_row_group(&cols).unwrap();
            black_box(w.finish().len())
        })
    });
    group.bench_function("row_json_write", |b| {
        b.iter(|| {
            let total: usize = obs
                .iter()
                .map(|o| {
                    format!(
                        "{{\"ts\":{},\"node\":{},\"sensor\":{},\"value\":{}}}",
                        o.ts_ms, o.component.node, o.sensor, o.value
                    )
                    .len()
                })
                .sum();
            black_box(total)
        })
    });
    let mut w = TableFile::writer(schema());
    w.write_row_group(&cols).unwrap();
    let bytes = w.finish();
    group.bench_function("colfile_read", |b| {
        b.iter(|| {
            let f = TableFile::open(bytes.clone()).unwrap();
            black_box(f.read_row_group(0).unwrap())
        })
    });
    group.finish();
}

fn bench_glacier(c: &mut Criterion) {
    let (_, obs) = tiny_observations(33, 2_000);
    let wire = oda_telemetry::record::Observation::encode_batch(&obs);
    let mut group = c.benchmark_group("f5_glacier");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("archive", |b| {
        let mut i = 0u64;
        let glacier = Glacier::new();
        b.iter(|| {
            i += 1;
            glacier.archive(&format!("a{i}"), &wire, 0).unwrap();
        })
    });
    let glacier = Glacier::new();
    glacier.archive("x", &wire, 0).unwrap();
    group.bench_function("recall", |b| {
        b.iter(|| black_box(glacier.recall("x").unwrap().0.len()))
    });
    group.finish();
}

fn bench_lifecycle(c: &mut Criterion) {
    const DAY: i64 = 86_400_000;
    let mut group = c.benchmark_group("f5_lifecycle");
    group.bench_function("advance_10k_artifacts", |b| {
        b.iter_batched(
            || {
                let mut mgr = TierManager::new();
                for i in 0..10_000i64 {
                    let class = DataClass::ALL[(i % 3) as usize];
                    let tier = Tier::ALL[(i % 3) as usize]; // hot tiers only
                    mgr.register(&format!("a{i}"), class, tier, 1_000_000, i % 40 * DAY);
                }
                mgr
            },
            |mut mgr| black_box(mgr.advance(45 * DAY).len()),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_formats, bench_glacier, bench_lifecycle);
criterion_main!(benches);
