//! Minimal HTTP/1.1 framing: enough to parse a scraper's `GET` and
//! write one response, nothing more.
//!
//! The operator plane serves Prometheus scrapers, `curl`, and the test
//! suite's raw-socket clients — all of which speak plain `GET` with
//! small headers. Parsing is deliberately strict and bounded: one
//! request line plus headers, each line capped, total header block
//! capped, anything else is a 4xx. Responses always carry
//! `Content-Length` and `Connection: close`, so clients never have to
//! guess framing and the server never has to manage keep-alive state.

use std::io::{BufRead, Write};

/// Longest accepted request/header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Most accepted header lines per request.
pub const MAX_HEADER_LINES: usize = 64;

/// A parsed request: method plus split path/query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path without the query string, e.g. `/healthz`.
    pub path: String,
    /// Raw query string without the `?` (empty when absent).
    pub query: String,
}

impl Request {
    /// The value of query parameter `key`, if present
    /// (`a=1&b=2` style; no percent-decoding — operands are
    /// identifier-shaped in this API).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Why a request failed to parse, mapped to a status code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line or headers → 400.
    BadRequest(&'static str),
    /// A line or the header block exceeded the caps → 431.
    TooLarge,
    /// Socket error or timeout mid-request (no response owed).
    Io(String),
}

/// Read and parse one request from `reader` (headers are consumed and
/// discarded; bodies are not supported — this is a read-only API).
pub fn parse_request<R: BufRead>(reader: &mut R) -> Result<Request, HttpError> {
    let line = read_line(reader)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(HttpError::BadRequest("empty request"))?;
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    for _ in 0..MAX_HEADER_LINES {
        let header = read_line(reader)?;
        if header.is_empty() {
            let (path, query) = match target.split_once('?') {
                Some((p, q)) => (p, q),
                None => (target, ""),
            };
            return Ok(Request {
                method: method.to_string(),
                path: path.to_string(),
                query: query.to_string(),
            });
        }
    }
    Err(HttpError::TooLarge)
}

/// One CRLF- (or LF-) terminated line, capped at [`MAX_LINE_BYTES`].
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut buf = Vec::with_capacity(128);
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Io("connection closed".into()));
                }
                break;
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    break;
                }
                if byte[0] != b'\r' {
                    buf.push(byte[0]);
                }
                if buf.len() > MAX_LINE_BYTES {
                    return Err(HttpError::TooLarge);
                }
            }
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
    String::from_utf8(buf).map_err(|_| HttpError::BadRequest("non-UTF8 request"))
}

/// A response ready to serialize: status, content type, body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

/// `Content-Type` for Prometheus text exposition.
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";
/// `Content-Type` for JSON bodies.
pub const CONTENT_TYPE_JSON: &str = "application/json";
/// `Content-Type` for JSONL (newline-delimited JSON) bodies.
pub const CONTENT_TYPE_JSONL: &str = "application/x-ndjson";
/// `Content-Type` for plain text.
pub const CONTENT_TYPE_TEXT: &str = "text/plain; charset=utf-8";

impl Response {
    /// 200 with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            content_type,
            body,
        }
    }

    /// 404 with a short text body.
    pub fn not_found(what: &str) -> Self {
        Self {
            status: 404,
            content_type: CONTENT_TYPE_TEXT,
            body: format!("not found: {what}\n"),
        }
    }

    /// An error response with a short text body.
    pub fn error(status: u16, msg: &str) -> Self {
        Self {
            status,
            content_type: CONTENT_TYPE_TEXT,
            body: format!("{msg}\n"),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Serialize status line, headers, and body to `w`.
    pub fn write_to<W: Write>(&self, w: &mut W) -> std::io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len()
        )?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        parse_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_with_query() {
        let r = parse("GET /trace/critical-path?query=gold&epoch=2 HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/trace/critical-path");
        assert_eq!(r.query_param("query"), Some("gold"));
        assert_eq!(r.query_param("epoch"), Some("2"));
        assert_eq!(r.query_param("missing"), None);
    }

    #[test]
    fn parses_bare_lf_lines() {
        let r = parse("GET /metrics HTTP/1.0\nHost: x\n\n").unwrap();
        assert_eq!(r.path, "/metrics");
        assert_eq!(r.query, "");
    }

    #[test]
    fn rejects_garbage_and_wrong_version() {
        assert!(matches!(parse("\r\n\r\n"), Err(HttpError::BadRequest(_))));
        assert!(matches!(
            parse("GET /x HTTP/2\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse("GET\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn caps_line_length_and_header_count() {
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 10));
        assert_eq!(parse(&long), Err(HttpError::TooLarge));
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..MAX_HEADER_LINES + 1 {
            many.push_str(&format!("X-H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert_eq!(parse(&many), Err(HttpError::TooLarge));
    }

    #[test]
    fn response_bytes_include_length_and_close() {
        let mut out = Vec::new();
        Response::ok(CONTENT_TYPE_TEXT, "hi\n".into())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nhi\n"));
    }
}
