//! Ablation (§V-B): predicate pushdown in the OCEAN columnar format.
//!
//! The colfile footer keeps per-chunk min/max statistics so time-range
//! scans skip row groups. Expected shape: a narrow time slice over many
//! row groups is far cheaper with pushdown than a full decode, and the
//! gap widens with file size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oda_storage::colfile::{ColumnData, ColumnType, TableFile, TableSchema};
use std::hint::black_box;

fn build_file(groups: usize, rows_per_group: usize) -> TableFile {
    let schema = TableSchema::new(&[
        ("ts_ms", ColumnType::I64),
        ("node", ColumnType::I64),
        ("value", ColumnType::F64),
    ]);
    let mut w = TableFile::writer(schema);
    for g in 0..groups {
        let base = (g * rows_per_group) as i64 * 1_000;
        w.write_row_group(&[
            ColumnData::I64(
                (0..rows_per_group as i64)
                    .map(|i| base + i * 1_000)
                    .collect(),
            ),
            ColumnData::I64((0..rows_per_group as i64).map(|i| i % 64).collect()),
            ColumnData::F64(
                (0..rows_per_group)
                    .map(|i| 500.0 + (i % 9) as f64)
                    .collect(),
            ),
        ])
        .unwrap();
    }
    TableFile::open(w.finish()).unwrap()
}

fn bench_pushdown(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pushdown");
    group.sample_size(20);
    for groups in [16usize, 64, 256] {
        let file = build_file(groups, 10_000);
        // A slice covering ~1/16 of the time range.
        let total_span = (groups * 10_000) as f64 * 1_000.0;
        let (lo, hi) = (total_span * 0.5, total_span * 0.5 + total_span / 16.0);
        group.bench_with_input(
            BenchmarkId::new("with_pushdown", groups),
            &groups,
            |b, _| {
                b.iter(|| {
                    let mut rows = 0;
                    for g in file.row_groups_in_range("ts_ms", lo, hi) {
                        rows += file.read_row_group(g).unwrap()[0].len();
                    }
                    black_box(rows)
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("full_decode", groups), &groups, |b, _| {
            b.iter(|| {
                let mut rows = 0;
                for g in 0..file.row_group_count() {
                    let cols = file.read_row_group(g).unwrap();
                    // Post-filter on the decoded timestamps.
                    if let ColumnData::I64(ts) = &cols[0] {
                        rows += ts
                            .iter()
                            .filter(|&&t| (t as f64) >= lo && (t as f64) <= hi)
                            .count();
                    }
                }
                black_box(rows)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pushdown);
criterion_main!(benches);
