//! Error metrics for verification & validation.

/// Mean absolute percentage error (skips pairs with |actual| < eps).
pub fn mape(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, a) in predicted.iter().zip(actual) {
        if a.abs() < 1e-9 || !p.is_finite() || !a.is_finite() {
            continue;
        }
        sum += ((p - a) / a).abs();
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        sum / n as f64
    }
}

/// Root mean squared error.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, a) in predicted.iter().zip(actual) {
        if !p.is_finite() || !a.is_finite() {
            continue;
        }
        sum += (p - a) * (p - a);
        n += 1;
    }
    if n == 0 {
        f64::NAN
    } else {
        (sum / n as f64).sqrt()
    }
}

/// Pearson correlation coefficient.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    let pairs: Vec<(f64, f64)> = x
        .iter()
        .zip(y)
        .filter(|(a, b)| a.is_finite() && b.is_finite())
        .map(|(a, b)| (*a, *b))
        .collect();
    let n = pairs.len() as f64;
    if n < 2.0 {
        return f64::NAN;
    }
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in pairs {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_of_exact_match_is_zero() {
        assert_eq!(mape(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mape_ten_percent() {
        let m = mape(&[110.0, 90.0], &[100.0, 100.0]);
        assert!((m - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rmse_known_value() {
        let e = rmse(&[1.0, 2.0], &[4.0, 6.0]);
        assert!((e - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn correlation_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((correlation(&x, &up) - 1.0).abs() < 1e-12);
        assert!((correlation(&x, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn nan_pairs_skipped() {
        let m = mape(&[110.0, f64::NAN], &[100.0, 100.0]);
        assert!((m - 0.1).abs() < 1e-12);
        assert!(mape(&[f64::NAN], &[1.0]).is_nan());
    }
}
