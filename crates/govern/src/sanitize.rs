//! Sanitization and anonymization before external release (§IX-B).
//!
//! "Internal staff hosting such projects carry out data sanitization or
//! anonymization tasks with the guidance of the curation and
//! cybersecurity staff before the data reaches external users."
//! Deterministic pseudonymization (salted hash) keeps joins possible
//! across released artifacts while severing identity.

use serde::{Deserialize, Serialize};

/// Deterministic sanitizer with a per-release salt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sanitizer {
    salt: u64,
}

impl Sanitizer {
    /// New sanitizer with an explicit salt (one per release).
    pub fn new(salt: u64) -> Sanitizer {
        Sanitizer { salt }
    }

    fn hash(&self, input: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.salt;
        for b in input.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Pseudonymous user token ("u-3fa09c12").
    pub fn user_token(&self, user: u32) -> String {
        format!("u-{:08x}", self.hash(&format!("user:{user}")) as u32)
    }

    /// Pseudonymous project token ("p-9b1f0042").
    pub fn project_token(&self, project: &str) -> String {
        format!("p-{:08x}", self.hash(&format!("project:{project}")) as u32)
    }

    /// Scrub PII-looking substrings from free text: e-mail addresses
    /// (also inside parentheses) and `userNNN` / `user NNN` references.
    pub fn scrub_text(&self, text: &str) -> String {
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let mut out: Vec<String> = Vec::with_capacity(tokens.len());
        let mut i = 0;
        while i < tokens.len() {
            let token = tokens[i];
            let inner = token.trim_matches(|c: char| "()[]{},.;:".contains(c));
            if inner.contains('@') {
                out.push(token.replace(inner, "[email]"));
                i += 1;
                continue;
            }
            // Two-token form: "user 15" (trailing punctuation survives).
            if token == "user" && i + 1 < tokens.len() {
                let raw = tokens[i + 1];
                let digits = raw.trim_end_matches(|c: char| !c.is_ascii_digit());
                if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
                    let suffix = &raw[digits.len()..];
                    out.push(format!(
                        "{}{}",
                        self.user_token(digits.parse().unwrap_or(0)),
                        suffix
                    ));
                    i += 2;
                    continue;
                }
            }
            // One-token form: "user15".
            if let Some(rest) = inner.strip_prefix("user") {
                if !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()) {
                    out.push(token.replace(inner, &self.user_token(rest.parse().unwrap_or(0))));
                    i += 1;
                    continue;
                }
            }
            out.push(token.to_string());
            i += 1;
        }
        out.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_are_deterministic_per_salt() {
        let s = Sanitizer::new(42);
        assert_eq!(s.user_token(7), s.user_token(7));
        assert_ne!(s.user_token(7), s.user_token(8));
        // A different salt severs linkage between releases.
        let other = Sanitizer::new(43);
        assert_ne!(s.user_token(7), other.user_token(7));
    }

    #[test]
    fn tokens_do_not_leak_input() {
        let s = Sanitizer::new(1);
        let t = s.user_token(123_456);
        assert!(!t.contains("123456"));
        let p = s.project_token("PRJ042");
        assert!(!p.contains("042"));
    }

    #[test]
    fn scrub_replaces_emails_and_user_refs() {
        let s = Sanitizer::new(9);
        let scrubbed = s.scrub_text("ticket from alice@lab.gov about user42 on node7");
        assert!(!scrubbed.contains("alice@lab.gov"));
        assert!(scrubbed.contains("[email]"));
        assert!(!scrubbed.contains("user42"));
        assert!(scrubbed.contains("node7"), "non-PII tokens survive");
    }

    #[test]
    fn two_token_scrub_keeps_punctuation() {
        let s = Sanitizer::new(3);
        let out = s.scrub_text("blocked user 42, retrying");
        assert!(out.contains(','), "punctuation dropped: {out}");
        assert!(!out.contains("42"));
    }

    #[test]
    fn consistent_pseudonyms_allow_joins() {
        let s = Sanitizer::new(5);
        let a = s.scrub_text("user42 submitted");
        let b = s.scrub_text("user42 failed");
        let ta = a.split(' ').next().unwrap();
        let tb = b.split(' ').next().unwrap();
        assert_eq!(ta, tb, "same user maps to the same token within a release");
    }
}
