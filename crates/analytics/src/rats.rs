//! RATS-Report (Fig. 7): per-program resource usage and burn rates.
//!
//! "Comprehensive insights into usage data such as node-hours on compute
//! resources ... A key feature is its capability to track burn rates for
//! project allocations" (§VII-B).

use oda_pipeline::logical::Query;
use oda_pipeline::ops::{Agg, AggSpec};
use oda_pipeline::Frame;
use oda_storage::colfile::ColumnData;
use oda_telemetry::jobs::{Job, PROGRAMS};
use oda_telemetry::system::SystemModel;
use serde::{Deserialize, Serialize};

/// One program's usage row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramUsage {
    /// Program name ("INCITE", ...).
    pub program: String,
    /// Completed jobs charged to the program.
    pub jobs: u64,
    /// Node-hours consumed.
    pub node_hours: f64,
    /// CPU core-hours (sockets x hours; the Fig. 7 CPU series).
    pub cpu_hours: f64,
    /// GPU-hours (the Fig. 7 GPU series).
    pub gpu_hours: f64,
    /// Yearly node-hour allocation.
    pub allocation_node_hours: f64,
    /// Fraction of the allocation consumed.
    pub burn_rate: f64,
}

/// The compiled report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatsReport {
    /// Per-program rows, in [`PROGRAMS`] order.
    pub rows: Vec<ProgramUsage>,
    /// Total node-hours across programs.
    pub total_node_hours: f64,
}

impl RatsReport {
    /// Compile the report from a job history on `system`.
    ///
    /// `allocation_node_hours` is each program's yearly allocation (one
    /// entry per [`PROGRAMS`] element; missing entries default from the
    /// system's capacity share).
    pub fn compile(jobs: &[Job], system: &SystemModel, allocations: &[f64]) -> RatsReport {
        let mut rows: Vec<ProgramUsage> = PROGRAMS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                // Default allocation: equal share of 60% of yearly capacity.
                let default_alloc =
                    f64::from(system.node_count()) * 8_760.0 * 0.6 / PROGRAMS.len() as f64;
                ProgramUsage {
                    program: (*name).to_string(),
                    jobs: 0,
                    node_hours: 0.0,
                    cpu_hours: 0.0,
                    gpu_hours: 0.0,
                    allocation_node_hours: allocations.get(i).copied().unwrap_or(default_alloc),
                    burn_rate: 0.0,
                }
            })
            .collect();
        // Attribute usage with a planned aggregate over the job log —
        // the same query surface the rest of the stack uses. Programs
        // without jobs keep their zeroed default row.
        let usage = Frame::new(vec![
            (
                "program".into(),
                ColumnData::I64(
                    jobs.iter()
                        .map(|j| (usize::from(j.program) % PROGRAMS.len()) as i64)
                        .collect(),
                ),
            ),
            (
                "node_hours".into(),
                ColumnData::F64(jobs.iter().map(Job::node_hours).collect()),
            ),
        ])
        .expect("usage columns are aligned");
        let per_program = Query::scan(usage)
            .group_by(
                &["program"],
                &[
                    AggSpec::new("node_hours", Agg::Sum, "node_hours"),
                    AggSpec::new("node_hours", Agg::Count, "jobs"),
                ],
            )
            .execute()
            .expect("usage frame is well-typed");
        let programs = per_program.i64s("program").expect("key column");
        let node_hours = per_program.f64s("node_hours").expect("sum column");
        let job_counts = per_program.i64s("jobs").expect("count column");
        for ((&p, &nh), &n) in programs.iter().zip(node_hours).zip(job_counts) {
            let row = &mut rows[p as usize];
            row.jobs = n as u64;
            row.node_hours = nh;
            row.cpu_hours = nh * f64::from(system.cpus_per_node);
            row.gpu_hours = nh * f64::from(system.gpus_per_node);
        }
        for row in &mut rows {
            row.burn_rate = if row.allocation_node_hours > 0.0 {
                row.node_hours / row.allocation_node_hours
            } else {
                0.0
            };
        }
        let total_node_hours = rows.iter().map(|r| r.node_hours).sum();
        RatsReport {
            rows,
            total_node_hours,
        }
    }

    /// Render as an aligned text table (what the dashboard displays).
    pub fn to_table(&self) -> String {
        let mut out =
            String::from("program   jobs   node-hours     cpu-hours     gpu-hours   burn\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<8} {:>5} {:>12.1} {:>13.1} {:>13.1} {:>5.1}%\n",
                r.program,
                r.jobs,
                r.node_hours,
                r.cpu_hours,
                r.gpu_hours,
                r.burn_rate * 100.0
            ));
        }
        out.push_str(&format!("total node-hours: {:.1}\n", self.total_node_hours));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oda_telemetry::jobs::ApplicationArchetype;

    fn job(program: u8, nodes: usize, hours: f64) -> Job {
        Job {
            id: 1,
            user: 0,
            project: "PRJ000".into(),
            program,
            archetype: ApplicationArchetype::MolecularDynamics,
            nodes: (0..nodes as u32).collect(),
            submit_ms: 0,
            start_ms: 0,
            end_ms: (hours * 3_600_000.0) as i64,
            phase: 0.0,
        }
    }

    #[test]
    fn usage_attributed_to_programs() {
        let sys = SystemModel::compass();
        let jobs = vec![job(0, 10, 2.0), job(0, 5, 1.0), job(3, 100, 10.0)];
        let r = RatsReport::compile(&jobs, &sys, &[]);
        assert_eq!(r.rows[0].jobs, 2);
        assert!((r.rows[0].node_hours - 25.0).abs() < 1e-9);
        assert_eq!(r.rows[3].jobs, 1);
        assert!((r.rows[3].node_hours - 1_000.0).abs() < 1e-9);
        assert!((r.total_node_hours - 1_025.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_gpu_split_uses_topology() {
        let sys = SystemModel::compass(); // 1 CPU, 8 GPUs per node
        let r = RatsReport::compile(&[job(0, 10, 1.0)], &sys, &[]);
        assert!((r.rows[0].cpu_hours - 10.0).abs() < 1e-9);
        assert!((r.rows[0].gpu_hours - 80.0).abs() < 1e-9);
        // GPU-hours dominate on a GPU-dense machine — the Fig. 7 shape.
        assert!(r.rows[0].gpu_hours > r.rows[0].cpu_hours);
    }

    #[test]
    fn burn_rate_against_allocation() {
        let sys = SystemModel::tiny();
        let mut allocs = vec![0.0; 8];
        allocs[0] = 100.0;
        let r = RatsReport::compile(&[job(0, 10, 5.0)], &sys, &allocs);
        assert!((r.rows[0].burn_rate - 0.5).abs() < 1e-9);
    }

    #[test]
    fn table_renders_every_program() {
        let sys = SystemModel::tiny();
        let table = RatsReport::compile(&[], &sys, &[]).to_table();
        for p in PROGRAMS {
            assert!(table.contains(p), "missing {p}");
        }
    }
}
