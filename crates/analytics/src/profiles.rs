//! Contextualized job power profiles.
//!
//! The paper's LVA is enabled by "a specialized data refinement pipeline
//! that delivers contextualized job power profiles" (§VII-B). This
//! module performs that contextualization: Silver long rows
//! (window, node, sensor, mean) are joined against job allocations in
//! time and space, then reduced to one power-vs-time series per job.

use oda_pipeline::Frame;
use oda_telemetry::jobs::Job;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// One job's power-vs-time series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPowerProfile {
    /// Job id.
    pub job_id: u64,
    /// Ground-truth archetype label (for classifier experiments).
    pub archetype: String,
    /// Allocation program index.
    pub program: u8,
    /// Owning user.
    pub user: u32,
    /// Nodes allocated.
    pub nodes: usize,
    /// First window start (ms).
    pub start_ms: i64,
    /// Aggregation window width (ms).
    pub window_ms: i64,
    /// Mean per-node power per window, in window order (gaps are NaN).
    pub samples: Vec<f64>,
}

impl JobPowerProfile {
    /// Mean of non-NaN samples.
    pub fn mean_w(&self) -> f64 {
        let (sum, n) = self
            .samples
            .iter()
            .filter(|v| !v.is_nan())
            .fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
        if n == 0 {
            f64::NAN
        } else {
            sum / n as f64
        }
    }

    /// Peak non-NaN sample.
    pub fn peak_w(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .filter(|v| !v.is_nan())
            .fold(f64::NAN, f64::max)
    }

    /// Covered duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64 * self.window_ms as f64 / 1_000.0
    }

    /// Whole-job energy in kWh (mean node power x nodes x duration).
    pub fn energy_kwh(&self) -> f64 {
        let mean = self.mean_w();
        if mean.is_nan() {
            return 0.0;
        }
        mean * self.nodes as f64 * self.duration_s() / 3.6e6
    }

    /// End of the last window (ms).
    pub fn end_ms(&self) -> i64 {
        self.start_ms + self.samples.len() as i64 * self.window_ms
    }
}

/// Extract per-job power profiles from Silver long rows.
///
/// `silver` must have columns `window` (I64), `node` (I64), `sensor`
/// (Dict or Str — read through `Frame::cat`), `mean` (F64) — the output
/// of the streaming Bronze→Silver transform. Only `node_power_w` rows
/// participate.
pub fn extract_profiles(
    silver: &Frame,
    jobs: &[Job],
    window_ms: i64,
) -> Result<Vec<JobPowerProfile>, oda_pipeline::PipelineError> {
    let windows = silver.i64s("window")?;
    let nodes = silver.i64s("node")?;
    let sensors = silver.cat("sensor")?;
    let means = silver.f64s("mean")?;

    // node -> [(start, end, job index)], sorted by start.
    let mut node_jobs: HashMap<u32, Vec<(i64, i64, usize)>> = HashMap::new();
    for (ji, job) in jobs.iter().enumerate() {
        for &n in &job.nodes {
            node_jobs
                .entry(n)
                .or_default()
                .push((job.start_ms, job.end_ms, ji));
        }
    }
    for intervals in node_jobs.values_mut() {
        intervals.sort_unstable();
    }

    // (job index, window) -> (sum, count) of node means.
    let mut cells: HashMap<(usize, i64), (f64, u64)> = HashMap::new();
    for i in 0..silver.rows() {
        if sensors.get(i) != "node_power_w" || means[i].is_nan() {
            continue;
        }
        let node = nodes[i] as u32;
        let w = windows[i];
        let Some(intervals) = node_jobs.get(&node) else {
            continue;
        };
        // Window belongs to the job covering its start.
        let Some(&(_, _, ji)) = intervals.iter().find(|&&(s, e, _)| w >= s && w < e) else {
            continue;
        };
        let cell = cells.entry((ji, w)).or_insert((0.0, 0));
        cell.0 += means[i];
        cell.1 += 1;
    }

    // Per job: dense window series from first to last observed window.
    let mut per_job: HashMap<usize, BTreeMap<i64, f64>> = HashMap::new();
    for ((ji, w), (sum, n)) in cells {
        per_job.entry(ji).or_default().insert(w, sum / n as f64);
    }

    let mut out = Vec::with_capacity(per_job.len());
    for (ji, series) in per_job {
        let job = &jobs[ji];
        let (&first, _) = series.first_key_value().expect("non-empty series");
        let (&last, _) = series.last_key_value().expect("non-empty series");
        let len = ((last - first) / window_ms + 1) as usize;
        let mut samples = vec![f64::NAN; len];
        for (w, v) in series {
            samples[((w - first) / window_ms) as usize] = v;
        }
        out.push(JobPowerProfile {
            job_id: job.id,
            archetype: job.archetype.label().to_string(),
            program: job.program,
            user: job.user,
            nodes: job.nodes.len(),
            start_ms: first,
            window_ms,
            samples,
        });
    }
    out.sort_by_key(|p| p.job_id);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use oda_storage::colfile::ColumnData;
    use oda_telemetry::jobs::ApplicationArchetype;

    fn job(id: u64, nodes: Vec<u32>, start: i64, end: i64) -> Job {
        Job {
            id,
            user: 1,
            project: "PRJ000".into(),
            program: 0,
            archetype: ApplicationArchetype::MolecularDynamics,
            nodes,
            submit_ms: start,
            start_ms: start,
            end_ms: end,
            phase: 0.0,
        }
    }

    fn silver(rows: &[(i64, i64, &str, f64)]) -> Frame {
        Frame::new(vec![
            (
                "window".into(),
                ColumnData::I64(rows.iter().map(|r| r.0).collect()),
            ),
            (
                "node".into(),
                ColumnData::I64(rows.iter().map(|r| r.1).collect()),
            ),
            (
                "sensor".into(),
                ColumnData::Str(rows.iter().map(|r| r.2.to_string()).collect()),
            ),
            (
                "mean".into(),
                ColumnData::F64(rows.iter().map(|r| r.3).collect()),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn profile_averages_over_job_nodes() {
        let jobs = vec![job(5, vec![0, 1], 0, 30_000)];
        let f = silver(&[
            (0, 0, "node_power_w", 100.0),
            (0, 1, "node_power_w", 200.0),
            (15_000, 0, "node_power_w", 110.0),
            (15_000, 1, "node_power_w", 210.0),
            (0, 0, "node_inlet_temp_c", 21.0), // ignored
        ]);
        let profiles = extract_profiles(&f, &jobs, 15_000).unwrap();
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.job_id, 5);
        assert_eq!(p.samples, vec![150.0, 160.0]);
        assert_eq!(p.nodes, 2);
        assert!((p.mean_w() - 155.0).abs() < 1e-9);
        assert_eq!(p.peak_w(), 160.0);
    }

    #[test]
    fn windows_outside_job_are_excluded() {
        let jobs = vec![job(1, vec![0], 15_000, 30_000)];
        let f = silver(&[
            (0, 0, "node_power_w", 999.0),      // before job
            (15_000, 0, "node_power_w", 100.0), // in job
            (30_000, 0, "node_power_w", 999.0), // after job
        ]);
        let profiles = extract_profiles(&f, &jobs, 15_000).unwrap();
        assert_eq!(profiles[0].samples, vec![100.0]);
    }

    #[test]
    fn gaps_become_nan() {
        let jobs = vec![job(1, vec![0], 0, 60_000)];
        let f = silver(&[
            (0, 0, "node_power_w", 100.0),
            (45_000, 0, "node_power_w", 130.0),
        ]);
        let profiles = extract_profiles(&f, &jobs, 15_000).unwrap();
        let p = &profiles[0];
        assert_eq!(p.samples.len(), 4);
        assert!(p.samples[1].is_nan() && p.samples[2].is_nan());
        assert!((p.mean_w() - 115.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_jobs_separated() {
        let jobs = vec![job(1, vec![0], 0, 30_000), job(2, vec![1], 0, 30_000)];
        let f = silver(&[(0, 0, "node_power_w", 100.0), (0, 1, "node_power_w", 500.0)]);
        let profiles = extract_profiles(&f, &jobs, 15_000).unwrap();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].samples, vec![100.0]);
        assert_eq!(profiles[1].samples, vec![500.0]);
    }

    #[test]
    fn sequential_jobs_on_same_node() {
        let jobs = vec![job(1, vec![0], 0, 15_000), job(2, vec![0], 15_000, 30_000)];
        let f = silver(&[
            (0, 0, "node_power_w", 100.0),
            (15_000, 0, "node_power_w", 200.0),
        ]);
        let profiles = extract_profiles(&f, &jobs, 15_000).unwrap();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].samples, vec![100.0]);
        assert_eq!(profiles[1].samples, vec![200.0]);
    }

    #[test]
    fn energy_accounting() {
        let p = JobPowerProfile {
            job_id: 1,
            archetype: "hpl".into(),
            program: 0,
            user: 0,
            nodes: 100,
            start_ms: 0,
            window_ms: 15_000,
            samples: vec![1_000.0; 240], // 1 kW x 1 hour
        };
        // 1kW x 100 nodes x 1h = 100 kWh.
        assert!((p.energy_kwh() - 100.0).abs() < 1e-6);
        assert_eq!(p.duration_s(), 3_600.0);
        assert_eq!(p.end_ms(), 3_600_000);
    }
}
