//! Typed fixed-width group/join keys.
//!
//! Group-by, pivot, and the hash joins used to key rows by rendering
//! every key column to text and concatenating the pieces — one `String`
//! allocation plus several `to_string` calls per row. A [`RowKey`] is
//! the same identity as raw `u64` words: `i64` bits, `f64` bits
//! (`to_bits`, so NaN patterns group deterministically), and dictionary
//! codes for categorical columns. Keys of up to three columns are
//! stored inline; wider keys spill to one boxed slice.

use crate::frame::Frame;
use oda_storage::colfile::ColumnData;
use oda_storage::intern::StringInterner;

/// One row's group/join identity: a fixed-width sequence of `u64`
/// words, one per key column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) enum RowKey {
    /// Single-column key.
    One(u64),
    /// Two-column key.
    Two([u64; 2]),
    /// Three-column key (window, node, sensor — the Silver group-by).
    Three([u64; 3]),
    /// Wider keys.
    Many(Box<[u64]>),
}

/// Per-column key material. Numeric columns are borrowed directly;
/// categorical columns contribute dictionary codes — borrowed for
/// `Dict` columns, interned in one pass for `Str` columns.
enum KeyPart<'a> {
    I64(&'a [i64]),
    F64(&'a [f64]),
    Codes(&'a [u32]),
    Owned(Vec<u32>),
}

impl KeyPart<'_> {
    #[inline]
    fn word(&self, row: usize) -> u64 {
        match self {
            KeyPart::I64(v) => v[row] as u64,
            KeyPart::F64(v) => v[row].to_bits(),
            KeyPart::Codes(v) => u64::from(v[row]),
            KeyPart::Owned(v) => u64::from(v[row]),
        }
    }
}

/// Key extractor over a fixed set of key columns.
pub(crate) struct KeyCols<'a> {
    parts: Vec<KeyPart<'a>>,
}

impl<'a> KeyCols<'a> {
    /// Keys over one frame's columns (group-by / pivot). Each `Str`
    /// column is interned once up front; every other type is borrowed.
    pub(crate) fn of(frame: &'a Frame, cols: &[usize]) -> KeyCols<'a> {
        let parts = cols
            .iter()
            .map(|&c| match frame.column_at(c) {
                ColumnData::I64(v) => KeyPart::I64(v),
                ColumnData::F64(v) => KeyPart::F64(v),
                ColumnData::Dict { codes, .. } => KeyPart::Codes(codes),
                ColumnData::Str(v) => {
                    let mut interner = StringInterner::new();
                    KeyPart::Owned(v.iter().map(|s| interner.intern(s)).collect())
                }
            })
            .collect();
        KeyCols { parts }
    }

    /// The key of `row`.
    #[inline]
    pub(crate) fn key(&self, row: usize) -> RowKey {
        match self.parts.as_slice() {
            [a] => RowKey::One(a.word(row)),
            [a, b] => RowKey::Two([a.word(row), b.word(row)]),
            [a, b, c] => RowKey::Three([a.word(row), b.word(row), c.word(row)]),
            parts => RowKey::Many(parts.iter().map(|p| p.word(row)).collect()),
        }
    }
}

/// Key extractors for a hash join: the two sides must agree on what a
/// word means, so categorical join columns share one interner per
/// column pair, and mismatched-type pairs fall back to interning the
/// legacy textual rendering (preserving the old string-key semantics).
pub(crate) fn join_keys<'a>(
    left: &'a Frame,
    l_cols: &[usize],
    right: &'a Frame,
    r_cols: &[usize],
) -> (KeyCols<'a>, KeyCols<'a>) {
    let mut l_parts = Vec::with_capacity(l_cols.len());
    let mut r_parts = Vec::with_capacity(r_cols.len());
    for (&lc, &rc) in l_cols.iter().zip(r_cols) {
        let (lp, rp) = match (left.column_at(lc), right.column_at(rc)) {
            (ColumnData::I64(a), ColumnData::I64(b)) => (KeyPart::I64(a), KeyPart::I64(b)),
            (ColumnData::F64(a), ColumnData::F64(b)) => (KeyPart::F64(a), KeyPart::F64(b)),
            (a, b) if is_str_like(a) && is_str_like(b) => {
                let mut shared = StringInterner::new();
                (shared_codes(a, &mut shared), shared_codes(b, &mut shared))
            }
            (a, b) => {
                let mut shared = StringInterner::new();
                (
                    rendered_codes(a, &mut shared),
                    rendered_codes(b, &mut shared),
                )
            }
        };
        l_parts.push(lp);
        r_parts.push(rp);
    }
    (KeyCols { parts: l_parts }, KeyCols { parts: r_parts })
}

fn is_str_like(col: &ColumnData) -> bool {
    matches!(col, ColumnData::Str(_) | ColumnData::Dict { .. })
}

/// Codes for a categorical column through a shared interner. A `Dict`
/// column remaps its dictionary once (`dict.len()` hashes) instead of
/// hashing per row.
fn shared_codes<'a>(col: &ColumnData, shared: &mut StringInterner) -> KeyPart<'a> {
    match col {
        ColumnData::Str(v) => KeyPart::Owned(v.iter().map(|s| shared.intern(s)).collect()),
        ColumnData::Dict { dict, codes } => {
            let remap: Vec<u32> = dict.iter().map(|e| shared.intern(e)).collect();
            KeyPart::Owned(codes.iter().map(|&c| remap[c as usize]).collect())
        }
        _ => unreachable!("shared_codes is only called for string-like columns"),
    }
}

/// Legacy textual identity for mixed-type join keys: i64 as decimal,
/// f64 as decimal bits, strings verbatim — exactly what the old
/// concatenated string keys compared.
fn rendered_codes<'a>(col: &ColumnData, shared: &mut StringInterner) -> KeyPart<'a> {
    let codes = match col {
        ColumnData::I64(v) => v.iter().map(|x| shared.intern(&x.to_string())).collect(),
        ColumnData::F64(v) => v
            .iter()
            .map(|x| shared.intern(&x.to_bits().to_string()))
            .collect(),
        ColumnData::Str(v) => v.iter().map(|s| shared.intern(s)).collect(),
        ColumnData::Dict { dict, codes } => {
            let remap: Vec<u32> = dict.iter().map(|e| shared.intern(e)).collect();
            codes.iter().map(|&c| remap[c as usize]).collect()
        }
    };
    KeyPart::Owned(codes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn frame() -> Frame {
        Frame::new(vec![
            ("i".into(), ColumnData::I64(vec![1, 1, 2, 2].into())),
            (
                "f".into(),
                ColumnData::F64(vec![0.5, f64::NAN, 0.5, f64::NAN].into()),
            ),
            (
                "s".into(),
                ColumnData::Str(vec!["a".into(), "a".into(), "b".into(), "a".into()].into()),
            ),
            (
                "d".into(),
                ColumnData::dict(vec!["x".into(), "y".into()], vec![0, 1, 0, 1]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn keys_distinguish_rows_per_column_type() {
        let f = frame();
        for col in 0..4 {
            let kc = KeyCols::of(&f, &[col]);
            let keys: Vec<RowKey> = (0..4).map(|r| kc.key(r)).collect();
            // Column-specific expected group structure.
            let expected: Vec<Vec<usize>> = match col {
                0 => vec![vec![0, 1], vec![2, 3]],
                1 => vec![vec![0, 2], vec![1, 3]], // NaN groups with NaN
                2 => vec![vec![0, 1, 3], vec![2]],
                _ => vec![vec![0, 2], vec![1, 3]],
            };
            for group in expected {
                let first = &keys[group[0]];
                for &r in &group {
                    assert_eq!(&keys[r], first, "col {col}: rows must share a key");
                }
                for (r, key) in keys.iter().enumerate() {
                    if !group.contains(&r) {
                        assert_ne!(key, first, "col {col}: row {r} must differ");
                    }
                }
            }
        }
    }

    #[test]
    fn nan_rows_group_deterministically() {
        // The regression the RowKey change must preserve: grouping by an
        // f64 column with NaN entries (Missing-quality fills) puts all
        // same-bit NaNs in one stable group instead of one group per row.
        let f = Frame::new(vec![(
            "v".into(),
            ColumnData::F64(vec![f64::NAN, 1.0, f64::NAN, 1.0, f64::NAN].into()),
        )])
        .unwrap();
        let kc = KeyCols::of(&f, &[0]);
        let distinct: HashSet<RowKey> = (0..5).map(|r| kc.key(r)).collect();
        assert_eq!(
            distinct.len(),
            2,
            "NaN must be a single deterministic group"
        );
        assert_eq!(kc.key(0), kc.key(2));
        assert_eq!(kc.key(0), kc.key(4));
        assert_ne!(kc.key(0), kc.key(1));
    }

    #[test]
    fn join_keys_agree_across_representations() {
        // Left stores the key as Str, right as Dict with a different
        // code layout: equal strings must produce equal keys.
        let left = Frame::new(vec![(
            "k".into(),
            ColumnData::Str(vec!["b".into(), "a".into(), "c".into()].into()),
        )])
        .unwrap();
        let right = Frame::new(vec![(
            "k".into(),
            ColumnData::dict(vec!["a".into(), "b".into()], vec![0, 1]),
        )])
        .unwrap();
        let (lk, rk) = join_keys(&left, &[0], &right, &[0]);
        assert_eq!(lk.key(0), rk.key(1), "b == b");
        assert_eq!(lk.key(1), rk.key(0), "a == a");
        assert_ne!(lk.key(2), rk.key(0));
        assert_ne!(lk.key(2), rk.key(1));
    }

    #[test]
    fn wide_keys_spill_to_many() {
        let f = frame();
        let kc = KeyCols::of(&f, &[0, 1, 2, 3]);
        assert!(matches!(kc.key(0), RowKey::Many(_)));
        assert_eq!(kc.key(0), kc.key(0));
        assert_ne!(kc.key(0), kc.key(1));
    }
}
