//! Offline stand-in for `criterion`.
//!
//! Provides the API surface this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_batched` /
//! `iter_batched_ref`, throughput annotation — with a lightweight
//! wall-clock runner: a warm-up pass, then a handful of timed samples,
//! reporting the fastest (least-noisy) one. No statistics, plots, or
//! baselines; good enough to smoke the benches and print rough numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many timed samples the runner takes per benchmark.
const SAMPLES: u32 = 5;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration input regeneration size hint; ignored by the runner.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Work-per-iteration annotation, echoed as a rate in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Benchmark identifier: function name plus a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Allows `bench_function("name", ..)` and `bench_function(id, ..)`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl<S: AsRef<str>> IntoBenchmarkId for S {
    fn into_benchmark_id(self) -> String {
        self.as_ref().to_string()
    }
}

/// Timing harness handed to the bench closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    fn run(mut routine: impl FnMut(&mut Bencher)) -> Bencher {
        // Warm-up pass, then keep the fastest of a few samples.
        let mut best: Option<Bencher> = None;
        for _ in 0..=SAMPLES {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            routine(&mut b);
            let replace = match &best {
                Some(prev) => b.per_iter() < prev.per_iter(),
                None => true,
            };
            if replace {
                best = Some(b);
            }
        }
        best.expect("at least one sample")
    }

    fn per_iter(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters as u32
        }
    }

    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }

    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut input = setup();
        let start = Instant::now();
        black_box(routine(&mut input));
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per = b.per_iter();
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let mut line = format!("{name:<60} {:>12.3?}/iter", per);
    if let Some(tp) = throughput {
        let secs = per.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:>12.0} elem/s", n as f64 / secs));
            }
            Throughput::Bytes(n) | Throughput::BytesDecimal(n) => {
                line.push_str(&format!(
                    "  {:>12.1} MiB/s",
                    n as f64 / secs / (1 << 20) as f64
                ));
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let b = Bencher::run(routine);
        report(&self.name, &id.into_benchmark_id(), &b, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let b = Bencher::run(|b| routine(b, input));
        report(&self.name, &id.into_benchmark_id(), &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let b = Bencher::run(routine);
        report("", &id.into_benchmark_id(), &b, None);
        self
    }
}

/// Collects bench functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point for `harness = false` bench binaries.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        // Warm-up + SAMPLES timed passes.
        assert_eq!(calls, SAMPLES + 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(100));
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter_batched(|| vec![x; 4], |v| v.len(), BatchSize::SmallInput)
        });
        group.bench_with_input(BenchmarkId::new("batched_ref", 1), &1u8, |b, _| {
            b.iter_batched_ref(|| vec![0u8; 8], |v| v.push(1), BatchSize::LargeInput)
        });
        group.finish();
    }
}
