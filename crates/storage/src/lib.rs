//! # oda-storage — tiered data services (LAKE / OCEAN / GLACIER)
//!
//! From-scratch implementations of the storage roles in the paper's
//! Fig. 5 architecture:
//!
//! * [`compress`] — an LZ-family block codec (the compression layer that
//!   Parquet gets from Snappy/Zstd in the paper's stack).
//! * [`encoding`] — columnar encodings: plain, run-length, delta-varint,
//!   and dictionary.
//! * [`colfile`] — a column-oriented table file format with row groups,
//!   per-chunk min/max statistics for predicate pushdown, and a footer —
//!   the Parquet analogue that gives "significant data compression and
//!   minimal I/O footprint" (§V-B).
//! * [`index`] — persisted secondary (inverted) indexes over
//!   categorical colfile columns (`value → chunk/row bitmap`), the
//!   "indexed, low-latency lookup" role Druid/Elastic play in the
//!   paper's stack.
//! * [`intern`] — string interning backing the in-memory
//!   dictionary-encoded (`Dict`) categorical columns.
//! * [`ocean`] — an object store with appendable datasets (the
//!   MinIO + ever-appended-Parquet OCEAN service).
//! * [`lake`] — a time-partitioned online segment store for real-time
//!   queries (the Druid/Elastic LAKE service).
//! * [`glacier`] — sealed compressed archives with modeled recall
//!   latency (the tape GLACIER service).
//! * [`tiering`] — the lifecycle manager applying class-specific
//!   retention across the tiers.

pub mod buffer;
pub mod colfile;
pub mod compress;
pub mod encoding;
pub mod error;
pub mod glacier;
pub mod index;
pub mod intern;
pub mod lake;
pub mod metrics;
pub mod ocean;
pub mod tiering;

pub use buffer::{buffer_stats, Buffer};
pub use colfile::{ColumnData, ColumnType, LazyTable, TableFile, TableSchema};
pub use error::StorageError;
pub use glacier::Glacier;
pub use index::{ColumnIndex, RowBitmap};
pub use intern::StringInterner;
pub use lake::{Lake, LakePlan};
pub use metrics::{BufferMetrics, LakeMetrics, OceanMetrics, TierMetrics};
pub use ocean::Ocean;
pub use tiering::{DataClass, LifecycleAction, Tier, TierManager};
