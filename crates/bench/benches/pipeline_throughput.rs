//! Pipeline throughput across executor worker counts, plus the Silver
//! pivot with and without dictionary-encoded categoricals.
//!
//! Section 1 drives the full streaming Bronze -> Silver query (fetch +
//! decode + quality filter in the partition-parallel stage, then the
//! ordered merge and the stateful window transform) over a synthetic
//! telemetry day and reports records/sec at each requested worker
//! count. Section 2 runs the batch Silver core (quality filter → window
//! → group-by → pivot) over the same Bronze content built two ways —
//! dictionary-encoded categorical columns versus the materialized
//! per-row `String` baseline — and reports the speedup. Results land in
//! `BENCH_pipeline.json` in the invocation directory so CI can upload
//! them as an artifact. (The committed root `BENCH_pipeline.json` is
//! owned by the `perf_trajectory` bench; this one writes its per-run
//! report to `BENCH_pipeline_run.json` so the two never collide.)
//!
//! Hand-rolled harness (not criterion): each configuration is one
//! end-to-end run over identical input, timed wall-clock, and the bench
//! asserts the outputs agree across configurations — a throughput
//! number for a wrong answer is worthless.
//!
//! Flags (unknown flags, e.g. criterion's `--bench`, are ignored):
//! * `--test`            smoke mode: tiny workload, workers 1 and 2
//! * `--workers 1,4`     comma-separated worker counts (default 1,2,4,8)
//! * `--batches N`       broker batches to generate (default 5760, one
//!   simulated day at 15 s ticks)
//! * `--pivot-rows N`    bronze rows for the Silver-pivot comparison
//!   (default 1_000_000; smoke mode caps at 20_000)
//! * `--out PATH`        output path (default BENCH_pipeline_run.json)

use bytes::Bytes;
use serde::Serialize;

use oda_bench::{bronze_frame_str, tiny_observations};
use oda_pipeline::checkpoint::CheckpointStore;
use oda_pipeline::frame_io::frame_to_colfile;
use oda_pipeline::medallion::{
    bronze_frame, observation_decoder, quality_filter_map, streaming_silver_transform,
};
use oda_pipeline::ops::{Agg, AggSpec};
use oda_pipeline::streaming::{MemorySink, StreamingQuery};
use oda_pipeline::{Expr, PipelinePlan, Stage};
use oda_stream::{Broker, Consumer, RetentionPolicy};
use oda_telemetry::record::Observation;
use oda_telemetry::system::SystemModel;
use oda_telemetry::{SensorCatalog, TelemetryGenerator};
use std::sync::Arc;
use std::time::Instant;

const TOPIC: &str = "bronze";
const PARTITIONS: u32 = 8;
const MAX_RECORDS: usize = 64;

struct Config {
    workers: Vec<usize>,
    batches: usize,
    pivot_rows: usize,
    out: String,
    smoke: bool,
}

#[derive(Serialize)]
struct RunEntry {
    workers: usize,
    elapsed_s: f64,
    records: usize,
    records_per_sec: f64,
    rows: usize,
    rows_per_sec: f64,
    silver_rows: usize,
    speedup_vs_baseline: f64,
}

#[derive(Serialize)]
struct PivotEntry {
    representation: String,
    bronze_build_s: f64,
    plan_s: f64,
    total_s: f64,
    rows_per_sec: f64,
}

#[derive(Serialize)]
struct SilverPivotReport {
    bronze_rows: usize,
    silver_rows: usize,
    runs: Vec<PivotEntry>,
    dict_speedup_vs_str: f64,
}

#[derive(Serialize)]
struct Report {
    benchmark: String,
    topic: String,
    partitions: u32,
    batches: usize,
    observation_rows: usize,
    max_records: usize,
    available_parallelism: usize,
    smoke: bool,
    baseline_workers: usize,
    runs: Vec<RunEntry>,
    silver_pivot: SilverPivotReport,
}

fn parse_args() -> Config {
    let mut config = Config {
        workers: vec![1, 2, 4, 8],
        batches: 5_760,
        pivot_rows: 1_000_000,
        out: "BENCH_pipeline_run.json".to_string(),
        smoke: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--test" => config.smoke = true,
            "--workers" if i + 1 < args.len() => {
                i += 1;
                config.workers = args[i]
                    .split(',')
                    .map(|w| w.trim().parse().expect("--workers takes e.g. 1,4"))
                    .collect();
            }
            "--batches" if i + 1 < args.len() => {
                i += 1;
                config.batches = args[i].parse().expect("--batches takes an integer");
            }
            "--pivot-rows" if i + 1 < args.len() => {
                i += 1;
                config.pivot_rows = args[i].parse().expect("--pivot-rows takes an integer");
            }
            "--out" if i + 1 < args.len() => {
                i += 1;
                config.out = args[i].clone();
            }
            _ => {} // ignore harness flags cargo bench forwards
        }
        i += 1;
    }
    if config.smoke {
        config.batches = config.batches.min(64);
        config.workers = vec![1, 2];
        config.pivot_rows = config.pivot_rows.min(20_000);
    }
    assert!(
        config.workers.iter().all(|&w| w >= 1),
        "worker counts must be >= 1"
    );
    config
}

/// The same broker contents for every worker count: keyless produce so
/// records round-robin across all partitions.
fn seeded_broker(batches: usize) -> (Arc<Broker>, SensorCatalog, usize) {
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 42);
    let broker = Broker::new();
    broker
        .create_topic(TOPIC, PARTITIONS, RetentionPolicy::unbounded())
        .unwrap();
    let mut rows = 0usize;
    for _ in 0..batches {
        let batch = generator.next_batch();
        rows += batch.observations.len();
        let payload = Observation::encode_batch(&batch.observations);
        broker
            .produce(TOPIC, batch.ts_ms, None, Bytes::from(payload))
            .unwrap();
    }
    (broker, generator.catalog().clone(), rows)
}

struct RunResult {
    workers: usize,
    elapsed_s: f64,
    silver_rows: usize,
    output: Vec<u8>,
}

fn run(broker: &Arc<Broker>, catalog: &SensorCatalog, workers: usize) -> RunResult {
    let consumer =
        Consumer::subscribe(broker.clone(), &format!("bench-w{workers}"), TOPIC).unwrap();
    let mut query = StreamingQuery::builder()
        .source(consumer)
        .decoder(observation_decoder(catalog.clone()))
        .map_partitions(quality_filter_map())
        .transform(streaming_silver_transform(15_000, 0))
        .checkpoints(CheckpointStore::new())
        .max_records(MAX_RECORDS)
        .workers(workers)
        .build()
        .unwrap();
    let mut sink = MemorySink::new();
    let start = Instant::now();
    query.run_to_completion(&mut sink).unwrap();
    let elapsed_s = start.elapsed().as_secs_f64();
    let silver = sink.concat().unwrap();
    RunResult {
        workers,
        elapsed_s,
        silver_rows: silver.rows(),
        output: frame_to_colfile(&silver).unwrap(),
    }
}

/// The batch Silver core of Fig. 4-b without the job-context join (the
/// join keys on I64 `node`, so it costs the same in both arms and would
/// only dilute the categorical-representation comparison).
fn silver_core_plan() -> PipelinePlan {
    PipelinePlan::new()
        .then(Stage::Where(
            Expr::col("quality")
                .eq_(Expr::LitI(0))
                .and(Expr::col("value").is_nan().not()),
        ))
        .then(Stage::Window {
            ts_col: "ts_ms".into(),
            width_ms: 15_000,
        })
        .then(Stage::GroupBy {
            keys: vec!["window".into(), "node".into(), "sensor".into()],
            aggs: vec![AggSpec::new("value", Agg::Mean, "value")],
        })
        .then(Stage::Pivot {
            index: vec!["window".into(), "node".into()],
            pivot_col: "sensor".into(),
            value_col: "value".into(),
            agg: Agg::Mean,
        })
}

/// Bronze build + Silver pivot over the same observations, once per
/// categorical representation: dictionary-encoded (`bronze_frame`)
/// versus the materialized per-row `String` baseline kept in
/// `oda_bench::bronze_frame_str`. The two Silver products must be
/// logically equal before the speedup means anything.
fn silver_pivot(rows: usize) -> SilverPivotReport {
    let (catalog, mut obs) = tiny_observations(42, rows / 30 + 2);
    assert!(
        obs.len() >= rows,
        "generated {} < requested {rows}",
        obs.len()
    );
    obs.truncate(rows);

    // Str baseline first so allocator warm-up, if anything, favors it.
    let start = Instant::now();
    let bronze_str = bronze_frame_str(&obs, &catalog);
    let build_str = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let silver_str = silver_core_plan().execute(bronze_str).unwrap();
    let plan_str = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let bronze_dict = bronze_frame(&obs, &catalog);
    let build_dict = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let silver_dict = silver_core_plan().execute(bronze_dict).unwrap();
    let plan_dict = start.elapsed().as_secs_f64();

    // The wide silver is all-numeric (pivot drops `sensor`), so colfile
    // bytes are an exact equality check — Frame's F64 PartialEq is IEEE
    // and the pivot's NaN gap fills would never compare equal.
    assert_eq!(
        frame_to_colfile(&silver_dict).unwrap(),
        frame_to_colfile(&silver_str).unwrap(),
        "silver diverged between dict and str bronze"
    );

    let entry = |representation: &str, build_s: f64, plan_s: f64| PivotEntry {
        representation: representation.to_string(),
        bronze_build_s: build_s,
        plan_s,
        total_s: build_s + plan_s,
        rows_per_sec: rows as f64 / (build_s + plan_s),
    };
    SilverPivotReport {
        bronze_rows: rows,
        silver_rows: silver_dict.rows(),
        runs: vec![
            entry("dict", build_dict, plan_dict),
            entry("str", build_str, plan_str),
        ],
        dict_speedup_vs_str: (build_str + plan_str) / (build_dict + plan_dict),
    }
}

fn main() {
    let config = parse_args();
    let (broker, catalog, rows) = seeded_broker(config.batches);
    println!(
        "pipeline_throughput: {} batches ({} observation rows) across {} partitions, max_records {}",
        config.batches, rows, PARTITIONS, MAX_RECORDS
    );

    let results: Vec<RunResult> = config
        .workers
        .iter()
        .map(|&w| run(&broker, &catalog, w))
        .collect();

    // Worker count must be invisible in the output before any number
    // here means anything.
    for r in &results[1..] {
        assert_eq!(
            r.output, results[0].output,
            "silver diverged between workers={} and workers={}",
            results[0].workers, r.workers
        );
    }

    let base = results
        .iter()
        .find(|r| r.workers == 1)
        .unwrap_or(&results[0]);
    let mut entries = Vec::new();
    println!(
        "{:>8} {:>10} {:>14} {:>14} {:>9}",
        "workers", "elapsed_s", "records/sec", "rows/sec", "speedup"
    );
    for r in &results {
        let records_per_sec = config.batches as f64 / r.elapsed_s;
        let rows_per_sec = rows as f64 / r.elapsed_s;
        let speedup = base.elapsed_s / r.elapsed_s;
        println!(
            "{:>8} {:>10.3} {:>14.0} {:>14.0} {:>8.2}x",
            r.workers, r.elapsed_s, records_per_sec, rows_per_sec, speedup
        );
        entries.push(RunEntry {
            workers: r.workers,
            elapsed_s: r.elapsed_s,
            records: config.batches,
            records_per_sec,
            rows,
            rows_per_sec,
            silver_rows: r.silver_rows,
            speedup_vs_baseline: speedup,
        });
    }

    println!(
        "silver_pivot: {} bronze rows per categorical representation",
        config.pivot_rows
    );
    let pivot = silver_pivot(config.pivot_rows);
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>14}",
        "repr", "build_s", "plan_s", "total_s", "rows/sec"
    );
    for r in &pivot.runs {
        println!(
            "{:>8} {:>10.3} {:>10.3} {:>10.3} {:>14.0}",
            r.representation, r.bronze_build_s, r.plan_s, r.total_s, r.rows_per_sec
        );
    }
    println!(
        "silver_pivot: dict {:.2}x vs str baseline ({} silver rows)",
        pivot.dict_speedup_vs_str, pivot.silver_rows
    );
    if !config.smoke && pivot.dict_speedup_vs_str < 1.5 {
        eprintln!(
            "WARNING: dict speedup {:.2}x below the 1.5x floor",
            pivot.dict_speedup_vs_str
        );
    }

    let report = Report {
        benchmark: "pipeline_throughput".to_string(),
        topic: TOPIC.to_string(),
        partitions: PARTITIONS,
        batches: config.batches,
        observation_rows: rows,
        max_records: MAX_RECORDS,
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        smoke: config.smoke,
        baseline_workers: base.workers,
        runs: entries,
        silver_pivot: pivot,
    };
    std::fs::write(&config.out, serde_json::to_string(&report).unwrap())
        .expect("write BENCH_pipeline.json");
    println!(
        "wrote {}",
        std::fs::canonicalize(&config.out)
            .unwrap_or_else(|_| config.out.clone().into())
            .display()
    );
}
