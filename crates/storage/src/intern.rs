//! String interning for dictionary-encoded categorical columns.
//!
//! A [`StringInterner`] maps each distinct string to a dense `u32`
//! code in first-occurrence order — the in-memory side of the
//! dictionary page encoding in [`crate::encoding`]. Producers intern
//! once per distinct value and push 4-byte codes per row instead of
//! allocating a `String` per row.

use std::collections::HashMap;

/// Dense first-occurrence string → `u32` code table.
#[derive(Debug, Clone, Default)]
pub struct StringInterner {
    entries: Vec<String>,
    index: HashMap<String, u32>,
}

impl StringInterner {
    /// An empty interner.
    pub fn new() -> StringInterner {
        StringInterner::default()
    }

    /// An interner pre-seeded with `entries` (codes follow slice order).
    pub fn with_entries<S: AsRef<str>>(entries: &[S]) -> StringInterner {
        let mut interner = StringInterner::new();
        for e in entries {
            interner.intern(e.as_ref());
        }
        interner
    }

    /// Code for `s`, inserting it on first sight.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.entries.len() as u32;
        self.entries.push(s.to_string());
        self.index.insert(s.to_string(), code);
        code
    }

    /// Code for `s` if already interned.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string behind `code`.
    pub fn get(&self, code: u32) -> Option<&str> {
        self.entries.get(code as usize).map(String::as_str)
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The dictionary in code order (borrowed).
    pub fn entries(&self) -> &[String] {
        &self.entries
    }

    /// Consume the interner into its dictionary, in code order.
    pub fn into_dict(self) -> Vec<String> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_dense_first_occurrence() {
        let mut i = StringInterner::new();
        assert_eq!(i.intern("b"), 0);
        assert_eq!(i.intern("a"), 1);
        assert_eq!(i.intern("b"), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get(1), Some("a"));
        assert_eq!(i.get(2), None);
        assert_eq!(i.lookup("a"), Some(1));
        assert_eq!(i.lookup("zzz"), None);
        assert_eq!(i.into_dict(), vec!["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn seeded_interner_preserves_order() {
        let i = StringInterner::with_entries(&["x", "y", "x"]);
        assert_eq!(i.entries(), &["x".to_string(), "y".to_string()]);
        assert_eq!(i.lookup("y"), Some(1));
    }
}
