//! Offline stand-in for `serde_derive`.
//!
//! Derives the shim-serde `Serialize`/`Deserialize` traits (value-tree
//! based, see the vendored `serde` crate) for non-generic structs and
//! enums. Implemented directly on `proc_macro::TokenTree` — the build
//! environment has no `syn`/`quote` — which is sufficient because the
//! workspace derives only on plain named-field structs and enums with
//! unit / newtype / tuple / struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of a struct body or an enum variant's payload.
enum Fields {
    /// `{ a: T, b: U }` — field names in declaration order.
    Named(Vec<String>),
    /// `(T, U)` — field count.
    Tuple(usize),
    /// No payload.
    Unit,
}

/// One enum variant.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed derive target.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn ident_of(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skip `#[...]` attribute groups starting at `*i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() && is_punct(&tokens[*i], '#') {
        *i += 2; // '#' then the bracket group
    }
}

/// Skip `pub` / `pub(...)` visibility starting at `*i`.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if ident_of(&tokens[*i]).as_deref() == Some("pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Parse `{ name: Type, ... }` field names, skipping attributes,
/// visibility, and type tokens (tracking `<`/`>` depth for generics in
/// field types).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_vis(&tokens, &mut i);
        let name = ident_of(&tokens[i]).expect("field name identifier");
        fields.push(name);
        i += 1;
        assert!(is_punct(&tokens[i], ':'), "expected ':' after field name");
        i += 1;
        // Consume the type: everything until a comma at angle depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Count tuple fields: top-level commas + 1 (0 for an empty group).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut saw_trailing_comma = false;
    for tt in &tokens {
        saw_trailing_comma = false;
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    saw_trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}

/// Parse the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = ident_of(&tokens[i]).expect("variant name identifier");
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the comma.
        while i < tokens.len() && !is_punct(&tokens[i], ',') {
            i += 1;
        }
        i += 1; // the comma (or past the end)
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kw = ident_of(&tokens[i]).expect("struct/enum keyword");
    i += 1;
    let name = ident_of(&tokens[i]).expect("type name");
    i += 1;
    if tokens.get(i).is_some_and(|tt| is_punct(tt, '<')) {
        panic!("shim serde_derive does not support generic types (on `{name}`)");
    }
    match kw.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            _ => panic!("malformed enum `{name}`"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    }
}

// ---- code generation ----------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(::std::vec![{}])", entries.join(","))
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(","))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\"))"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(f0))])"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec![{}]))])",
                                binds.join(","),
                                vals.join(",")
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(",");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn}{{{binds}}} => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec![{}]))])",
                                entries.join(",")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ \
                         match self {{ {} }} \
                     }} \
                 }}",
                arms.join(",")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 ::serde::obj_get(v, \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::option::Option::Some({name} {{ {} }})",
                        inits.join(",")
                    )
                }
                Fields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = v.as_array()?; \
                         if items.len() != {n} {{ return ::std::option::Option::None; }} \
                         ::std::option::Option::Some({name}({}))",
                        inits.join(",")
                    )
                }
                Fields::Unit => format!(
                    "match v {{ \
                         ::serde::Value::Null => ::std::option::Option::Some({name}), \
                         _ => ::std::option::Option::None, \
                     }}"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) -> ::std::option::Option<Self> {{ {body} }} \
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::option::Option::Some({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::option::Option::Some(\
                             {name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ \
                                     let items = inner.as_array()?; \
                                     if items.len() != {n} {{ return ::std::option::Option::None; }} \
                                     ::std::option::Option::Some({name}::{vn}({})) \
                                 }},",
                                inits.join(",")
                            ))
                        }
                        Fields::Named(fs) => {
                            let inits: Vec<String> = fs
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::obj_get(inner, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::option::Option::Some(\
                                 {name}::{vn} {{ {} }}),",
                                inits.join(",")
                            ))
                        }
                    }
                })
                .collect();
            let str_block = format!(
                "if let ::serde::Value::Str(s) = v {{ \
                     return match s.as_str() {{ {} _ => ::std::option::Option::None, }}; \
                 }}",
                unit_arms.join("")
            );
            let data_block = if data_arms.is_empty() {
                "::std::option::Option::None".to_string()
            } else {
                format!(
                    "let (tag, inner) = ::serde::enum_parts(v)?; \
                     match tag {{ {} _ => ::std::option::Option::None, }}",
                    data_arms.join("")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(v: &::serde::Value) -> ::std::option::Option<Self> {{ \
                         {str_block} \
                         {data_block} \
                     }} \
                 }}"
            )
        }
    }
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}
