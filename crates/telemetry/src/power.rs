//! Utilization-driven component power model.
//!
//! Node power decomposes into an idle floor plus dynamic power split
//! between GPUs and CPUs according to the system model's
//! `gpu_dynamic_share`. The same model is reused white-box by the
//! digital twin (`oda-twin`), which is what makes Fig. 11's replay
//! validation meaningful: the twin predicts from job utilization, the
//! telemetry reports the "measured" value with sensor noise on top.

use crate::jobs::Job;
use crate::system::SystemModel;

/// Deterministic (noise-free) power model of one system.
#[derive(Debug, Clone)]
pub struct PowerModel {
    system: SystemModel,
}

impl PowerModel {
    /// Build the power model for `system`.
    pub fn new(system: SystemModel) -> Self {
        PowerModel { system }
    }

    /// The modeled system.
    pub fn system(&self) -> &SystemModel {
        &self.system
    }

    /// Per-node phase shift so nodes of one job are decorrelated.
    pub fn node_phase(job: &Job, node: u32) -> f64 {
        job.phase + f64::from(node % 97) * 0.013
    }

    /// GPU utilization of `node` at absolute time `ts_ms`, given the job
    /// running there (0 when idle).
    pub fn gpu_util(&self, job: Option<&Job>, node: u32, ts_ms: i64) -> f64 {
        match job {
            Some(j) => {
                let t = (ts_ms - j.start_ms) as f64 / 1_000.0;
                j.archetype
                    .gpu_util(t, j.duration_s(), Self::node_phase(j, node))
            }
            None => 0.0,
        }
    }

    /// CPU utilization of `node` at `ts_ms` (a small housekeeping floor
    /// exists even on idle nodes).
    pub fn cpu_util(&self, job: Option<&Job>, node: u32, ts_ms: i64) -> f64 {
        match job {
            Some(j) => {
                let t = (ts_ms - j.start_ms) as f64 / 1_000.0;
                j.archetype
                    .cpu_util(t, j.duration_s(), Self::node_phase(j, node))
            }
            None => 0.03,
        }
    }

    /// Total node power in watts given component utilizations.
    pub fn node_power(&self, cpu_util: f64, gpu_util: f64) -> f64 {
        let dynamic = self.system.node_dynamic_watts();
        let gpu_part = dynamic * self.system.gpu_dynamic_share * gpu_util;
        let cpu_part = dynamic * (1.0 - self.system.gpu_dynamic_share) * cpu_util;
        self.system.node_idle_watts + gpu_part + cpu_part
    }

    /// Power of a single GPU device in watts.
    pub fn gpu_power(&self, gpu_util: f64) -> f64 {
        let per_gpu_dynamic = self.system.node_dynamic_watts() * self.system.gpu_dynamic_share
            / f64::from(self.system.gpus_per_node);
        let per_gpu_idle = self.system.node_idle_watts * 0.3 / f64::from(self.system.gpus_per_node);
        per_gpu_idle + per_gpu_dynamic * gpu_util
    }

    /// Power of a single CPU socket in watts.
    pub fn cpu_power(&self, cpu_util: f64) -> f64 {
        let per_cpu_dynamic = self.system.node_dynamic_watts()
            * (1.0 - self.system.gpu_dynamic_share)
            / f64::from(self.system.cpus_per_node);
        let per_cpu_idle = self.system.node_idle_watts * 0.2 / f64::from(self.system.cpus_per_node);
        per_cpu_idle + per_cpu_dynamic * cpu_util
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::ApplicationArchetype;

    fn model() -> PowerModel {
        PowerModel::new(SystemModel::compass())
    }

    #[test]
    fn idle_node_draws_idle_power() {
        let m = model();
        let p = m.node_power(0.0, 0.0);
        assert!((p - m.system().node_idle_watts).abs() < 1e-9);
    }

    #[test]
    fn full_load_hits_peak() {
        let m = model();
        let p = m.node_power(1.0, 1.0);
        assert!((p - m.system().node_peak_watts).abs() < 1e-9);
    }

    #[test]
    fn power_monotonic_in_util() {
        let m = model();
        let mut last = 0.0;
        for i in 0..=10 {
            let u = f64::from(i) / 10.0;
            let p = m.node_power(u, u);
            assert!(p > last);
            last = p;
        }
    }

    #[test]
    fn gpu_dominates_dynamic_power() {
        let m = model();
        let gpu_only = m.node_power(0.0, 1.0) - m.node_power(0.0, 0.0);
        let cpu_only = m.node_power(1.0, 0.0) - m.node_power(0.0, 0.0);
        assert!(
            gpu_only > 3.0 * cpu_only,
            "gpu {gpu_only} vs cpu {cpu_only}"
        );
    }

    #[test]
    fn util_of_idle_node_is_floor() {
        let m = model();
        assert_eq!(m.gpu_util(None, 0, 0), 0.0);
        assert!(m.cpu_util(None, 0, 0) < 0.1);
    }

    #[test]
    fn util_follows_job_archetype() {
        let m = model();
        let job = Job {
            id: 1,
            user: 0,
            project: "PRJ000".into(),
            program: 0,
            archetype: ApplicationArchetype::Hpl,
            nodes: vec![0],
            submit_ms: 0,
            start_ms: 0,
            end_ms: 3_600_000,
            phase: 0.5,
        };
        // Mid-job HPL should be near peak utilization.
        let u = m.gpu_util(Some(&job), 0, 1_800_000);
        assert!(u > 0.85, "mid-run HPL gpu util {u}");
    }
}
