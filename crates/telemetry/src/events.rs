//! Syslog-style event streams.
//!
//! Events power the user-assistance dashboard (correlating node failures
//! with job complaints) and the Copacetic security correlator (auth
//! bursts). Base rates are Poisson; security incidents can be injected
//! as correlated sequences.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Event category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventKind {
    /// A compute node dropped out of the machine.
    NodeFail,
    /// GPU driver error (Xid-style).
    GpuXid,
    /// GPU memory double-bit ECC error.
    EccDbe,
    /// Parallel-filesystem client RPC timeout.
    FsTimeout,
    /// Interconnect link flap.
    LinkFlap,
    /// Failed authentication attempt on a login node.
    AuthFail,
    /// Successful login.
    LoginSuccess,
    /// System service restarted.
    ServiceRestart,
}

impl EventKind {
    /// All kinds.
    pub const ALL: [EventKind; 8] = [
        EventKind::NodeFail,
        EventKind::GpuXid,
        EventKind::EccDbe,
        EventKind::FsTimeout,
        EventKind::LinkFlap,
        EventKind::AuthFail,
        EventKind::LoginSuccess,
        EventKind::ServiceRestart,
    ];

    /// Mean occurrences per node (or per facility for login events) per day.
    fn daily_rate_per_node(self) -> f64 {
        match self {
            EventKind::NodeFail => 0.002,
            EventKind::GpuXid => 0.02,
            EventKind::EccDbe => 0.004,
            EventKind::FsTimeout => 0.05,
            EventKind::LinkFlap => 0.01,
            // Login-node events scale with users, handled facility-wide.
            EventKind::AuthFail => 0.0,
            EventKind::LoginSuccess => 0.0,
            EventKind::ServiceRestart => 0.005,
        }
    }

    /// Severity assigned at generation.
    pub fn severity(self) -> Severity {
        match self {
            EventKind::NodeFail | EventKind::EccDbe => Severity::Critical,
            EventKind::GpuXid | EventKind::FsTimeout | EventKind::LinkFlap => Severity::Error,
            EventKind::AuthFail => Severity::Warning,
            EventKind::LoginSuccess | EventKind::ServiceRestart => Severity::Info,
        }
    }

    /// Short label for dashboards.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::NodeFail => "node-fail",
            EventKind::GpuXid => "gpu-xid",
            EventKind::EccDbe => "ecc-dbe",
            EventKind::FsTimeout => "fs-timeout",
            EventKind::LinkFlap => "link-flap",
            EventKind::AuthFail => "auth-fail",
            EventKind::LoginSuccess => "login-ok",
            EventKind::ServiceRestart => "svc-restart",
        }
    }
}

/// Syslog severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational.
    Info,
    /// Warning.
    Warning,
    /// Error.
    Error,
    /// Critical.
    Critical,
}

/// One event record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// Occurrence time (ms).
    pub ts_ms: i64,
    /// Category.
    pub kind: EventKind,
    /// Severity.
    pub severity: Severity,
    /// Affected node, when node-scoped.
    pub node: Option<u32>,
    /// Acting user, for auth events.
    pub user: Option<u32>,
    /// Free-text message (what a real syslog line would carry).
    pub message: String,
}

/// A scripted security incident: a burst of failed authentications
/// followed by a success — the pattern Copacetic must flag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Incident {
    /// When the burst begins (ms).
    pub start_ms: i64,
    /// Attacking/compromised user id.
    pub user: u32,
    /// Number of failed attempts in the burst.
    pub failures: u32,
}

/// Poisson event generator with incident injection.
#[derive(Debug)]
pub struct EventGenerator {
    rng: StdRng,
    nodes: u32,
    users: u32,
    /// Facility-wide successful logins per day.
    logins_per_day: f64,
    /// Facility-wide benign auth failures per day.
    auth_fails_per_day: f64,
    incidents: Vec<Incident>,
}

impl EventGenerator {
    /// Create a generator for a system with `nodes` nodes and `users` users.
    pub fn new(nodes: u32, users: u32, seed: u64) -> Self {
        EventGenerator {
            rng: StdRng::seed_from_u64(seed),
            nodes,
            users,
            logins_per_day: f64::from(users) * 4.0,
            auth_fails_per_day: f64::from(users) * 0.3,
            incidents: Vec::new(),
        }
    }

    /// Schedule a security incident.
    pub fn inject_incident(&mut self, incident: Incident) {
        self.incidents.push(incident);
    }

    fn poisson_count(&mut self, mean: f64) -> u32 {
        // Inverse-CDF sampling; means here are tiny (<< 1 per tick).
        if mean <= 0.0 {
            return 0;
        }
        let mut count = 0;
        let mut p = (-mean).exp();
        let mut cdf = p;
        let u: f64 = self.rng.random();
        while u > cdf && count < 1_000 {
            count += 1;
            p *= mean / f64::from(count);
            cdf += p;
        }
        count
    }

    /// Generate the events of the window `[now_ms - dt_ms, now_ms)`.
    pub fn tick(&mut self, now_ms: i64, dt_ms: i64) -> Vec<Event> {
        let mut out = Vec::new();
        let day_frac = dt_ms as f64 / 86_400_000.0;
        for kind in EventKind::ALL {
            let mean = kind.daily_rate_per_node() * f64::from(self.nodes) * day_frac;
            for _ in 0..self.poisson_count(mean) {
                let node = self.rng.random_range(0..self.nodes);
                out.push(Event {
                    ts_ms: now_ms - self.rng.random_range(0..dt_ms.max(1)),
                    kind,
                    severity: kind.severity(),
                    node: Some(node),
                    user: None,
                    message: format!("{} on node {}", kind.label(), node),
                });
            }
        }
        // Facility-wide auth activity.
        for (kind, per_day) in [
            (EventKind::LoginSuccess, self.logins_per_day),
            (EventKind::AuthFail, self.auth_fails_per_day),
        ] {
            let mean = per_day * day_frac;
            for _ in 0..self.poisson_count(mean) {
                let user = self.rng.random_range(0..self.users);
                out.push(Event {
                    ts_ms: now_ms - self.rng.random_range(0..dt_ms.max(1)),
                    kind,
                    severity: kind.severity(),
                    node: None,
                    user: Some(user),
                    message: format!("{} user {}", kind.label(), user),
                });
            }
        }
        // Scripted incidents: burst of failures then one success, spread
        // over two minutes from the incident start.
        let mut fired = Vec::new();
        for (i, inc) in self.incidents.iter().enumerate() {
            if inc.start_ms >= now_ms - dt_ms && inc.start_ms < now_ms {
                for k in 0..inc.failures {
                    out.push(Event {
                        ts_ms: inc.start_ms
                            + i64::from(k) * 120_000 / i64::from(inc.failures.max(1)),
                        kind: EventKind::AuthFail,
                        severity: Severity::Warning,
                        node: None,
                        user: Some(inc.user),
                        message: format!("auth-fail user {} (burst)", inc.user),
                    });
                }
                out.push(Event {
                    ts_ms: inc.start_ms + 150_000,
                    kind: EventKind::LoginSuccess,
                    severity: Severity::Info,
                    node: None,
                    user: Some(inc.user),
                    message: format!("login-ok user {} (post-burst)", inc.user),
                });
                fired.push(i);
            }
        }
        for i in fired.into_iter().rev() {
            self.incidents.remove(i);
        }
        out.sort_by_key(|e| e.ts_ms);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let run = |seed| {
            let mut g = EventGenerator::new(1_000, 200, seed);
            let mut all = Vec::new();
            for t in 1..=60 {
                all.extend(g.tick(t * 60_000, 60_000));
            }
            all
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn rates_scale_with_nodes() {
        let count = |nodes| {
            let mut g = EventGenerator::new(nodes, 10, 1);
            let mut n = 0;
            for t in 1..=1_440 {
                n += g
                    .tick(t * 60_000, 60_000)
                    .iter()
                    .filter(|e| e.node.is_some())
                    .count();
            }
            n
        };
        let small = count(1_000);
        let big = count(20_000);
        assert!(big > 5 * small, "big {big} small {small}");
    }

    #[test]
    fn incident_fires_exactly_once() {
        let mut g = EventGenerator::new(10, 10, 2);
        g.inject_incident(Incident {
            start_ms: 90_000,
            user: 3,
            failures: 8,
        });
        let mut bursts = 0;
        for t in 1..=10 {
            let evs = g.tick(t * 60_000, 60_000);
            bursts += evs
                .iter()
                .filter(|e| e.kind == EventKind::AuthFail && e.message.contains("burst"))
                .count();
        }
        assert_eq!(bursts, 8);
    }

    #[test]
    fn incident_followed_by_success() {
        let mut g = EventGenerator::new(10, 10, 2);
        g.inject_incident(Incident {
            start_ms: 30_000,
            user: 7,
            failures: 5,
        });
        let evs = g.tick(60_000, 60_000);
        let success = evs
            .iter()
            .find(|e| e.kind == EventKind::LoginSuccess && e.user == Some(7))
            .expect("success event");
        let last_fail = evs
            .iter()
            .filter(|e| e.kind == EventKind::AuthFail && e.user == Some(7))
            .map(|e| e.ts_ms)
            .max()
            .expect("failures");
        assert!(success.ts_ms > last_fail);
    }

    #[test]
    fn events_sorted_by_time() {
        let mut g = EventGenerator::new(5_000, 500, 9);
        let evs = g.tick(3_600_000, 3_600_000);
        assert!(evs.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
    }
}
