//! Golden fixture for cluster partition placement.
//!
//! [`Cluster::placement`] is a pure function of `(topic, partition,
//! nodes, replication)`; this test pins its output for small clusters
//! so any change to the placement hash, ring order, or replication
//! clamp is caught as a golden drift rather than a silent reshuffle
//! (which would break byte-identity of replayed pipelines).
//!
//! On mismatch the actual table is written to
//! `target/cluster-assignment-actual.json` so CI can upload it as an
//! artifact for diffing against `tests/golden/cluster_assignment.json`.

use oda::stream::Cluster;
use std::fmt::Write as _;

const TOPIC: &str = "bronze";
const PARTITIONS: u32 = 8;
const REPLICATION: u32 = 3;
const NODE_COUNTS: [u32; 3] = [1, 3, 5];

/// Render the assignment tables as deterministic, hand-ordered JSON.
fn render_assignment() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"topic\": \"{TOPIC}\",");
    let _ = writeln!(out, "  \"partitions\": {PARTITIONS},");
    let _ = writeln!(out, "  \"replication\": {REPLICATION},");
    out.push_str("  \"clusters\": [\n");
    for (i, &nodes) in NODE_COUNTS.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"nodes\": {nodes},");
        out.push_str("      \"assignment\": [\n");
        for p in 0..PARTITIONS {
            let set = Cluster::placement(TOPIC, p, nodes, REPLICATION);
            let followers: Vec<String> = set[1..].iter().map(u32::to_string).collect();
            let _ = write!(
                out,
                "        {{\"partition\": {p}, \"leader\": {}, \"followers\": [{}]}}",
                set[0],
                followers.join(", ")
            );
            out.push_str(if p + 1 < PARTITIONS { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < NODE_COUNTS.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[test]
fn placement_matches_golden_assignment() {
    let actual = render_assignment();
    let expected = include_str!("golden/cluster_assignment.json");
    if actual != expected {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target/cluster-assignment-actual.json");
        let _ = std::fs::write(&out, &actual);
        panic!(
            "Cluster::placement drifted from tests/golden/cluster_assignment.json; \
             actual written to {}",
            out.display()
        );
    }
}

#[test]
fn live_clusters_agree_with_the_golden_table() {
    // The pure function is the golden source; a real cluster must seed
    // its leaders and replica sets from exactly that table.
    for &nodes in &NODE_COUNTS {
        let c = Cluster::new(nodes, REPLICATION);
        c.create_topic(TOPIC, PARTITIONS, oda::stream::RetentionPolicy::unbounded())
            .unwrap();
        for p in 0..PARTITIONS {
            let want = Cluster::placement(TOPIC, p, nodes, REPLICATION);
            assert_eq!(c.replicas(TOPIC, p).unwrap(), want, "n={nodes} p={p}");
            assert_eq!(c.leader(TOPIC, p).unwrap(), want[0], "n={nodes} p={p}");
        }
    }
}

#[test]
fn assignment_spreads_leaders_across_nodes() {
    // With 8 partitions on 5 nodes the FNV placement must not collapse
    // onto a single leader (a regression guard for the hash input
    // format, which includes the partition index).
    let leaders: std::collections::BTreeSet<u32> = (0..PARTITIONS)
        .map(|p| Cluster::placement(TOPIC, p, 5, REPLICATION)[0])
        .collect();
    assert!(
        leaders.len() > 1,
        "all partitions led by node {leaders:?} — hash input degenerate"
    );
}
