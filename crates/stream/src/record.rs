//! Records as stored in and fetched from the log.

use bytes::Bytes;

/// One record in a partition log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Dense per-partition offset assigned at append.
    pub offset: u64,
    /// Producer-supplied event timestamp (ms).
    pub ts_ms: i64,
    /// Optional partitioning/compaction key.
    pub key: Option<Bytes>,
    /// Payload.
    pub value: Bytes,
}

impl Record {
    /// Approximate in-memory footprint, used for size-based retention.
    pub fn byte_size(&self) -> usize {
        8 + 8 + self.key.as_ref().map_or(0, |k| k.len()) + self.value.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_size_counts_key_and_value() {
        let r = Record {
            offset: 0,
            ts_ms: 0,
            key: Some(Bytes::from_static(b"abc")),
            value: Bytes::from_static(b"0123456789"),
        };
        assert_eq!(r.byte_size(), 16 + 3 + 10);
        let r2 = Record { key: None, ..r };
        assert_eq!(r2.byte_size(), 16 + 10);
    }
}
