//! Concurrency: the multi-tenant "hourglass" under parallel load.
//!
//! §V's centralized infrastructure serves many projects at once; these
//! tests drive the broker, LAKE, and OCEAN from several threads and
//! assert nothing is lost, duplicated, or torn.

use bytes::Bytes;
use oda::storage::lake::Lake;
use oda::storage::Ocean;
use oda::stream::{Broker, Consumer, Producer, RetentionPolicy};
use std::sync::Arc;
use std::thread;

#[test]
fn many_producers_many_groups_see_everything() {
    let broker = Broker::new();
    broker
        .create_topic("t", 8, RetentionPolicy::unbounded())
        .unwrap();
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 2_000;

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let broker = broker.clone();
            thread::spawn(move || {
                let producer = Producer::new(broker, "t").unwrap();
                for i in 0..PER_PRODUCER {
                    producer
                        .send(
                            i as i64,
                            Some(Bytes::from(format!("k{p}-{}", i % 97))),
                            Bytes::from(format!("{p}:{i}")),
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    // Concurrent consumer groups read while producers write.
    let consumers: Vec<_> = (0..3)
        .map(|g| {
            let broker = broker.clone();
            thread::spawn(move || {
                let mut consumer = Consumer::subscribe(broker, &format!("g{g}"), "t").unwrap();
                let mut seen = std::collections::HashSet::new();
                // Deterministic termination: each group knows the total
                // it must eventually see; a generous poll budget guards
                // against hangs without racing slow producers.
                let expected = PRODUCERS * PER_PRODUCER;
                let mut polls = 0u64;
                while seen.len() < expected {
                    polls += 1;
                    assert!(
                        polls < 5_000_000,
                        "gave up after {polls} polls at {}",
                        seen.len()
                    );
                    let recs = consumer.poll(256).unwrap();
                    if recs.is_empty() {
                        thread::yield_now();
                        continue;
                    }
                    for r in recs {
                        assert!(seen.insert(r.value.clone()), "duplicate delivery");
                    }
                }
                seen.len()
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for c in consumers {
        let seen = c.join().unwrap();
        assert_eq!(seen, PRODUCERS * PER_PRODUCER, "a group missed records");
    }
}

#[test]
fn lake_concurrent_writers_and_readers() {
    let lake = Arc::new(Lake::with_layout(60_000, i64::MAX / 4));
    const WRITERS: usize = 4;
    const POINTS: usize = 5_000;
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let lake = lake.clone();
            thread::spawn(move || {
                for i in 0..POINTS {
                    lake.insert(&format!("series-{w}"), i as i64 * 100, i as f64);
                }
            })
        })
        .collect();
    // Readers run concurrently; they must never see torn state (panics
    // or impossible aggregates).
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let lake = lake.clone();
            thread::spawn(move || {
                for _ in 0..200 {
                    for w in 0..WRITERS {
                        if let Some((n, mean, min, max)) = lake
                            .plan(0, i64::MAX / 8)
                            .series(&format!("series-{w}"))
                            .aggregate()
                        {
                            assert!(n > 0);
                            assert!(min <= mean && mean <= max);
                        }
                    }
                }
            })
        })
        .collect();
    for h in writers {
        h.join().unwrap();
    }
    for h in readers {
        h.join().unwrap();
    }
    assert_eq!(lake.len(), WRITERS * POINTS);
}

#[test]
fn ocean_parallel_projects_are_isolated() {
    let ocean = Ocean::new();
    ocean.create_bucket("shared");
    let handles: Vec<_> = (0..8)
        .map(|p| {
            let ocean = ocean.clone();
            thread::spawn(move || {
                for i in 0..500 {
                    ocean
                        .put(
                            "shared",
                            &format!("proj{p}/obj{i}"),
                            Bytes::from(vec![p as u8; 64]),
                        )
                        .unwrap();
                }
                // Each project sees exactly its own keys under its prefix.
                let keys = ocean.list("shared", &format!("proj{p}/"));
                assert_eq!(keys.len(), 500);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(ocean.bucket_bytes("shared"), 8 * 500 * 64);
}

#[test]
fn independent_pipelines_share_one_stream() {
    // Two "projects" each run their own streaming silver query over the
    // same bronze topic concurrently — the §VI-B shared-precompute
    // topology. Their outputs must be identical.
    use oda::core::config::FacilityConfig;
    use oda::core::facility::Facility;
    use oda::pipeline::checkpoint::CheckpointStore;
    use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform};
    use oda::pipeline::streaming::{MemorySink, StreamingQuery};
    use oda::telemetry::SensorCatalog;

    let mut facility = Facility::build(FacilityConfig::tiny(77));
    facility.run(60);
    let system = facility.systems()[0].clone();
    let broker = facility.broker();
    let handles: Vec<_> = (0..2)
        .map(|p| {
            let broker = broker.clone();
            let system = system.clone();
            thread::spawn(move || {
                let consumer =
                    Consumer::subscribe(broker, &format!("proj{p}"), "tiny.bronze").unwrap();
                let mut query = StreamingQuery::builder()
                    .source(consumer)
                    .decoder(observation_decoder(SensorCatalog::for_system(&system)))
                    .transform(streaming_silver_transform(15_000, 0))
                    .checkpoints(CheckpointStore::new())
                    .workers(1 + p) // one serial, one parallel — must agree
                    .build()
                    .unwrap();
                let mut sink = MemorySink::new();
                query.run_to_completion(&mut sink).unwrap();
                let silver = sink.concat().unwrap();
                let mut rows: Vec<String> = (0..silver.rows())
                    .map(|i| {
                        format!(
                            "{}|{}|{}|{}",
                            silver.i64s("window").unwrap()[i],
                            silver.i64s("node").unwrap()[i],
                            silver.cat("sensor").unwrap().get(i),
                            silver.f64s("mean").unwrap()[i].to_bits()
                        )
                    })
                    .collect();
                rows.sort();
                rows
            })
        })
        .collect();
    let results: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(!results[0].is_empty());
    assert_eq!(results[0], results[1], "independent consumers must agree");
}
