//! Quickstart: build a facility, close the operational feedback loop.
//!
//! One simulated operational shift on a laptop-scale system: telemetry
//! streams into the broker, a streaming pipeline refines Bronze to
//! Silver, the loop analyzes the Silver indicators, decides, and turns
//! a real actuator (the coolant supply set point) — Fig. 1 of the
//! paper, end to end.
//!
//! Run with: `cargo run --release --example quickstart`

use oda::core::config::FacilityConfig;
use oda::core::facility::Facility;
use oda::core::lifecycle::{Adjustment, OperationalLoop};

fn main() {
    let mut facility = Facility::build(FacilityConfig::tiny(42));
    println!("facility: {} system(s)", facility.systems().len());
    for s in facility.systems() {
        println!(
            "  {}: {} nodes, {} GPUs, {:.1} MW peak",
            s.name,
            s.node_count(),
            s.gpu_count(),
            s.peak_mw
        );
    }
    println!("topics: {:?}", facility.broker().topic_names());
    println!();

    let mut ops = OperationalLoop::attach(&facility, 0, 15_000).expect("attach loop");
    println!(
        "operational feedback loop (target outlet {:.0} C):",
        ops.target_outlet_c
    );
    println!(
        "{:>4} {:>12} {:>14} {:>14} {:>16}  adjustment",
        "iter", "silver rows", "mean outlet C", "peak outlet C", "mean node W"
    );
    for iter in 1..=6 {
        let report = ops.iterate(&mut facility, 60).expect("loop iteration");
        let adj = match report.adjustment {
            Adjustment::RaiseSupply { to_c } => format!("raise supply -> {to_c:.0} C"),
            Adjustment::LowerSupply { to_c } => format!("lower supply -> {to_c:.0} C"),
            Adjustment::Hold => "hold".to_string(),
        };
        println!(
            "{iter:>4} {:>12} {:>14.2} {:>14.2} {:>16.1}  {adj}",
            report.silver_rows,
            report.mean_outlet_c,
            report.peak_outlet_c,
            report.mean_node_power_w
        );
    }
    println!();
    println!(
        "after {} simulated seconds: broker holds {:.2} MiB across {} topics",
        facility.now_ms() / 1_000,
        facility.broker().bytes() as f64 / (1024.0 * 1024.0),
        facility.broker().topic_names().len()
    );
    println!(
        "LAKE holds {} hot series / {} points",
        facility.lake().series_with_prefix("", 0, i64::MAX).len(),
        facility.lake().len()
    );
}
