//! Governance integration: request → sanitize → release → access,
//! with real telemetry artifacts (Fig. 12 + §IX-B).

use oda::core::config::FacilityConfig;
use oda::core::facility::Facility;
use oda::govern::access::{AccessControl, Channel};
use oda::govern::advisory::{AdvisoryStage, DataRuc, ReleaseRequest, RequestState};
use oda::govern::Sanitizer;

#[test]
fn external_release_of_real_event_logs_is_sanitized() {
    // Generate a real event log with user-identifying content.
    let mut config = FacilityConfig::tiny(55);
    config.tick_ms = 60_000;
    let mut facility = Facility::build(config);
    facility.run(1_440);
    let events = facility.events(0).to_vec();
    let user_events: Vec<_> = events.iter().filter(|e| e.user.is_some()).collect();
    assert!(!user_events.is_empty(), "need auth events for the PII path");

    // The release request: external, PII-bearing.
    let mut ruc = DataRuc::new();
    let mut req = ReleaseRequest::external("staff", "tiny-events-day1", "reliability study");
    req.contains_pii = true;
    let id = ruc.submit(req);
    let parked = ruc.review_to_completion(id).unwrap();
    assert_eq!(
        parked,
        RequestState::UnderReview(AdvisoryStage::CyberSecurity)
    );

    // Sanitize the actual artifact.
    let sanitizer = Sanitizer::new(0xda7a);
    let released: Vec<String> = user_events
        .iter()
        .map(|e| sanitizer.scrub_text(&format!("{} user{}", e.message, e.user.unwrap())))
        .collect();
    for (raw, clean) in user_events.iter().zip(&released) {
        let uid = raw.user.unwrap().to_string();
        assert!(
            !clean.contains(&format!("user {uid}")) && !clean.contains(&format!("user{uid}")),
            "released line leaks user id: {clean}"
        );
    }
    // Pseudonyms are stable within the release (joinability preserved).
    let u = user_events[0].user.unwrap();
    assert_eq!(sanitizer.user_token(u), sanitizer.user_token(u));

    // Resume the chain and grant export access.
    ruc.mark_sanitized(id);
    assert_eq!(
        ruc.review_to_completion(id).unwrap(),
        RequestState::Approved
    );
    let mut access = AccessControl::new();
    access.grant("COLLAB", Channel::Export, "tiny-events-day1");
    assert!(access.access("COLLAB", Channel::Export, "tiny-events-day1"));
    assert!(!access.access("COLLAB", Channel::Lake, "tiny-events-day1"));
    // Full audit trail exists: 5 chain stages + the sanitization hold.
    assert!(ruc.audit_log().len() >= 6);
}

#[test]
fn rejection_paths_leave_no_grants() {
    let mut ruc = DataRuc::new();
    let mut access = AccessControl::new();
    let mut req = ReleaseRequest::external("staff", "fabric-dumps", "vendor benchmarking");
    req.export_controlled = true;
    let id = ruc.submit(req);
    let state = ruc.review_to_completion(id).unwrap();
    let RequestState::Rejected { stage, .. } = state else {
        panic!("expected rejection")
    };
    assert_eq!(stage, AdvisoryStage::Legal);
    // Policy followed: no grant was issued, so access fails and the
    // denial is logged.
    assert!(!access.access("VENDOR", Channel::Export, "fabric-dumps"));
    assert_eq!(access.log().len(), 1);
    assert!(!access.log()[0].allowed);
}
