//! Logical query plan: pushdown equivalence and the explain golden.
//!
//! The planner's contract is "same bytes, less work": a planned scan
//! with row-group pruning and secondary indexes must return a frame
//! byte-identical to a naive full scan + filter, while decoding
//! strictly fewer column chunks. The explain golden pins the optimized
//! plan shape; on drift the actual render is written to
//! `target/query-explain-actual.txt` so CI can upload it for diffing.

use std::sync::Arc;

use oda::pipeline::frame_io::frame_to_colfile;
use oda::pipeline::logical::{ExecContext, Query};
use oda::pipeline::ops::{Agg, AggSpec};
use oda::pipeline::{Expr, Frame, PipelinePlan, Stage};
use oda::storage::colfile::{ColumnData, ColumnType, TableFile, TableSchema, TableWriter};
use proptest::prelude::*;

const TAGS: [&str; 4] = ["t0", "t1", "t2", "t3"];
const GROUP_ROWS: usize = 16;

/// Write `(ts, sensor, v)` rows into an indexed colfile, `GROUP_ROWS`
/// rows per row group; ts ascends globally so later thresholds prune
/// earlier groups.
fn build_table(tags: &[u8], values: &[f64]) -> Arc<TableFile> {
    let schema = TableSchema::new(&[
        ("ts", ColumnType::I64),
        ("sensor", ColumnType::Dict),
        ("v", ColumnType::F64),
    ]);
    let mut w = TableWriter::new(schema);
    w.index_column("sensor").unwrap();
    for (g, chunk) in tags.chunks(GROUP_ROWS).enumerate() {
        let base = g * GROUP_ROWS;
        let ts: Vec<i64> = (0..chunk.len())
            .map(|r| ((base + r) * 100) as i64)
            .collect();
        let dict: Vec<String> = TAGS.iter().map(|t| t.to_string()).collect();
        let codes: Vec<u32> = chunk.iter().map(|&t| u32::from(t)).collect();
        let v = values[base..base + chunk.len()].to_vec();
        w.write_row_group(&[
            ColumnData::I64(ts.into()),
            ColumnData::dict(dict, codes),
            ColumnData::F64(v.into()),
        ])
        .unwrap();
    }
    Arc::new(TableFile::open(w.finish()).unwrap())
}

/// Naive comparator: decode every row group, then filter in memory.
fn full_scan(table: &TableFile) -> Frame {
    let mut parts = Vec::new();
    for g in 0..table.row_group_count() {
        let cols = table.read_row_group(g).unwrap();
        let named: Vec<(String, ColumnData)> = table
            .schema()
            .columns
            .iter()
            .zip(cols)
            .map(|((n, _), c)| (n.clone(), c))
            .collect();
        parts.push(Frame::new(named).unwrap());
    }
    Frame::concat(&parts).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planned scans return frames byte-identical to a naive full scan
    /// while decoding strictly fewer chunks (the first row group is
    /// always stats-pruned by construction).
    #[test]
    fn pushdown_equivalence(
        groups in 2usize..7,
        seed in proptest::collection::vec((0u8..4, -100.0f64..100.0), 7 * GROUP_ROWS),
        threshold_row in GROUP_ROWS..7 * GROUP_ROWS + 1,
        tag in 0usize..TAGS.len() + 1,
        project in any::<bool>(),
    ) {
        let rows = groups * GROUP_ROWS;
        let tags: Vec<u8> = seed.iter().take(rows).map(|(t, _)| *t).collect();
        let values: Vec<f64> = seed.iter().take(rows).map(|(_, v)| *v).collect();
        let table = build_table(&tags, &values);

        // ts >= threshold excludes at least row group 0; "t4" matches
        // nothing and exercises full index pruning.
        let threshold = (threshold_row.min(rows) * 100) as i64;
        let tag = TAGS.get(tag).copied().unwrap_or("t4");
        let pred = Expr::col("ts")
            .ge(Expr::LitI(threshold))
            .and(Expr::col("sensor").eq_(Expr::LitS(tag.into())));

        let naive = {
            let f = full_scan(&table);
            let mask = pred.eval_mask(&f).unwrap();
            let f = f.filter_mask(&mask);
            if project { f.select(&["ts", "v"]).unwrap() } else { f }
        };
        let mut q = Query::scan_table(Arc::clone(&table)).filter(pred);
        if project {
            q = q.select(&["ts", "v"]);
        }
        let (planned, stats) = q.execute_with(&ExecContext::named("prop")).unwrap();

        prop_assert_eq!(&planned, &naive);
        prop_assert_eq!(
            frame_to_colfile(&planned).unwrap(),
            frame_to_colfile(&naive).unwrap(),
            "planned and naive frames must serialize byte-identically"
        );
        let full_chunks = (groups * table.schema().columns.len()) as u64;
        prop_assert!(
            stats.chunks_read < full_chunks,
            "planned scan read {} of {} chunks",
            stats.chunks_read,
            full_chunks
        );
    }

    /// A `PipelinePlan` clause list executes byte-identically through
    /// the logical planner and through the stage-by-stage path.
    #[test]
    fn lowering_preserves_bytes(
        seed in proptest::collection::vec((0u8..2, -50.0f64..50.0), 40..120),
    ) {
        let rows = seed.len();
        let bronze = Frame::new(vec![
            ("ts".into(), ColumnData::I64((0..rows as i64).map(|i| i * 500).collect())),
            ("node".into(), ColumnData::I64((0..rows as i64).map(|i| i % 3).collect())),
            (
                "sensor".into(),
                ColumnData::Str(seed.iter().map(|(t, _)| format!("s{t}")).collect()),
            ),
            ("value".into(), ColumnData::F64(seed.iter().map(|(_, v)| *v).collect())),
        ])
        .unwrap();
        let context = Frame::new(vec![
            ("node".into(), ColumnData::I64(vec![0, 1, 2].into())),
            ("job".into(), ColumnData::I64(vec![100, 101, 102].into())),
        ])
        .unwrap();
        let plan = PipelinePlan::new()
            .then(Stage::Where(Expr::col("value").ge(Expr::LitF(-25.0))))
            .then(Stage::Window { ts_col: "ts".into(), width_ms: 5_000 })
            .then(Stage::GroupBy {
                keys: vec!["window".into(), "node".into(), "sensor".into()],
                aggs: vec![AggSpec::new("value", Agg::Mean, "value")],
            })
            .then(Stage::Pivot {
                index: vec!["window".into(), "node".into()],
                pivot_col: "sensor".into(),
                value_col: "value".into(),
                agg: Agg::Mean,
            })
            .then(Stage::Join { right: context, on: vec!["node".into()] });

        // Planner path (lower + optimize) vs stage-by-stage path. Pivot
        // cells with no contributing rows hold NaN, so compare the
        // serialized bytes (bit-exact) rather than `Frame` equality
        // (where NaN != NaN).
        let planned = plan.execute(bronze.clone()).unwrap();
        let (staged, _) = plan.execute_timed(bronze).unwrap();
        prop_assert_eq!(planned.names(), staged.names());
        prop_assert_eq!(
            frame_to_colfile(&planned).unwrap(),
            frame_to_colfile(&staged).unwrap()
        );
    }
}

/// Deterministic fixture for the explain golden: 3 groups x 4 rows.
fn explain_table() -> Arc<TableFile> {
    let tags: Vec<u8> = (0..48).map(|r| (r % 2) as u8).collect();
    let values: Vec<f64> = (0..48).map(|r| r as f64 / 4.0).collect();
    build_table(&tags, &values)
}

#[test]
fn explain_matches_golden() {
    let q = Query::scan_table(explain_table())
        .filter(
            Expr::col("v")
                .is_nan()
                .not()
                .and(Expr::col("sensor").eq_(Expr::LitS("t0".into())))
                .and(Expr::col("ts").ge(Expr::LitI(1_600))),
        )
        .select(&["ts", "v"]);
    let actual = q.explain();
    let expected = include_str!("golden/query_explain.txt");
    if actual != expected {
        let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("target/query-explain-actual.txt");
        let _ = std::fs::write(&out, &actual);
        panic!(
            "explain drifted from tests/golden/query_explain.txt; \
             actual written to {}",
            out.display()
        );
    }
}

#[test]
fn planned_scan_reports_pruning_stats() {
    let table = explain_table();
    let (out, stats) = Query::scan_table(table)
        .filter(
            Expr::col("sensor")
                .eq_(Expr::LitS("t0".into()))
                .and(Expr::col("ts").ge(Expr::LitI(1_600))),
        )
        .select(&["ts", "v"])
        .execute_with(&ExecContext::named("stats"))
        .unwrap();
    // Row group 0 covers ts 0..1500: stats-pruned. t0 occupies even
    // rows, so groups 1 and 2 survive via the index.
    assert_eq!(stats.groups_total, 3);
    assert_eq!(stats.groups_scanned, vec![1, 2]);
    assert_eq!(stats.index_hits, 1);
    assert!(stats.chunks_pruned > 0);
    assert_eq!(out.rows(), 16);
}
