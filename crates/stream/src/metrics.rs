//! Broker and consumer metrics: append/fetch volume, retained bytes,
//! retention drops, and per-partition consumer lag.
//!
//! Attached once via [`crate::Broker::attach_metrics`]; the hot paths
//! then bump pre-resolved counters. Lag gauges are labeled
//! `{group, topic, partition}` and created on first touch, cached in a
//! small map so steady-state polls don't hit the registry.

use std::collections::HashMap;
use std::sync::Arc;

use oda_faults::RetryMetrics;
use oda_obs::{Counter, Gauge, Registry};
use parking_lot::Mutex;

/// Cached instruments for the STREAM tier.
#[derive(Debug)]
pub struct StreamMetrics {
    registry: Registry,
    /// Records appended via `Broker::produce`.
    pub produce_records: Arc<Counter>,
    /// Bytes appended (record framing + key + value).
    pub produce_bytes: Arc<Counter>,
    /// Records returned by `Broker::fetch`.
    pub fetch_records: Arc<Counter>,
    /// Bytes returned by `Broker::fetch`.
    pub fetch_bytes: Arc<Counter>,
    /// Records dropped by retention enforcement.
    pub retention_dropped: Arc<Counter>,
    /// Bytes currently retained across all topics.
    pub retained_bytes: Arc<Gauge>,
    /// Retry accounting for `Producer::send_retrying`.
    pub produce_retry: RetryMetrics,
    /// Retry accounting for `Consumer` fetches under a retry policy.
    pub fetch_retry: RetryMetrics,
    /// Leader elections performed by a replicated cluster.
    pub leader_elections: Arc<Counter>,
    /// Times a replica left a partition's in-sync set (ISR shrink).
    pub isr_shrinks: Arc<Counter>,
    lag: Mutex<HashMap<(String, String, u32), Arc<Gauge>>>,
    replica_lag: Mutex<HashMap<(String, u32, u32), Arc<Gauge>>>,
}

impl StreamMetrics {
    /// Register the broker metric families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        Self {
            produce_records: registry.counter(
                "stream_produce_records_total",
                "Records appended to the broker",
                &[],
            ),
            produce_bytes: registry.counter(
                "stream_produce_bytes_total",
                "Bytes appended to the broker (framing + key + value)",
                &[],
            ),
            fetch_records: registry.counter(
                "stream_fetch_records_total",
                "Records served by broker fetches",
                &[],
            ),
            fetch_bytes: registry.counter(
                "stream_fetch_bytes_total",
                "Bytes served by broker fetches",
                &[],
            ),
            retention_dropped: registry.counter(
                "stream_retention_dropped_records_total",
                "Records expired by retention enforcement",
                &[],
            ),
            retained_bytes: registry.gauge(
                "stream_retained_bytes",
                "Bytes currently retained across all topics",
                &[],
            ),
            produce_retry: RetryMetrics::new(registry, "produce"),
            fetch_retry: RetryMetrics::new(registry, "fetch"),
            leader_elections: registry.counter(
                "stream_leader_elections_total",
                "Partition leader elections after a node crash",
                &[],
            ),
            isr_shrinks: registry.counter(
                "stream_isr_shrinks_total",
                "Replicas dropped from a partition's in-sync set",
                &[],
            ),
            lag: Mutex::new(HashMap::new()),
            replica_lag: Mutex::new(HashMap::new()),
            registry: registry.clone(),
        }
    }

    /// The lag gauge for `(group, topic, partition)`, creating and
    /// caching it on first use.
    pub fn lag_gauge(&self, group: &str, topic: &str, partition: u32) -> Arc<Gauge> {
        let key = (group.to_string(), topic.to_string(), partition);
        let mut cache = self.lag.lock();
        if let Some(g) = cache.get(&key) {
            return Arc::clone(g);
        }
        let part = partition.to_string();
        let g = self.registry.gauge(
            "stream_consumer_lag",
            "Records between a consumer's position and the log end",
            &[("group", group), ("topic", topic), ("partition", &part)],
        );
        cache.insert(key, Arc::clone(&g));
        g
    }

    /// The replica-lag gauge for `(topic, partition, node)`: records
    /// between a follower's log end and its leader's. Created and cached
    /// on first use, like [`StreamMetrics::lag_gauge`].
    pub fn replica_lag_gauge(&self, topic: &str, partition: u32, node: u32) -> Arc<Gauge> {
        let key = (topic.to_string(), partition, node);
        let mut cache = self.replica_lag.lock();
        if let Some(g) = cache.get(&key) {
            return Arc::clone(g);
        }
        let part = partition.to_string();
        let node_s = node.to_string();
        let g = self.registry.gauge(
            "stream_replica_lag",
            "Records between a follower replica's log end and its leader's",
            &[("topic", topic), ("partition", &part), ("node", &node_s)],
        );
        cache.insert(key, Arc::clone(&g));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lag_gauges_are_cached_per_series() {
        let reg = Registry::new();
        let m = StreamMetrics::new(&reg);
        let a = m.lag_gauge("g", "t", 0);
        let b = m.lag_gauge("g", "t", 0);
        a.set(7);
        if oda_obs::enabled() {
            assert_eq!(b.get(), 7);
            assert_eq!(
                reg.gauge_value(
                    "stream_consumer_lag",
                    &[("group", "g"), ("topic", "t"), ("partition", "0")]
                ),
                7
            );
        }
        let other = m.lag_gauge("g", "t", 1);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn replica_lag_gauges_are_cached_per_series() {
        let reg = Registry::new();
        let m = StreamMetrics::new(&reg);
        let a = m.replica_lag_gauge("t", 0, 2);
        let b = m.replica_lag_gauge("t", 0, 2);
        a.set(3);
        if oda_obs::enabled() {
            assert_eq!(b.get(), 3);
            assert_eq!(
                reg.gauge_value(
                    "stream_replica_lag",
                    &[("topic", "t"), ("partition", "0"), ("node", "2")]
                ),
                3
            );
            assert_eq!(reg.counter_value("stream_leader_elections_total", &[]), 0);
        }
        assert_eq!(m.replica_lag_gauge("t", 1, 2).get(), 0);
    }
}
