//! System topology models.
//!
//! Two reference models mirror the paper's anonymized generations in
//! Fig. 3: **Mountain** (Summit-like) and **Compass** (Frontier-like).
//! A small `tiny` model keeps tests fast.

use serde::{Deserialize, Serialize};

/// Static description of one supercomputer generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemModel {
    /// Human-readable system name ("mountain", "compass", ...).
    pub name: String,
    /// Number of cabinets (racks).
    pub cabinets: u32,
    /// Compute nodes per cabinet.
    pub nodes_per_cabinet: u32,
    /// CPU sockets per node.
    pub cpus_per_node: u8,
    /// GPU devices per node (GCDs on dual-die parts).
    pub gpus_per_node: u8,
    /// Idle power draw of one node in watts (all components at rest).
    pub node_idle_watts: f64,
    /// Peak power draw of one node in watts (all components flat out).
    pub node_peak_watts: f64,
    /// GPU share of the node's dynamic (peak - idle) power range.
    pub gpu_dynamic_share: f64,
    /// Nominal facility-side peak power in megawatts, used by the twin.
    pub peak_mw: f64,
    /// Whether the system is liquid cooled (drives the twin's cooling
    /// model and the cabinet cooling-loop sensors).
    pub liquid_cooled: bool,
}

impl SystemModel {
    /// Summit-like generation: 4,608 nodes (256 cabinets x 18), 2 CPUs +
    /// 6 GPUs per node, ~13 MW peak.
    pub fn mountain() -> Self {
        SystemModel {
            name: "mountain".to_string(),
            cabinets: 256,
            nodes_per_cabinet: 18,
            cpus_per_node: 2,
            gpus_per_node: 6,
            node_idle_watts: 750.0,
            node_peak_watts: 2_700.0,
            gpu_dynamic_share: 0.75,
            peak_mw: 13.0,
            liquid_cooled: true,
        }
    }

    /// Frontier-like generation: 9,408 nodes (74 cabinets x ~128), 1 CPU
    /// + 8 GPU dies per node, ~29 MW peak.
    pub fn compass() -> Self {
        SystemModel {
            name: "compass".to_string(),
            cabinets: 74,
            nodes_per_cabinet: 128,
            cpus_per_node: 1,
            gpus_per_node: 8,
            node_idle_watts: 900.0,
            node_peak_watts: 3_400.0,
            gpu_dynamic_share: 0.85,
            peak_mw: 29.0,
            liquid_cooled: true,
        }
    }

    /// Small model for tests: 2 cabinets x 4 nodes.
    pub fn tiny() -> Self {
        SystemModel {
            name: "tiny".to_string(),
            cabinets: 2,
            nodes_per_cabinet: 4,
            cpus_per_node: 1,
            gpus_per_node: 2,
            node_idle_watts: 500.0,
            node_peak_watts: 2_000.0,
            gpu_dynamic_share: 0.8,
            peak_mw: 0.016,
            liquid_cooled: true,
        }
    }

    /// Total compute node count.
    pub fn node_count(&self) -> u32 {
        self.cabinets * self.nodes_per_cabinet
    }

    /// Cabinet index that a global node index belongs to.
    pub fn cabinet_of(&self, node: u32) -> u32 {
        node / self.nodes_per_cabinet
    }

    /// Peak dynamic power range of one node in watts.
    pub fn node_dynamic_watts(&self) -> f64 {
        self.node_peak_watts - self.node_idle_watts
    }

    /// Number of GPU devices in the whole system.
    pub fn gpu_count(&self) -> u64 {
        u64::from(self.node_count()) * u64::from(self.gpus_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mountain_matches_summit_scale() {
        let m = SystemModel::mountain();
        assert_eq!(m.node_count(), 4_608);
        assert_eq!(m.gpu_count(), 27_648);
    }

    #[test]
    fn compass_matches_frontier_scale() {
        let c = SystemModel::compass();
        assert_eq!(c.node_count(), 9_472);
        assert_eq!(c.gpus_per_node, 8);
        assert!(c.node_count() > SystemModel::mountain().node_count());
    }

    #[test]
    fn cabinet_of_partitions_nodes() {
        let s = SystemModel::tiny();
        assert_eq!(s.cabinet_of(0), 0);
        assert_eq!(s.cabinet_of(3), 0);
        assert_eq!(s.cabinet_of(4), 1);
        assert_eq!(s.cabinet_of(7), 1);
    }

    #[test]
    fn dynamic_power_positive() {
        for s in [
            SystemModel::mountain(),
            SystemModel::compass(),
            SystemModel::tiny(),
        ] {
            assert!(s.node_dynamic_watts() > 0.0, "{}", s.name);
        }
    }
}
