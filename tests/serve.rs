//! Operator-plane suite: the HTTP surface under scrape pressure, the
//! health engine's golden render, and the non-perturbation proof.
//!
//! The load-bearing claim mirrors every other obs feature's: attaching
//! the health engine and running N concurrent `/metrics` + `/healthz`
//! scrapers against a live chaos run must not change a single byte of
//! Gold output. Scrapes are reads; reads don't tick logical time; the
//! data plane cannot tell whether anyone is watching.
//!
//! The golden fixture `tests/golden/healthz.json` pins the health
//! render for a scripted observation sequence. On drift the actual
//! bytes land in `target/healthz-actual.json` (CI uploads them);
//! re-bless with `ODA_BLESS=1 cargo test --test serve`.

use bytes::Bytes;
use oda::faults::{FaultClass, FaultPlan, FaultPoint, Retry, Retryable};
use oda::obs::{render_health_json, HealthEngine, MetricsSnapshot, Registry, Tracer, Verdict};
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::frame_io::frame_to_colfile;
use oda::pipeline::medallion::{observation_decoder, streaming_silver_transform};
use oda::pipeline::ops::{group_by, Agg, AggSpec};
use oda::pipeline::streaming::MemorySink;
use oda::pipeline::{Frame, StreamingQuery};
use oda::serve::{serve, Endpoints, ServerConfig};
use oda::stream::{Broker, Consumer, RetentionPolicy};
use oda::telemetry::record::Observation;
use oda::telemetry::system::SystemModel;
use oda::telemetry::{SensorCatalog, TelemetryGenerator};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const TOPIC: &str = "bronze";
const BATCHES: usize = 80;
const MAX_RECORDS: usize = 5;
const MAX_RESTARTS: usize = 60;
const SCRAPERS: usize = 8;

// ---------------------------------------------------------------------
// Shared harness (mirrors tests/chaos.rs)
// ---------------------------------------------------------------------

fn seeded_broker() -> (Arc<Broker>, SensorCatalog) {
    let mut generator = TelemetryGenerator::new(SystemModel::tiny(), 7);
    let broker = Broker::new();
    broker
        .create_topic(TOPIC, 2, RetentionPolicy::unbounded())
        .unwrap();
    for _ in 0..BATCHES {
        let batch = generator.next_batch();
        let payload = Observation::encode_batch(&batch.observations);
        broker
            .produce(
                TOPIC,
                batch.ts_ms,
                Some(Bytes::from("all")),
                Bytes::from(payload),
            )
            .unwrap();
    }
    (broker, generator.catalog().clone())
}

fn gold_reduction(sink: &MemorySink) -> Frame {
    let silver = sink.concat().unwrap();
    group_by(
        &silver,
        &["node", "sensor"],
        &[
            AggSpec::new("mean", Agg::Mean, "day_mean"),
            AggSpec::new("count", Agg::Sum, "samples"),
        ],
    )
    .unwrap()
}

/// The chaos supervisor loop, optionally instrumented and optionally
/// ticking a health engine once per committed epoch (the serve-side
/// data-plane idiom this suite is proving safe).
fn run_pipeline(
    plan: Option<Arc<FaultPlan>>,
    workers: usize,
    metrics: Option<&Registry>,
    tracer: Option<&Tracer>,
    health: Option<&Arc<Mutex<HealthEngine>>>,
) -> (MemorySink, usize) {
    let (broker, catalog) = seeded_broker();
    let checkpoints = CheckpointStore::new();
    if let Some(p) = &plan {
        broker.arm_faults(p.clone() as Arc<dyn FaultPoint>);
        checkpoints.arm_faults(p.clone() as Arc<dyn FaultPoint>);
    }
    if let Some(reg) = metrics {
        broker.attach_metrics(reg);
        if let Some(p) = &plan {
            p.attach_metrics(reg);
        }
    }
    if let Some(tr) = tracer {
        broker.attach_tracer(tr);
        if let Some(p) = &plan {
            p.attach_tracer(tr);
        }
    }
    let mut sink = MemorySink::new();
    let mut restarts = 0;
    'supervise: loop {
        let consumer = Consumer::subscribe(broker.clone(), "serve", TOPIC)
            .unwrap()
            .with_retry(Retry::with_attempts(25));
        let mut builder = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(catalog.clone()))
            .transform(streaming_silver_transform(15_000, 0))
            .checkpoints(checkpoints.clone())
            .max_records(MAX_RECORDS)
            .workers(workers);
        if let Some(reg) = metrics {
            builder = builder.metrics(reg);
        }
        if let Some(tr) = tracer {
            builder = builder.tracer(tr).trace_name("serve");
        }
        if let Some(p) = &plan {
            builder = builder.faults(p.clone() as Arc<dyn FaultPoint>);
        }
        let mut query = builder.build().unwrap();
        loop {
            match query.run_once(&mut sink) {
                Ok(0) => break 'supervise,
                Ok(_) => {
                    if let (Some(engine), Some(reg)) = (health, metrics) {
                        engine.lock().unwrap().observe(reg);
                    }
                }
                Err(e) => {
                    assert_eq!(
                        e.fault_class(),
                        FaultClass::Fatal,
                        "only fatal faults may escape the retry envelope: {e}"
                    );
                    restarts += 1;
                    assert!(restarts <= MAX_RESTARTS, "recovery failed to converge");
                    continue 'supervise;
                }
            }
        }
    }
    (sink, restarts)
}

/// One raw GET; returns (status, content-type, body).
fn fetch(addr: SocketAddr, path: &str) -> Option<(u16, String, String)> {
    let mut s = TcpStream::connect(addr).ok()?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").ok()?;
    let mut raw = String::new();
    s.read_to_string(&mut raw).ok()?;
    let status = raw.split_whitespace().nth(1)?.parse().ok()?;
    let content_type = raw
        .lines()
        .find_map(|l| l.strip_prefix("Content-Type: "))
        .unwrap_or("")
        .to_string();
    let body = raw.split_once("\r\n\r\n")?.1.to_string();
    Some((status, content_type, body))
}

// ---------------------------------------------------------------------
// Concurrent scrapes vs. chaos byte-identity
// ---------------------------------------------------------------------

/// N parallel `/metrics` + `/healthz` clients during a chaos-seeded
/// 8-worker run: every response must be valid exposition/JSON, and the
/// Gold reduction must stay byte-identical to the bare, unwatched run.
#[test]
fn concurrent_scrapes_do_not_perturb_gold() {
    let (baseline_sink, _) = run_pipeline(None, 1, None, None, None);
    let baseline_gold = frame_to_colfile(&gold_reduction(&baseline_sink)).unwrap();

    // CI runs a fixed-seed matrix by exporting CHAOS_SEED; locally the
    // default trio runs in one pass.
    let seeds: Vec<u64> = match std::env::var("CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("CHAOS_SEED must be a u64")],
        Err(_) => vec![11, 29, 4242],
    };
    for seed in seeds {
        let registry = Registry::new();
        let tracer = Tracer::new();
        let engine = Arc::new(Mutex::new(HealthEngine::with_defaults()));
        let endpoints = Endpoints::new()
            .with_registry(&registry)
            .with_health(Arc::clone(&engine))
            .with_tracer(&tracer);
        let server = serve(endpoints, "127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.addr();

        let stop = Arc::new(AtomicBool::new(false));
        let scrapers: Vec<_> = (0..SCRAPERS)
            .map(|i| {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut problems: Vec<String> = Vec::new();
                    let mut scrapes = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let path = if (i + scrapes).is_multiple_of(2) {
                            "/metrics"
                        } else {
                            "/healthz"
                        };
                        match fetch(addr, path) {
                            // Load-shedding is a correct answer under
                            // pressure; bodies are only validated on 200.
                            Some((503, _, _)) => {}
                            Some((200, ct, body)) => match path {
                                "/metrics" => {
                                    // An empty registry renders an empty
                                    // exposition — valid until the first
                                    // family registers.
                                    if !ct.starts_with("text/plain")
                                        || !(body.is_empty() || body.contains("# TYPE"))
                                    {
                                        problems.push(format!("bad exposition from {path}: {ct}"));
                                    }
                                }
                                _ => {
                                    if ct != "application/json" || !body.contains("\"overall\"") {
                                        problems.push(format!("bad health JSON: {ct}"));
                                    }
                                }
                            },
                            Some((status, _, _)) => {
                                problems.push(format!("{path} -> HTTP {status}"));
                            }
                            // Connection-level hiccups (e.g. accept racing
                            // shutdown) are not a protocol violation.
                            None => {}
                        }
                        scrapes += 1;
                    }
                    (scrapes, problems)
                })
            })
            .collect();

        let plan = Arc::new(FaultPlan::chaos(seed));
        let (sink, _) = run_pipeline(Some(plan), 8, Some(&registry), Some(&tracer), Some(&engine));

        stop.store(true, Ordering::Relaxed);
        let mut total_scrapes = 0;
        for s in scrapers {
            let (scrapes, problems) = s.join().expect("scraper joins");
            assert!(problems.is_empty(), "seed {seed}: {problems:?}");
            total_scrapes += scrapes;
        }
        server.shutdown();
        assert!(
            total_scrapes >= SCRAPERS,
            "seed {seed}: scrapers barely ran ({total_scrapes})"
        );

        let gold = frame_to_colfile(&gold_reduction(&sink)).unwrap();
        assert_eq!(
            gold, baseline_gold,
            "seed {seed}: scrape pressure + health engine changed Gold bytes"
        );
        // The engine genuinely ran: one tick per committed epoch.
        assert_eq!(
            engine.lock().unwrap().last_report().tick,
            sink.epochs() as u64,
            "seed {seed}: health ticks must match committed epochs"
        );
    }
}

// ---------------------------------------------------------------------
// Golden healthz fixture
// ---------------------------------------------------------------------

/// Scripted observation sequence for the golden: six ticks of clean
/// traffic, then four ticks of retry exhaustion — the render must show
/// the stream plane degraded and carry exact burn numbers. Built from
/// hand-made snapshots, so it is identical with collection compiled
/// out (the engine is pure arithmetic over the snapshot values).
fn scripted_report() -> oda::obs::HealthReport {
    let mut engine = HealthEngine::with_defaults();
    let mut last = engine.last_report();
    assert_eq!(last.tick, 0, "fresh engine starts at tick zero");
    let mk = |produced: u64, fetched: u64, exhausted: u64, lag: i64| {
        let mut s = MetricsSnapshot::default();
        let mut c = |name: &str, v: u64| {
            s.counters.insert((name.to_string(), Vec::new()), v);
        };
        c("stream_produce_records_total", produced);
        c("stream_fetch_records_total", fetched);
        c("retry_exhausted_total", exhausted);
        c("pipeline_epochs_total", produced / 100);
        c("pipeline_records_total", fetched);
        s.gauges.insert(
            (
                "stream_consumer_lag".to_string(),
                vec![
                    ("group".to_string(), "g".to_string()),
                    ("partition".to_string(), "0".to_string()),
                    ("topic".to_string(), TOPIC.to_string()),
                ],
            ),
            lag,
        );
        s
    };
    let mut produced = 0;
    let mut fetched = 0;
    let mut exhausted = 0;
    for _ in 0..6 {
        produced += 100;
        fetched += 100;
        last = engine.observe_snapshot(mk(produced, fetched, exhausted, 40));
        assert_eq!(last.overall, Verdict::Healthy);
    }
    for _ in 0..4 {
        produced += 80;
        fetched += 80;
        exhausted += 20;
        last = engine.observe_snapshot(mk(produced, fetched, exhausted, 900));
    }
    assert_ne!(last.overall, Verdict::Healthy, "exhaustion must burn");
    last
}

#[test]
fn healthz_render_matches_golden() {
    let actual = render_health_json(&scripted_report());
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let fixture = root.join("tests/golden/healthz.json");
    if std::env::var("ODA_BLESS").is_ok() {
        std::fs::write(&fixture, &actual).expect("bless healthz fixture");
        return;
    }
    let expected = std::fs::read_to_string(&fixture).unwrap_or_else(|_| {
        panic!(
            "missing {}; run with ODA_BLESS=1 to create it",
            fixture.display()
        )
    });
    if actual != expected {
        let out = root.join("target/healthz-actual.json");
        let _ = std::fs::write(&out, &actual);
        panic!(
            "health render drifted from tests/golden/healthz.json; \
             actual written to {} (ODA_BLESS=1 to re-bless)",
            out.display()
        );
    }
}

/// The scripted sequence flips the stream plane's verdict — pinned
/// beyond the byte level so a re-bless can't silently lose the story.
#[test]
fn scripted_sequence_flips_stream_verdict() {
    let report = scripted_report();
    let delivery = report
        .objectives
        .iter()
        .find(|o| o.name == "stream-delivery")
        .expect("stock objective present");
    assert_ne!(delivery.verdict, Verdict::Healthy);
    assert!(delivery.burn_short_pct >= 100);
    let stream = report
        .subsystems
        .iter()
        .find(|s| s.subsystem == oda::obs::Subsystem::Stream)
        .unwrap();
    assert_ne!(stream.verdict, Verdict::Healthy);
    assert_eq!(stream.saturation, 900, "lag gauge feeds USE saturation");
}

// ---------------------------------------------------------------------
// Endpoint smoke
// ---------------------------------------------------------------------

/// Every endpoint answers with the right status and content type over
/// a real socket (the same tour the CI serve-smoke job runs).
#[test]
fn every_endpoint_answers_with_correct_content_type() {
    let registry = Registry::new();
    registry.counter("smoke_total", "smoke", &[]).inc();
    let tracer = Tracer::new();
    let engine = Arc::new(Mutex::new(HealthEngine::with_defaults()));
    let endpoints = Endpoints::new()
        .with_registry(&registry)
        .with_health(Arc::clone(&engine))
        .with_tracer(&tracer)
        .with_alerts(Arc::new(String::new))
        .with_bench(Arc::new(|| "{\"schema\":\"test\"}".to_string()));
    let server = serve(endpoints, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.addr();

    let expectations: [(&str, u16, &str); 6] = [
        ("/", 200, "text/plain"),
        ("/metrics", 200, "text/plain; version=0.0.4"),
        ("/healthz", 200, "application/json"),
        ("/trace/spans", 200, "application/x-ndjson"),
        ("/alerts", 200, "application/x-ndjson"),
        ("/bench", 200, "application/json"),
    ];
    for (path, want_status, want_ct) in expectations {
        let (status, ct, _) = fetch(addr, path).expect("endpoint answers");
        assert_eq!(status, want_status, "{path}");
        assert!(ct.starts_with(want_ct), "{path}: {ct}");
    }
    // Parameterized routes: missing args and unknown digests are 4xx,
    // not 500s or hangs.
    let (status, _, _) = fetch(addr, "/trace/critical-path").unwrap();
    assert_eq!(status, 400);
    let (status, _, _) = fetch(addr, "/lineage/digest/00ff").unwrap();
    assert_eq!(status, 404);
    let (status, _, _) = fetch(addr, "/nope").unwrap();
    assert_eq!(status, 404);
    server.shutdown();
}

/// `/lineage/digest/<gold>` walks the real provenance of a chaos run:
/// the Gold digest's ancestors reach back to Silver frames.
#[test]
fn lineage_endpoint_serves_gold_ancestry() {
    if !oda::obs::enabled() {
        return; // lineage recording is compiled out
    }
    let registry = Registry::new();
    let tracer = Tracer::new();
    let (sink, _) = run_pipeline(None, 2, Some(&registry), Some(&tracer), None);
    let gold = gold_reduction(&sink);
    let gold_bytes = frame_to_colfile(&gold).unwrap();
    let digest = oda::obs::fnv1a(&gold_bytes);
    tracer.link(
        oda::obs::LineageNode::Frame {
            stage: "silver".into(),
            epoch: 0,
            digest: 1,
            rows: sink.total_rows() as u64,
        },
        oda::obs::LineageNode::Derived {
            name: "gold-day".into(),
            digest,
            rows: gold.rows() as u64,
        },
        "reduce",
    );

    let endpoints = Endpoints::new().with_tracer(&tracer);
    let server = serve(endpoints, "127.0.0.1:0", ServerConfig::default()).expect("bind");
    let (status, ct, body) =
        fetch(server.addr(), &format!("/lineage/digest/{digest:016x}")).expect("lineage answers");
    assert_eq!(status, 200);
    assert_eq!(ct, "application/json");
    assert!(body.contains(&format!("{digest:016x}")));
    assert!(body.contains("\"ancestors\""), "{body}");
    assert!(body.contains("silver"), "gold must trace back to silver");
    server.shutdown();
}
