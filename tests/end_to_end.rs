//! End-to-end integration: facility → STREAM → Silver → applications.
//!
//! Exercises the full hourglass of the paper's §V in one process:
//! telemetry generation, broker transport, streaming refinement with a
//! crash in the middle, profile contextualization, and the LVA index —
//! asserting agreement between the streaming path and a batch re-run.

use oda::analytics::lva::LvaIndex;
use oda::analytics::profiles::extract_profiles;
use oda::core::config::FacilityConfig;
use oda::core::facility::Facility;
use oda::core::ingest::topics;
use oda::faults::FaultPlan;
use oda::pipeline::checkpoint::CheckpointStore;
use oda::pipeline::medallion::{
    bronze_frame, bronze_to_silver_plan, job_context_frame, observation_decoder,
    streaming_silver_transform,
};
use oda::pipeline::ops::{group_by, Agg, AggSpec};
use oda::pipeline::streaming::{MemorySink, StreamingQuery};
use oda::pipeline::window::assign_window;
use oda::stream::Consumer;
use oda::telemetry::record::Observation;
use oda::telemetry::SensorCatalog;

fn collected_facility(seed: u64, ticks: usize) -> Facility {
    let mut config = FacilityConfig::tiny(seed);
    config.tick_ms = 15_000;
    config.workload.duration_scale = 0.25;
    config.workload.mean_interarrival_s = 300.0;
    let mut facility = Facility::build(config);
    facility.run(ticks);
    facility
}

fn run_silver(facility: &Facility, crash_at: Option<u64>) -> oda::pipeline::Frame {
    let system = facility.systems()[0].clone();
    let (bronze, _, _) = topics(&system.name);
    let catalog = SensorCatalog::for_system(&system);
    let checkpoints = CheckpointStore::new();
    let mut sink = MemorySink::new();
    {
        let consumer = Consumer::subscribe(facility.broker(), "e2e", &bronze).unwrap();
        let mut builder = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(catalog.clone()))
            .transform(streaming_silver_transform(15_000, 0))
            .checkpoints(checkpoints.clone())
            .max_records(50);
        if let Some(epoch) = crash_at {
            builder = builder.faults(std::sync::Arc::new(FaultPlan::crash_after_sink([epoch])));
        }
        let mut query = builder.build().unwrap();
        if crash_at.is_some() {
            // Run until the injected crash fires.
            loop {
                match query.run_once(&mut sink) {
                    Ok(0) => break,
                    Ok(_) => {}
                    Err(_) => break, // crash
                }
            }
        } else {
            query.run_to_completion(&mut sink).unwrap();
        }
    }
    // Recover (a fresh query against the same checkpoints) and finish.
    let consumer = Consumer::subscribe(facility.broker(), "e2e", &bronze).unwrap();
    let mut query = StreamingQuery::builder()
        .source(consumer)
        .decoder(observation_decoder(catalog))
        .transform(streaming_silver_transform(15_000, 0))
        .checkpoints(checkpoints)
        .max_records(50)
        .build()
        .unwrap();
    query.run_to_completion(&mut sink).unwrap();
    sink.concat().unwrap()
}

#[test]
fn streaming_crash_recovery_is_exactly_once_end_to_end() {
    let facility_a = collected_facility(31, 480);
    let facility_b = collected_facility(31, 480);
    // Same facility seed: identical bronze. One pipeline crashes mid-run.
    let clean = run_silver(&facility_a, None);
    let crashed = run_silver(&facility_b, Some(3));
    assert!(clean.rows() > 0);
    // The crash-recovered silver must equal the clean run row-for-row
    // after sorting (epoch boundaries differ, content must not).
    let key = |f: &oda::pipeline::Frame| {
        let w = f.i64s("window").unwrap();
        let n = f.i64s("node").unwrap();
        let s = f.cat("sensor").unwrap();
        let m = f.f64s("mean").unwrap();
        let mut rows: Vec<(i64, i64, String, u64)> = (0..f.rows())
            .map(|i| (w[i], n[i], s.get(i).to_string(), m[i].to_bits()))
            .collect();
        rows.sort();
        rows
    };
    assert_eq!(
        key(&clean),
        key(&crashed),
        "crash recovery changed the silver product"
    );
}

#[test]
fn streaming_and_batch_silver_agree() {
    let facility = collected_facility(37, 240);
    let system = facility.systems()[0].clone();
    let catalog = SensorCatalog::for_system(&system);
    // Streaming path.
    let streaming = run_silver(&facility, None);
    // Batch path: re-consume bronze into one big frame, run the batch plan.
    let (bronze_topic, _, _) = topics(&system.name);
    let mut consumer = Consumer::subscribe(facility.broker(), "batch", &bronze_topic).unwrap();
    let mut all = Vec::new();
    loop {
        let recs = consumer.poll(1_000).unwrap();
        if recs.is_empty() {
            break;
        }
        for r in recs {
            all.extend(Observation::decode_batch(&r.value).unwrap());
        }
    }
    let bronze = bronze_frame(&all, &catalog);
    let mask = oda::pipeline::Expr::col("quality")
        .eq_(oda::pipeline::Expr::LitI(0))
        .and(oda::pipeline::Expr::col("value").is_nan().not())
        .eval_mask(&bronze)
        .unwrap();
    let good = bronze.filter_mask(&mask);
    let windowed = assign_window(&good, "ts_ms", 15_000).unwrap();
    let batch = group_by(
        &windowed,
        &["window", "node", "sensor"],
        &[AggSpec::new("value", Agg::Mean, "mean")],
    )
    .unwrap();
    // Compare cells present in the streaming output (the batch run also
    // contains the final, unclosed windows the watermark held back).
    let mut batch_cells = std::collections::HashMap::new();
    let (bw, bn, bs, bm) = (
        batch.i64s("window").unwrap(),
        batch.i64s("node").unwrap(),
        batch.cat("sensor").unwrap(),
        batch.f64s("mean").unwrap(),
    );
    for i in 0..batch.rows() {
        batch_cells.insert((bw[i], bn[i], bs.get(i).to_string()), bm[i]);
    }
    let (sw, sn, ss, sm) = (
        streaming.i64s("window").unwrap(),
        streaming.i64s("node").unwrap(),
        streaming.cat("sensor").unwrap(),
        streaming.f64s("mean").unwrap(),
    );
    assert!(streaming.rows() > 100);
    for i in 0..streaming.rows() {
        let batch_mean = batch_cells
            .get(&(sw[i], sn[i], ss.get(i).to_string()))
            .unwrap_or_else(|| panic!("cell missing in batch: {} {} {}", sw[i], sn[i], ss.get(i)));
        assert!(
            (batch_mean - sm[i]).abs() < 1e-9,
            "cell ({}, {}, {}): batch {} vs streaming {}",
            sw[i],
            sn[i],
            ss.get(i),
            batch_mean,
            sm[i]
        );
    }
}

#[test]
fn profiles_flow_into_lva() {
    let facility = collected_facility(41, 960);
    let silver = run_silver(&facility, None);
    let jobs = facility.jobs(0).to_vec();
    let profiles = extract_profiles(&silver, &jobs, 15_000).unwrap();
    assert!(!profiles.is_empty(), "no profiles from {} jobs", jobs.len());
    let n = profiles.len();
    let idx = LvaIndex::build(profiles);
    assert_eq!(idx.len(), n);
    // Interactive range query returns plausible summaries.
    let rows = idx.query_range(0, facility.now_ms());
    assert_eq!(rows.len(), n);
    for r in &rows {
        assert!(
            r.mean_w > 300.0 && r.mean_w < 3_000.0,
            "job {} mean {}",
            r.job_id,
            r.mean_w
        );
        assert!(r.peak_w >= r.mean_w * 0.99);
        assert!(r.energy_kwh >= 0.0);
    }
    // The system power series covers the run.
    let series = idx.system_power_series(0, facility.now_ms(), 60_000);
    assert!(!series.is_empty());
}

#[test]
fn batch_plan_on_real_bronze_produces_wide_silver() {
    let facility = collected_facility(43, 120);
    let system = facility.systems()[0].clone();
    let catalog = SensorCatalog::for_system(&system);
    let (bronze_topic, _, _) = topics(&system.name);
    let mut consumer = Consumer::subscribe(facility.broker(), "plan", &bronze_topic).unwrap();
    let mut all = Vec::new();
    loop {
        let recs = consumer.poll(1_000).unwrap();
        if recs.is_empty() {
            break;
        }
        for r in recs {
            all.extend(Observation::decode_batch(&r.value).unwrap());
        }
    }
    let bronze = bronze_frame(&all, &catalog);
    let jobs = facility.jobs(0).to_vec();
    let plan = bronze_to_silver_plan(15_000, job_context_frame(&jobs));
    if jobs.is_empty() {
        return; // nothing scheduled in 30 min — the join would be empty
    }
    let silver = plan.execute(bronze).unwrap();
    // Wide format: sensor names became columns; job context joined.
    assert!(silver.index_of("node_power_w").is_ok());
    assert!(silver.index_of("job").is_ok());
    assert!(silver.index_of("archetype").is_ok());
}
