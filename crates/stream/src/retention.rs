//! Retention policies for the STREAM tier.
//!
//! Fig. 5 of the paper gives each tier a class-specific retention time;
//! the STREAM tier keeps in-flight data for days. Policies bound a
//! partition by age and/or bytes; enforcement drops whole sealed
//! segments from the front of the log.

use serde::{Deserialize, Serialize};

/// Age/size bounds on one partition's log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// Maximum record age in milliseconds (`None` = unbounded).
    pub max_age_ms: Option<i64>,
    /// Maximum retained bytes per partition (`None` = unbounded).
    pub max_bytes: Option<usize>,
}

impl RetentionPolicy {
    /// Keep everything forever (useful in tests and for audit topics).
    pub fn unbounded() -> Self {
        RetentionPolicy {
            max_age_ms: None,
            max_bytes: None,
        }
    }

    /// The paper's STREAM-tier default: 7 days, 1 GiB per partition.
    pub fn stream_default() -> Self {
        RetentionPolicy {
            max_age_ms: Some(7 * 86_400_000),
            max_bytes: Some(1024 * 1024 * 1024),
        }
    }

    /// Age-only policy.
    pub fn max_age_ms(ms: i64) -> Self {
        RetentionPolicy {
            max_age_ms: Some(ms),
            max_bytes: None,
        }
    }

    /// Size-only policy.
    pub fn max_bytes(bytes: usize) -> Self {
        RetentionPolicy {
            max_age_ms: None,
            max_bytes: Some(bytes),
        }
    }
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        RetentionPolicy::stream_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crate::consumer::Consumer;
    use crate::partition::Partition;
    use bytes::Bytes;

    #[test]
    fn constructors() {
        assert_eq!(RetentionPolicy::unbounded().max_age_ms, None);
        assert_eq!(RetentionPolicy::max_age_ms(10).max_age_ms, Some(10));
        assert_eq!(RetentionPolicy::max_bytes(10).max_bytes, Some(10));
        let d = RetentionPolicy::default();
        assert_eq!(d.max_age_ms, Some(7 * 86_400_000));
    }

    /// One record per segment: segment_bytes=1 seals after every append.
    fn single_record_segments(policy: RetentionPolicy, timestamps: &[i64]) -> Partition {
        let mut p = Partition::with_segment_bytes(policy, 1);
        for &ts in timestamps {
            p.append(ts, None, Bytes::from_static(b"x"));
        }
        p
    }

    #[test]
    fn segment_exactly_at_age_cutoff_survives() {
        let mut p = single_record_segments(RetentionPolicy::max_age_ms(10_000), &[0, 1_000, 2_000]);
        // Age == max_age is NOT expired (the bound is strict): at
        // now=10_000 the ts=0 segment is exactly at the cutoff.
        assert_eq!(p.enforce_retention(10_000), 0);
        assert_eq!(p.earliest_offset(), 0);
        // One millisecond past the cutoff it goes — and only it.
        assert_eq!(p.enforce_retention(10_001), 1);
        assert_eq!(p.earliest_offset(), 1);
        assert_eq!(p.latest_offset(), 3);
    }

    #[test]
    fn size_exactly_at_cap_survives() {
        // 3 records of byte_size 17 each (16 header + 1 payload) = 51.
        let mut p = single_record_segments(RetentionPolicy::max_bytes(51), &[0, 0, 0]);
        assert_eq!(p.bytes(), 51);
        // total == max is NOT over the cap (the bound is strict).
        assert_eq!(p.enforce_retention(0), 0);
        // Lower the cap below the total via a fresh partition: drops
        // oldest segments until back under.
        let mut p = single_record_segments(RetentionPolicy::max_bytes(50), &[0, 0, 0]);
        assert_eq!(p.enforce_retention(0), 1);
        assert_eq!(p.bytes(), 34);
    }

    #[test]
    fn empty_topic_compaction_is_a_safe_noop() {
        let b = Broker::new();
        b.create_topic("empty", 4, RetentionPolicy::max_age_ms(1))
            .unwrap();
        assert_eq!(b.enforce_retention(i64::MAX / 2), 0);
        let t = b.topic("empty").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.earliest_offset(0).unwrap(), 0);
        assert_eq!(t.latest_offset(0).unwrap(), 0);
        // Still writable and readable after the no-op compaction.
        t.produce(0, None, Bytes::from_static(b"v"));
        assert_eq!(t.fetch(0, 0, 10).unwrap().len(), 1);
    }

    #[test]
    fn reopen_after_truncation_resumes_at_horizon() {
        let mut p = single_record_segments(RetentionPolicy::max_age_ms(5_000), &[0; 10]);
        for (i, &ts) in [6_000i64, 7_000, 8_000].iter().enumerate() {
            let _ = i;
            p.append(ts, None, Bytes::from_static(b"x"));
        }
        assert!(p.enforce_retention(10_000) > 0);
        let earliest = p.earliest_offset();
        assert!(earliest > 0);
        // A reader parked below the horizon gets a reset error naming
        // the new earliest offset...
        let err = p.fetch(0, 10).unwrap_err();
        match err {
            crate::StreamError::OffsetOutOfRange {
                earliest: e,
                requested,
                ..
            } => {
                assert_eq!(e, earliest);
                assert_eq!(requested, 0);
            }
            other => panic!("expected OffsetOutOfRange, got {other:?}"),
        }
        // ...and reopening at the horizon reads the retained suffix.
        let recs = p.fetch(earliest, 100).unwrap();
        assert_eq!(recs.first().unwrap().offset, earliest);
        assert_eq!(recs.last().unwrap().offset, p.latest_offset() - 1);
    }

    #[test]
    fn consumer_skips_forward_over_truncated_range() {
        // Big payloads roll the broker's 4 MiB default segments so size
        // retention has sealed segments to drop.
        let b = Broker::new();
        b.create_topic("big", 1, RetentionPolicy::max_bytes(2 * 1024 * 1024))
            .unwrap();
        let mut c = Consumer::subscribe(b.clone(), "g", "big").unwrap();
        for i in 0..8 {
            b.produce("big", i, None, Bytes::from(vec![0u8; 1024 * 1024]))
                .unwrap();
        }
        assert!(b.enforce_retention(0) > 0, "size retention must trip");
        let t = b.topic("big").unwrap();
        let earliest = t.earliest_offset(0).unwrap();
        assert!(earliest > 0);
        // The consumer still sits at offset 0; its next poll transparently
        // resumes at the horizon instead of erroring out forever.
        let recs = c.poll(100).unwrap();
        assert_eq!(recs.first().unwrap().offset, earliest);
        assert_eq!(c.position(0), Some(t.latest_offset(0).unwrap()));
    }
}
