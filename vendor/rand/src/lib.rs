//! Offline stand-in for the `rand` crate.
//!
//! Implements the slice of the rand 0.10 API this workspace uses:
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64),
//! [`SeedableRng::seed_from_u64`], the [`RngExt`] extension methods
//! (`random`, `random_range`, `random_bool`, `fill_bytes`) and
//! [`seq::SliceRandom::shuffle`]. Output streams differ from upstream
//! rand, but every consumer in this workspace only requires seeded
//! determinism, not a specific stream.

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Rngs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for StdRng).
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and standalone PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Advance and return the next value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }
}

/// Types producible uniformly at random from an RNG.
pub trait Random: Sized {
    /// Draw one value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64
                // per draw, immaterial for simulation workloads.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return <$t as Random>::random_from(rng);
                }
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                if span > u128::from(u64::MAX) {
                    return <$t as Random>::random_from(rng);
                }
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as u64;
                (start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = f64::random_from(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        let u = f32::random_from(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience extension methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Uniform value from a range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fill a byte slice (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Alias kept for call sites written against the historical trait name.
pub use RngExt as Rng;

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_interval_and_ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let u = rng.random_range(10u32..20);
            assert!((10..20).contains(&u));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let x = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&x));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "10 buckets in 1000 draws");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }

    #[test]
    fn fill_bytes_fills_odd_lengths() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
