//! Error type for pipeline operations.

use oda_faults::{FaultClass, FaultKind, Retryable};
use oda_storage::StorageError;
use oda_stream::StreamError;
use std::fmt;

/// Errors from frame operations, plans, and streaming queries.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A referenced column does not exist.
    ColumnNotFound(String),
    /// A column had an unexpected type for the operation.
    TypeMismatch {
        /// Column name.
        column: String,
        /// What the operation needed.
        expected: String,
    },
    /// Frame construction with ragged column lengths.
    RaggedColumns,
    /// Underlying broker error.
    Stream(StreamError),
    /// Underlying storage error.
    Storage(StorageError),
    /// Malformed payload on the stream.
    Decode(String),
    /// An armed fault plan fired (crash after sink, lost checkpoint, ...).
    Injected(FaultKind),
    /// A checkpoint commit would break epoch density.
    CheckpointGap {
        /// The epoch the store expected next.
        expected: u64,
        /// The epoch that was offered.
        got: u64,
    },
    /// A `StreamingQueryBuilder::build` rejected the configuration.
    InvalidQuery(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::ColumnNotFound(c) => write!(f, "column {c:?} not found"),
            PipelineError::TypeMismatch { column, expected } => {
                write!(f, "column {column:?} is not {expected}")
            }
            PipelineError::RaggedColumns => write!(f, "columns have differing lengths"),
            PipelineError::Stream(e) => write!(f, "stream: {e}"),
            PipelineError::Storage(e) => write!(f, "storage: {e}"),
            PipelineError::Decode(m) => write!(f, "decode: {m}"),
            PipelineError::Injected(k) => write!(f, "injected fault: {k}"),
            PipelineError::CheckpointGap { expected, got } => write!(
                f,
                "checkpoint epochs must be dense: expected {expected}, got {got}"
            ),
            PipelineError::InvalidQuery(m) => write!(f, "invalid streaming query: {m}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl Retryable for PipelineError {
    fn fault_class(&self) -> FaultClass {
        match self {
            PipelineError::Stream(e) => e.fault_class(),
            PipelineError::Injected(k) => k.class(),
            // Structural errors: a retry re-runs the same failing logic.
            PipelineError::ColumnNotFound(_)
            | PipelineError::TypeMismatch { .. }
            | PipelineError::RaggedColumns
            | PipelineError::Storage(_)
            | PipelineError::Decode(_)
            | PipelineError::CheckpointGap { .. }
            | PipelineError::InvalidQuery(_) => FaultClass::Fatal,
        }
    }
}

impl From<StreamError> for PipelineError {
    fn from(e: StreamError) -> Self {
        PipelineError::Stream(e)
    }
}

impl From<StorageError> for PipelineError {
    fn from(e: StorageError) -> Self {
        PipelineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: PipelineError = StreamError::UnknownTopic("t".into()).into();
        assert!(e.to_string().contains("stream"));
        let e: PipelineError = StorageError::NotFound("x".into()).into();
        assert!(e.to_string().contains("storage"));
        assert!(PipelineError::ColumnNotFound("c".into())
            .to_string()
            .contains("c"));
    }
}
