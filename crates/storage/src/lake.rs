//! LAKE — online time-partitioned store for real-time queries.
//!
//! The paper uses Apache Druid / ElasticSearch for "real-time diagnostics
//! and debugging" (§V-B): low-latency queries over recent time-series.
//! This implementation partitions points into fixed-width time segments
//! keyed by series name, so range queries touch only the covered
//! segments and retention drops whole segments.

use crate::metrics::LakeMetrics;
use oda_obs::{trace_id, trace_span, Registry, TraceEventKind, Tracer, SERVICE_TRACE};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashMap};

/// One data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Timestamp (ms).
    pub ts_ms: i64,
    /// Value.
    pub value: f64,
}

#[derive(Default)]
struct SegmentData {
    /// series -> points in insertion order (sorted on query).
    series: HashMap<String, Vec<Point>>,
    points: usize,
}

/// Time-partitioned series store.
pub struct Lake {
    /// segment start ms -> segment.
    segments: RwLock<BTreeMap<i64, SegmentData>>,
    segment_ms: i64,
    retention_ms: i64,
    metrics: RwLock<Option<LakeMetrics>>,
    tracer: RwLock<Option<Tracer>>,
}

impl Lake {
    /// Create with 1-hour segments and the paper's LAKE-class retention
    /// (weeks; 30 days here).
    pub fn new() -> Lake {
        Lake::with_layout(3_600_000, 30 * 86_400_000)
    }

    /// Create with explicit segment width and retention.
    pub fn with_layout(segment_ms: i64, retention_ms: i64) -> Lake {
        assert!(segment_ms > 0);
        Lake {
            segments: RwLock::new(BTreeMap::new()),
            segment_ms,
            retention_ms,
            metrics: RwLock::new(None),
            tracer: RwLock::new(None),
        }
    }

    /// Count inserted/retained points and retention drops in `registry`.
    pub fn attach_metrics(&self, registry: &Registry) {
        let m = LakeMetrics::new(registry);
        m.points.set(self.len() as i64);
        *self.metrics.write() = Some(m);
    }

    /// Record `lake_insert` trace events (series, point count) into
    /// `tracer`'s journal. Observational only.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        *self.tracer.write() = Some(tracer.clone());
    }

    fn record_insert(&self, series: &str, points: u64) {
        if let Some(tr) = self.tracer.read().as_ref() {
            let trace = trace_id("lake", SERVICE_TRACE);
            let ctx = oda_obs::fnv1a(series.as_bytes());
            tr.record(
                trace,
                trace_span(trace, "insert", ctx),
                None,
                0,
                ctx,
                0,
                TraceEventKind::LakeInsert {
                    series: series.to_string(),
                    points,
                },
            );
        }
    }

    fn segment_start(&self, ts_ms: i64) -> i64 {
        ts_ms.div_euclid(self.segment_ms) * self.segment_ms
    }

    /// Insert one point for `series`.
    pub fn insert(&self, series: &str, ts_ms: i64, value: f64) {
        let start = self.segment_start(ts_ms);
        let mut segs = self.segments.write();
        let seg = segs.entry(start).or_default();
        seg.series
            .entry(series.to_string())
            .or_default()
            .push(Point { ts_ms, value });
        seg.points += 1;
        drop(segs);
        if let Some(m) = self.metrics.read().as_ref() {
            m.inserted.inc();
            m.points.add(1);
        }
        self.record_insert(series, 1);
    }

    /// Insert many points for one series.
    pub fn insert_batch(&self, series: &str, points: &[Point]) {
        let mut segs = self.segments.write();
        for p in points {
            let start = self.segment_start(p.ts_ms);
            let seg = segs.entry(start).or_default();
            seg.series.entry(series.to_string()).or_default().push(*p);
            seg.points += 1;
        }
        drop(segs);
        if let Some(m) = self.metrics.read().as_ref() {
            m.inserted.add(points.len() as u64);
            m.points.add(points.len() as i64);
        }
        self.record_insert(series, points.len() as u64);
    }

    /// Plan a read over `[t0, t1)` — the one query surface. Chain
    /// [`LakePlan::series`], optionally [`LakePlan::downsample`], then
    /// finish with [`LakePlan::points`] or [`LakePlan::aggregate`].
    pub fn plan(&self, t0: i64, t1: i64) -> LakePlan<'_> {
        LakePlan {
            lake: self,
            t0,
            t1,
            series: None,
            bucket_ms: None,
        }
    }

    /// Series names active in `[t0, t1)` with the given prefix.
    pub fn series_with_prefix(&self, prefix: &str, t0: i64, t1: i64) -> Vec<String> {
        let mut names = std::collections::BTreeSet::new();
        let first_seg = self.segment_start(t0);
        let segs = self.segments.read();
        for (_, seg) in segs.range(first_seg..t1) {
            for name in seg.series.keys() {
                if name.starts_with(prefix) {
                    names.insert(name.clone());
                }
            }
        }
        names.into_iter().collect()
    }

    /// Total retained points.
    pub fn len(&self) -> usize {
        self.segments.read().values().map(|s| s.points).sum()
    }

    /// True when no points are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop segments entirely older than the retention window; returns
    /// dropped points.
    pub fn enforce_retention(&self, now_ms: i64) -> usize {
        let horizon = self.segment_start(now_ms - self.retention_ms);
        let mut segs = self.segments.write();
        let expired: Vec<i64> = segs.range(..horizon).map(|(&k, _)| k).collect();
        let mut dropped = 0;
        for k in expired {
            if let Some(seg) = segs.remove(&k) {
                dropped += seg.points;
            }
        }
        drop(segs);
        if let Some(m) = self.metrics.read().as_ref() {
            m.retention_dropped.add(dropped as u64);
            m.points.sub(dropped as i64);
        }
        dropped
    }
}

impl Default for Lake {
    fn default() -> Self {
        Lake::new()
    }
}

/// A planned read over one time range — LAKE's analogue of the
/// pipeline's logical plan. Segment pruning is the pushdown: only
/// segments overlapping `[t0, t1)` are visited, never the whole store.
#[derive(Clone)]
pub struct LakePlan<'a> {
    lake: &'a Lake,
    t0: i64,
    t1: i64,
    series: Option<String>,
    bucket_ms: Option<i64>,
}

impl LakePlan<'_> {
    /// Select the series to read. Plans without a series yield nothing.
    pub fn series(mut self, name: &str) -> Self {
        self.series = Some(name.to_string());
        self
    }

    /// Downsample to one mean point per `bucket_ms` bucket (NaN points
    /// are skipped; empty buckets are absent).
    pub fn downsample(mut self, bucket_ms: i64) -> Self {
        assert!(bucket_ms > 0);
        self.bucket_ms = Some(bucket_ms);
        self
    }

    /// Raw points in range, sorted by time — segment-pruned scan.
    fn scan(&self) -> Vec<Point> {
        let Some(series) = &self.series else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let first_seg = self.lake.segment_start(self.t0);
        let segs = self.lake.segments.read();
        for (_, seg) in segs.range(first_seg..self.t1) {
            if let Some(points) = seg.series.get(series) {
                out.extend(
                    points
                        .iter()
                        .filter(|p| p.ts_ms >= self.t0 && p.ts_ms < self.t1)
                        .copied(),
                );
            }
        }
        out.sort_by_key(|p| p.ts_ms);
        out
    }

    /// Execute: the selected series' points, downsampled when
    /// [`LakePlan::downsample`] was set, ordered by time.
    pub fn points(&self) -> Vec<Point> {
        let pts = self.scan();
        let Some(bucket_ms) = self.bucket_ms else {
            return pts;
        };
        let mut acc: BTreeMap<i64, (f64, usize)> = BTreeMap::new();
        for p in pts {
            if p.value.is_nan() {
                continue;
            }
            let bucket = p.ts_ms.div_euclid(bucket_ms) * bucket_ms;
            let e = acc.entry(bucket).or_insert((0.0, 0));
            e.0 += p.value;
            e.1 += 1;
        }
        acc.into_iter()
            .map(|(ts_ms, (sum, n))| Point {
                ts_ms,
                value: sum / n as f64,
            })
            .collect()
    }

    /// Execute as an aggregate: (count, mean, min, max) over non-NaN
    /// points, `None` when nothing qualifies. Downsampling applies
    /// first when set.
    pub fn aggregate(&self) -> Option<(usize, f64, f64, f64)> {
        let pts = self.points();
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut n = 0usize;
        for p in &pts {
            if p.value.is_nan() {
                continue;
            }
            sum += p.value;
            min = min.min(p.value);
            max = max.max(p.value);
            n += 1;
        }
        if n == 0 {
            return None;
        }
        Some((n, sum / n as f64, min, max))
    }

    /// Deterministic one-line plan description: the range, the series,
    /// and how many retained segments the scan will visit.
    pub fn explain(&self) -> String {
        let segs = self.lake.segments.read();
        let first_seg = self.lake.segment_start(self.t0);
        let covered = segs.range(first_seg..self.t1).count();
        let total = segs.len();
        let series = match &self.series {
            Some(s) => format!("{s:?}"),
            None => "<none>".to_string(),
        };
        let down = match self.bucket_ms {
            Some(b) => format!(" downsample={b}"),
            None => String::new(),
        };
        format!(
            "LakeScan series={series} range=[{}, {}) segments={covered}/{total}{down}",
            self.t0, self.t1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_time_window() {
        let lake = Lake::with_layout(1_000, i64::MAX / 4);
        for i in 0..100 {
            lake.insert("s", i * 100, i as f64);
        }
        let pts = lake.plan(2_500, 5_000).series("s").points();
        assert_eq!(pts.first().unwrap().ts_ms, 2_500);
        assert_eq!(pts.last().unwrap().ts_ms, 4_900);
        assert!(pts.windows(2).all(|w| w[0].ts_ms <= w[1].ts_ms));
    }

    #[test]
    fn series_are_isolated() {
        let lake = Lake::new();
        lake.insert("a", 0, 1.0);
        lake.insert("b", 0, 2.0);
        assert_eq!(lake.plan(0, 10).series("a").points()[0].value, 1.0);
        assert_eq!(lake.plan(0, 10).series("b").points()[0].value, 2.0);
        assert!(lake.plan(0, 10).series("c").points().is_empty());
    }

    #[test]
    fn prefix_listing() {
        let lake = Lake::new();
        lake.insert("node42/power", 0, 1.0);
        lake.insert("node42/temp", 0, 1.0);
        lake.insert("node7/power", 0, 1.0);
        let names = lake.series_with_prefix("node42/", 0, 10);
        assert_eq!(
            names,
            vec!["node42/power".to_string(), "node42/temp".to_string()]
        );
    }

    #[test]
    fn aggregate_skips_nan() {
        let lake = Lake::new();
        lake.insert("s", 0, 1.0);
        lake.insert("s", 1, f64::NAN);
        lake.insert("s", 2, 3.0);
        let (n, mean, min, max) = lake.plan(0, 10).series("s").aggregate().unwrap();
        assert_eq!(n, 2);
        assert_eq!(mean, 2.0);
        assert_eq!(min, 1.0);
        assert_eq!(max, 3.0);
        assert!(lake.plan(100, 200).series("s").aggregate().is_none());
    }

    #[test]
    fn downsampling_buckets_means() {
        let lake = Lake::with_layout(10_000, i64::MAX / 4);
        for i in 0..100 {
            lake.insert("s", i * 100, i as f64);
        }
        let down = lake.plan(0, 10_000).series("s").downsample(1_000).points();
        assert_eq!(down.len(), 10);
        // Bucket 0 holds values 0..9 -> mean 4.5.
        assert_eq!(down[0].ts_ms, 0);
        assert!((down[0].value - 4.5).abs() < 1e-9);
        assert_eq!(down[9].ts_ms, 9_000);
        assert!((down[9].value - 94.5).abs() < 1e-9);
        // NaN points are skipped, empty buckets absent.
        lake.insert("t", 0, f64::NAN);
        lake.insert("t", 5_000, 2.0);
        let down = lake.plan(0, 10_000).series("t").downsample(1_000).points();
        assert_eq!(down.len(), 1);
        assert_eq!(down[0].ts_ms, 5_000);
    }

    #[test]
    fn retention_drops_old_segments() {
        let lake = Lake::with_layout(1_000, 5_000);
        for i in 0..20 {
            lake.insert("s", i * 1_000, 0.0);
        }
        let dropped = lake.enforce_retention(20_000);
        assert!(dropped > 0);
        assert!(lake.plan(0, 10_000).series("s").points().is_empty());
        assert!(!lake.plan(15_000, 20_000).series("s").points().is_empty());
    }

    #[test]
    fn attached_metrics_track_points_and_compaction() {
        let lake = Lake::with_layout(1_000, 5_000);
        lake.insert("pre", 0, 1.0);
        let reg = Registry::new();
        lake.attach_metrics(&reg); // baseline picks up the existing point
        for i in 0..10 {
            lake.insert("s", i * 1_000, 0.0);
        }
        lake.insert_batch(
            "s",
            &[
                Point {
                    ts_ms: 500,
                    value: 1.0,
                },
                Point {
                    ts_ms: 9_500,
                    value: 2.0,
                },
            ],
        );
        let dropped = lake.enforce_retention(12_000);
        assert!(dropped > 0);
        if oda_obs::enabled() {
            assert_eq!(reg.counter_value("lake_inserted_points_total", &[]), 12);
            assert_eq!(
                reg.counter_value("lake_retention_dropped_points_total", &[]),
                dropped as u64
            );
            assert_eq!(reg.gauge_value("lake_points", &[]), lake.len() as i64);
        }
    }

    #[test]
    fn plan_explains_and_reads_prune_segments() {
        let lake = Lake::with_layout(1_000, i64::MAX / 4);
        for i in 0..30 {
            lake.insert("s", i * 100, i as f64);
        }
        let plan = lake.plan(500, 2_500).series("s").downsample(1_000);
        assert_eq!(
            plan.explain(),
            "LakeScan series=\"s\" range=[500, 2500) segments=3/3 downsample=1000"
        );
        // A plan without a series reads nothing.
        assert!(lake.plan(0, 10_000).points().is_empty());
        assert!(lake.plan(0, 10_000).aggregate().is_none());
        // Downsampled buckets answer over the same pruned range:
        // ts 500..2400 step 100 lands in absolute buckets 0/1000/2000.
        let pts = plan.points();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].ts_ms, 0);
        assert_eq!(pts[1].value, 14.5); // mean of 10..=19
    }

    #[test]
    fn negative_timestamps_partition_correctly() {
        let lake = Lake::with_layout(1_000, i64::MAX / 4);
        lake.insert("s", -1_500, 1.0);
        lake.insert("s", -500, 2.0);
        let pts = lake.plan(-2_000, 0).series("s").points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].ts_ms, -1_500);
    }
}
