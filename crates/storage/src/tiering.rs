//! Tiered lifecycle management (Fig. 5).
//!
//! Each tier focuses on a class of data artifacts with a class-specific
//! retention time: STREAM holds in-flight data for days, LAKE holds
//! online data for weeks, OCEAN holds refined datasets for years, and
//! GLACIER keeps archives indefinitely. The [`TierManager`] tracks
//! registered artifacts and applies transitions as simulated time
//! advances — the accounting behind the tier-retention experiment.

use crate::metrics::TierMetrics;
use oda_faults::{FaultPoint, FaultSite};
use oda_obs::{trace_id, trace_span, LineageNode, Registry, TraceEventKind, Tracer, SERVICE_TRACE};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Medallion refinement class of an artifact (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataClass {
    /// Raw long-format observations.
    Bronze,
    /// Aggregated, pivoted, contextualized.
    Silver,
    /// Analysis-ready artifacts (reports, features, dashboards).
    Gold,
}

impl DataClass {
    /// All classes.
    pub const ALL: [DataClass; 3] = [DataClass::Bronze, DataClass::Silver, DataClass::Gold];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            DataClass::Bronze => "bronze",
            DataClass::Silver => "silver",
            DataClass::Gold => "gold",
        }
    }
}

/// Storage tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Streaming broker (days).
    Stream,
    /// Online database (weeks).
    Lake,
    /// Object store (years).
    Ocean,
    /// Tape archive (indefinite).
    Glacier,
}

impl Tier {
    /// All tiers in hot-to-cold order.
    pub const ALL: [Tier; 4] = [Tier::Stream, Tier::Lake, Tier::Ocean, Tier::Glacier];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Stream => "STREAM",
            Tier::Lake => "LAKE",
            Tier::Ocean => "OCEAN",
            Tier::Glacier => "GLACIER",
        }
    }
}

/// What happened to an artifact during [`TierManager::advance`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifecycleAction {
    /// Dropped entirely (hot tiers expire; the durable copy lives
    /// elsewhere).
    Expired {
        /// Artifact name.
        name: String,
        /// Tier it expired from.
        tier: Tier,
        /// Bytes released.
        bytes: u64,
    },
    /// Moved from OCEAN to GLACIER (frozen).
    Archived {
        /// Artifact name.
        name: String,
        /// Bytes moved (after archive compression).
        bytes: u64,
    },
    /// An OCEAN→GLACIER migration failed (injected fault). The artifact
    /// stays in OCEAN untouched and is retried on the next `advance`.
    MigrateFailed {
        /// Artifact name.
        name: String,
        /// Bytes that stayed put.
        bytes: u64,
    },
}

/// Retention window per (tier, class), in milliseconds.
///
/// Mirrors Fig. 5: hotter tiers hold less, refined classes live longer
/// in hot tiers; Bronze barely lives anywhere hot (the paper keeps raw
/// data frozen until upstream pipelines exist).
pub fn retention_ms(tier: Tier, class: DataClass) -> Option<i64> {
    const DAY: i64 = 86_400_000;
    match (tier, class) {
        (Tier::Stream, DataClass::Bronze) => Some(2 * DAY),
        (Tier::Stream, DataClass::Silver) => Some(7 * DAY),
        (Tier::Stream, DataClass::Gold) => Some(7 * DAY),
        (Tier::Lake, DataClass::Bronze) => Some(3 * DAY),
        (Tier::Lake, DataClass::Silver) => Some(30 * DAY),
        (Tier::Lake, DataClass::Gold) => Some(90 * DAY),
        (Tier::Ocean, DataClass::Bronze) => Some(30 * DAY), // then frozen
        (Tier::Ocean, DataClass::Silver) => Some(2 * 365 * DAY),
        (Tier::Ocean, DataClass::Gold) => Some(5 * 365 * DAY),
        (Tier::Glacier, _) => None, // indefinite
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ArtifactRecord {
    class: DataClass,
    tier: Tier,
    bytes: u64,
    created_ms: i64,
    /// Replica that fed this artifact, when it was materialized from a
    /// clustered STREAM fetch: (topic, partition, node).
    source: Option<(String, u32, u32)>,
}

/// Registry of artifacts and their lifecycle state.
#[derive(Debug, Default)]
pub struct TierManager {
    artifacts: BTreeMap<String, ArtifactRecord>,
    /// Compression factor applied when OCEAN artifacts freeze into
    /// GLACIER (tape-side compression).
    archive_ratio: f64,
    /// Armed fault plan, consulted on each OCEAN→GLACIER migration.
    faults: Option<Arc<dyn FaultPoint>>,
    /// Attached metrics: occupancy gauges refreshed after `register` and
    /// `advance`, lifecycle counters fed from each pass's actions.
    metrics: Option<TierMetrics>,
    /// Attached tracer: lifecycle trace events plus placement lineage.
    tracer: Option<Tracer>,
}

impl TierManager {
    /// Create an empty manager.
    pub fn new() -> TierManager {
        TierManager {
            artifacts: BTreeMap::new(),
            archive_ratio: 0.5,
            faults: None,
            metrics: None,
            tracer: None,
        }
    }

    /// Track tier occupancy and lifecycle activity in `registry`.
    pub fn attach_metrics(&mut self, registry: &Registry) {
        let m = TierMetrics::new(registry);
        m.record_occupancy(self);
        self.metrics = Some(m);
    }

    /// Arm a fault plan: migrations in `advance` consult it. A failed
    /// migration leaves the artifact in place (retryable: the next
    /// lifecycle pass picks it up again).
    pub fn arm_faults(&mut self, faults: Arc<dyn FaultPoint>) {
        self.faults = Some(faults);
    }

    /// Record `lifecycle` trace events for every action `advance` takes
    /// and placement nodes/edges (artifact@tier, OCEAN→GLACIER archive
    /// hops) in `tracer`'s lineage graph. Observational only.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
    }

    /// Register an artifact.
    pub fn register(&mut self, name: &str, class: DataClass, tier: Tier, bytes: u64, now_ms: i64) {
        self.register_inner(name, class, tier, bytes, now_ms, None);
    }

    /// Register an artifact that was materialized from a specific broker
    /// replica — `(topic, partition, node)` in an `oda_stream::Cluster`
    /// — so placements record *which node's segment* fed each tier. The
    /// replica→placement edge lands in the lineage graph as `feeds`,
    /// and survives the OCEAN→GLACIER archive hop (see
    /// [`TierManager::advance`]).
    #[allow(clippy::too_many_arguments)]
    pub fn register_replica(
        &mut self,
        name: &str,
        class: DataClass,
        tier: Tier,
        bytes: u64,
        now_ms: i64,
        topic: &str,
        partition: u32,
        node: u32,
    ) {
        self.register_inner(
            name,
            class,
            tier,
            bytes,
            now_ms,
            Some((topic.to_string(), partition, node)),
        );
    }

    fn register_inner(
        &mut self,
        name: &str,
        class: DataClass,
        tier: Tier,
        bytes: u64,
        now_ms: i64,
        source: Option<(String, u32, u32)>,
    ) {
        self.artifacts.insert(
            name.to_string(),
            ArtifactRecord {
                class,
                tier,
                bytes,
                created_ms: now_ms,
                source: source.clone(),
            },
        );
        if let Some(m) = &self.metrics {
            m.record_occupancy(self);
        }
        if let Some(tr) = &self.tracer {
            let placement = LineageNode::Placement {
                artifact: name.to_string(),
                tier: tier.label().to_string(),
            };
            match source {
                Some((topic, partition, node)) => tr.lineage().link(
                    LineageNode::Replica {
                        topic,
                        partition: u64::from(partition),
                        node: u64::from(node),
                    },
                    placement,
                    "feeds",
                ),
                None => tr.lineage().touch(placement),
            }
        }
    }

    /// The replica that fed `name`, if it was registered through
    /// [`TierManager::register_replica`].
    pub fn source_replica(&self, name: &str) -> Option<(String, u32, u32)> {
        self.artifacts.get(name)?.source.clone()
    }

    /// Number of live artifacts.
    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    /// True when no artifacts are tracked.
    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    /// Apply lifecycle transitions as of `now_ms`.
    pub fn advance(&mut self, now_ms: i64) -> Vec<LifecycleAction> {
        let mut actions = Vec::new();
        let names: Vec<String> = self.artifacts.keys().cloned().collect();
        for name in names {
            let rec = self.artifacts.get(&name).expect("exists").clone();
            let Some(window) = retention_ms(rec.tier, rec.class) else {
                continue; // GLACIER: indefinite
            };
            if now_ms - rec.created_ms <= window {
                continue;
            }
            match rec.tier {
                Tier::Stream | Tier::Lake => {
                    self.artifacts.remove(&name);
                    actions.push(LifecycleAction::Expired {
                        name,
                        tier: rec.tier,
                        bytes: rec.bytes,
                    });
                }
                Tier::Ocean => {
                    let injected = self
                        .faults
                        .as_ref()
                        .and_then(|f| f.check(FaultSite::TierMigrate, 0));
                    if injected.is_some() {
                        actions.push(LifecycleAction::MigrateFailed {
                            name,
                            bytes: rec.bytes,
                        });
                        continue;
                    }
                    let frozen = (rec.bytes as f64 * self.archive_ratio) as u64;
                    let entry = self.artifacts.get_mut(&name).expect("exists");
                    entry.tier = Tier::Glacier;
                    entry.bytes = frozen;
                    entry.created_ms = now_ms;
                    actions.push(LifecycleAction::Archived {
                        name,
                        bytes: frozen,
                    });
                }
                Tier::Glacier => unreachable!("glacier retention is None"),
            }
        }
        if let Some(m) = &self.metrics {
            m.record_actions(&actions);
            m.record_occupancy(self);
        }
        if let Some(tr) = &self.tracer {
            self.trace_actions(tr, &actions);
        }
        actions
    }

    /// Emit one `lifecycle` trace event per action, plus archive edges
    /// in the lineage graph. Iterates `actions` in the order `advance`
    /// produced them (artifact-name order, so deterministic).
    fn trace_actions(&self, tr: &Tracer, actions: &[LifecycleAction]) {
        let trace = trace_id("tiering", SERVICE_TRACE);
        for action in actions {
            let (name, verb, tier, bytes) = match action {
                LifecycleAction::Expired { name, tier, bytes } => {
                    (name, "expire", tier.label(), *bytes)
                }
                LifecycleAction::Archived { name, bytes } => {
                    (name, "archive", Tier::Glacier.label(), *bytes)
                }
                LifecycleAction::MigrateFailed { name, bytes } => {
                    (name, "migrate-failed", Tier::Ocean.label(), *bytes)
                }
            };
            let ctx = oda_obs::fnv1a(name.as_bytes());
            tr.record(
                trace,
                trace_span(trace, verb, ctx),
                None,
                0,
                ctx,
                0,
                TraceEventKind::Lifecycle {
                    artifact: name.clone(),
                    action: verb.to_string(),
                    tier: tier.to_string(),
                    bytes,
                },
            );
            if let LifecycleAction::Archived { name, .. } = action {
                let frozen = LineageNode::Placement {
                    artifact: name.clone(),
                    tier: Tier::Glacier.label().to_string(),
                };
                tr.lineage().link(
                    LineageNode::Placement {
                        artifact: name.clone(),
                        tier: Tier::Ocean.label().to_string(),
                    },
                    frozen.clone(),
                    "archive",
                );
                // A replica-fed artifact keeps its provenance across the
                // freeze: the archived placement still knows which
                // node's segment fed it.
                if let Some((topic, partition, node)) =
                    self.artifacts.get(name).and_then(|r| r.source.clone())
                {
                    tr.lineage().link(
                        LineageNode::Replica {
                            topic,
                            partition: u64::from(partition),
                            node: u64::from(node),
                        },
                        frozen,
                        "feeds",
                    );
                }
            }
        }
    }

    /// Bytes held per tier.
    pub fn bytes_by_tier(&self) -> BTreeMap<Tier, u64> {
        let mut out: BTreeMap<Tier, u64> = Tier::ALL.iter().map(|&t| (t, 0)).collect();
        for rec in self.artifacts.values() {
            *out.get_mut(&rec.tier).expect("all tiers present") += rec.bytes;
        }
        out
    }

    /// Bytes held per (tier, class).
    pub fn bytes_by_tier_class(&self) -> BTreeMap<(Tier, DataClass), u64> {
        let mut out = BTreeMap::new();
        for rec in self.artifacts.values() {
            *out.entry((rec.tier, rec.class)).or_insert(0) += rec.bytes;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: i64 = 86_400_000;

    #[test]
    fn retention_is_hot_to_cold_monotonic() {
        for class in DataClass::ALL {
            let stream = retention_ms(Tier::Stream, class).unwrap();
            let ocean = retention_ms(Tier::Ocean, class).unwrap();
            assert!(stream < ocean, "{class:?}");
            assert!(retention_ms(Tier::Glacier, class).is_none());
        }
    }

    #[test]
    fn stream_bronze_expires_fast() {
        let mut m = TierManager::new();
        m.register("raw-day0", DataClass::Bronze, Tier::Stream, 1_000_000, 0);
        assert!(m.advance(DAY).is_empty());
        let actions = m.advance(3 * DAY);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            LifecycleAction::Expired {
                tier: Tier::Stream,
                ..
            }
        ));
        assert!(m.is_empty());
    }

    #[test]
    fn ocean_bronze_freezes_into_glacier() {
        let mut m = TierManager::new();
        m.register("raw-day0", DataClass::Bronze, Tier::Ocean, 1_000_000, 0);
        let actions = m.advance(31 * DAY);
        assert!(matches!(
            &actions[0],
            LifecycleAction::Archived { bytes: 500_000, .. }
        ));
        let by_tier = m.bytes_by_tier();
        assert_eq!(by_tier[&Tier::Glacier], 500_000);
        assert_eq!(by_tier[&Tier::Ocean], 0);
        // Glacier never expires.
        assert!(m.advance(100 * 365 * DAY).is_empty());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn refined_classes_outlive_bronze_in_hot_tiers() {
        let mut m = TierManager::new();
        m.register("bronze", DataClass::Bronze, Tier::Lake, 100, 0);
        m.register("silver", DataClass::Silver, Tier::Lake, 100, 0);
        let actions = m.advance(5 * DAY);
        assert_eq!(actions.len(), 1, "only bronze should expire at day 5");
        assert!(m
            .bytes_by_tier_class()
            .contains_key(&(Tier::Lake, DataClass::Silver)));
    }

    #[test]
    fn exactly_at_retention_deadline_is_retained() {
        // The boundary is strict: an artifact exactly `window` old stays;
        // one millisecond older goes.
        let mut m = TierManager::new();
        m.register("edge", DataClass::Bronze, Tier::Stream, 100, 0);
        let window = retention_ms(Tier::Stream, DataClass::Bronze).unwrap();
        assert!(m.advance(window).is_empty(), "age == window must stay");
        assert_eq!(m.advance(window + 1).len(), 1, "age == window + 1 goes");
    }

    #[test]
    fn zero_byte_artifacts_cycle_through_lifecycle() {
        let mut m = TierManager::new();
        m.register("empty-hot", DataClass::Bronze, Tier::Stream, 0, 0);
        m.register("empty-cold", DataClass::Bronze, Tier::Ocean, 0, 0);
        let actions = m.advance(40 * DAY);
        assert_eq!(actions.len(), 2);
        assert!(actions
            .iter()
            .any(|a| matches!(a, LifecycleAction::Expired { bytes: 0, .. })));
        assert!(actions
            .iter()
            .any(|a| matches!(a, LifecycleAction::Archived { bytes: 0, .. })));
        assert_eq!(m.len(), 1, "zero-byte archive still tracked in GLACIER");
        assert_eq!(m.bytes_by_tier()[&Tier::Glacier], 0);
    }

    #[test]
    fn failed_migration_leaves_artifact_and_retries_next_pass() {
        use oda_faults::{FaultPlan, FaultSpec};
        let mut m = TierManager::new();
        m.register("frozen-1", DataClass::Bronze, Tier::Ocean, 1_000, 0);
        // Always-failing plan: artifact must stay in OCEAN, untouched.
        m.arm_faults(Arc::new(FaultPlan::new(
            3,
            FaultSpec {
                tier_migrate_fail: 1.0,
                ..FaultSpec::default()
            },
        )));
        let actions = m.advance(31 * DAY);
        assert_eq!(
            actions,
            vec![LifecycleAction::MigrateFailed {
                name: "frozen-1".into(),
                bytes: 1_000,
            }]
        );
        assert_eq!(m.bytes_by_tier()[&Tier::Ocean], 1_000);
        assert_eq!(m.bytes_by_tier()[&Tier::Glacier], 0);
        // Heal the fault: the next lifecycle pass completes the move
        // with the same byte accounting as an undisturbed migration.
        m.arm_faults(Arc::new(FaultPlan::new(3, FaultSpec::default())));
        let actions = m.advance(32 * DAY);
        assert!(matches!(
            &actions[0],
            LifecycleAction::Archived { bytes: 500, .. }
        ));
        assert_eq!(m.bytes_by_tier()[&Tier::Glacier], 500);
    }

    #[test]
    fn replica_fed_artifacts_remember_their_source() {
        let mut m = TierManager::new();
        m.register_replica(
            "gold-w1",
            DataClass::Gold,
            Tier::Ocean,
            900,
            0,
            "bronze",
            1,
            2,
        );
        m.register("gold-w2", DataClass::Gold, Tier::Ocean, 900, 0);
        assert_eq!(
            m.source_replica("gold-w1"),
            Some(("bronze".to_string(), 1, 2))
        );
        assert_eq!(m.source_replica("gold-w2"), None);
        assert_eq!(m.source_replica("missing"), None);
    }

    #[test]
    fn replica_provenance_survives_the_archive_hop() {
        use oda_obs::Tracer;
        let mut m = TierManager::new();
        let tracer = Tracer::new();
        m.attach_tracer(&tracer);
        m.register_replica(
            "raw-d0",
            DataClass::Bronze,
            Tier::Ocean,
            1_000,
            0,
            "bronze",
            0,
            1,
        );
        let actions = m.advance(31 * DAY);
        assert!(matches!(&actions[0], LifecycleAction::Archived { .. }));
        assert_eq!(
            m.source_replica("raw-d0"),
            Some(("bronze".to_string(), 0, 1)),
            "the frozen record keeps its source"
        );
        if !oda_obs::enabled() {
            return;
        }
        let q = tracer.lineage().query();
        // The replica feeds both the OCEAN registration and the GLACIER
        // placement it froze into.
        let feeds: Vec<String> = q
            .edges()
            .iter()
            .filter(|(_, _, rel)| rel == "feeds")
            .map(|(from, to, _)| {
                format!(
                    "{} -> {}",
                    q.node(*from).unwrap().label(),
                    q.node(*to).unwrap().label()
                )
            })
            .collect();
        assert!(feeds.contains(&"replica:bronze/0@n1 -> placement:raw-d0@OCEAN".to_string()));
        assert!(feeds.contains(&"replica:bronze/0@n1 -> placement:raw-d0@GLACIER".to_string()));
    }

    #[test]
    fn accounting_sums_match() {
        let mut m = TierManager::new();
        m.register("a", DataClass::Silver, Tier::Ocean, 10, 0);
        m.register("b", DataClass::Gold, Tier::Ocean, 20, 0);
        m.register("c", DataClass::Silver, Tier::Lake, 5, 0);
        let by_tier = m.bytes_by_tier();
        assert_eq!(by_tier[&Tier::Ocean], 30);
        assert_eq!(by_tier[&Tier::Lake], 5);
        let total: u64 = m.bytes_by_tier_class().values().sum();
        assert_eq!(total, 35);
    }
}
