//! Sensor catalogs: what each system emits, how often, and how noisily.
//!
//! Each [`SensorSpec`] describes one *logical* sensor replicated across
//! the components it is attached to. The catalog is grouped by
//! [`DataSource`], matching the Y-axis of the paper's Fig. 3 matrix, so
//! that volume accounting (Fig. 4-a) and maturity tracking line up with
//! the paper's taxonomy.

use crate::error::TelemetryError;
use crate::record::Device;
use crate::system::SystemModel;
use serde::{Deserialize, Serialize};

/// Physical quantity a sensor measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// Power in watts.
    Power,
    /// Temperature in degrees Celsius.
    Temperature,
    /// Utilization fraction in [0, 1].
    Utilization,
    /// Memory occupancy fraction in [0, 1].
    MemoryUse,
    /// Monotonic byte counter (network / storage client traffic).
    ByteCounter,
    /// Monotonic operation counter (metadata ops, packets).
    OpCounter,
    /// Coolant flow in liters per minute.
    Flow,
    /// Voltage in volts.
    Voltage,
    /// Hardware performance counter (instructions, cache misses, ...).
    PerfCounter,
}

/// Which element(s) of the topology a sensor is replicated over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attachment {
    /// One instance per node.
    PerNode,
    /// One instance per CPU socket.
    PerCpu,
    /// One instance per GPU device.
    PerGpu,
    /// One instance per cabinet cooling loop.
    PerCabinet,
    /// A single facility-level instance.
    FacilityWide,
}

/// Data-source family, mirroring Fig. 3's Y-axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataSource {
    /// Compute-node hardware performance counters.
    PerfCounters,
    /// Compute-node resource utilization (CPU/GPU/memory).
    ResourceUtil,
    /// Compute-node power and temperature (out-of-band).
    PowerTemp,
    /// Per-node parallel-filesystem client counters.
    StorageClient,
    /// Per-node interconnect client counters.
    InterconnectClient,
    /// Storage-system (server-side) telemetry.
    StorageSystem,
    /// Interconnect fabric (switch) telemetry.
    Interconnect,
    /// Syslog and event streams.
    SyslogEvents,
    /// Resource-manager (scheduler) logs.
    ResourceManager,
    /// Facility power & cooling plant telemetry.
    Facility,
}

impl DataSource {
    /// All sources, in Fig. 3 order.
    pub const ALL: [DataSource; 10] = [
        DataSource::PerfCounters,
        DataSource::ResourceUtil,
        DataSource::PowerTemp,
        DataSource::StorageClient,
        DataSource::InterconnectClient,
        DataSource::StorageSystem,
        DataSource::Interconnect,
        DataSource::SyslogEvents,
        DataSource::ResourceManager,
        DataSource::Facility,
    ];

    /// Display label used in printed matrices and reports.
    pub fn label(self) -> &'static str {
        match self {
            DataSource::PerfCounters => "perf-counters",
            DataSource::ResourceUtil => "resource-util",
            DataSource::PowerTemp => "power-temp",
            DataSource::StorageClient => "storage-client",
            DataSource::InterconnectClient => "interconnect-client",
            DataSource::StorageSystem => "storage-system",
            DataSource::Interconnect => "interconnect",
            DataSource::SyslogEvents => "syslog-events",
            DataSource::ResourceManager => "resource-manager",
            DataSource::Facility => "facility",
        }
    }
}

/// One logical sensor in the catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSpec {
    /// Stable identifier; index into the catalog.
    pub id: u16,
    /// Short name ("node_power_w", "gpu0_temp_c", ...).
    pub name: String,
    /// What it measures.
    pub kind: SensorKind,
    /// Which data-source family it reports under.
    pub source: DataSource,
    /// Replication over the topology.
    pub attachment: Attachment,
    /// Sampling period in milliseconds.
    pub period_ms: u32,
    /// Relative Gaussian noise applied to the modeled value.
    pub noise_rel: f64,
    /// Probability that any individual sample is lost in collection.
    pub dropout: f64,
    /// Collected out-of-band (BMC / management network, §IV-B) rather
    /// than by an in-band agent that costs host CPU.
    pub out_of_band: bool,
}

impl SensorSpec {
    /// Number of physical instances of this sensor on `system`.
    pub fn instances(&self, system: &SystemModel) -> u64 {
        match self.attachment {
            Attachment::PerNode => u64::from(system.node_count()),
            Attachment::PerCpu => u64::from(system.node_count()) * u64::from(system.cpus_per_node),
            Attachment::PerGpu => system.gpu_count(),
            Attachment::PerCabinet => u64::from(system.cabinets),
            Attachment::FacilityWide => 1,
        }
    }

    /// Samples per day emitted by all instances on `system`.
    pub fn samples_per_day(&self, system: &SystemModel) -> u64 {
        let per_instance = 86_400_000 / u64::from(self.period_ms);
        self.instances(system) * per_instance
    }
}

/// The full sensor catalog of one system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SensorCatalog {
    specs: Vec<SensorSpec>,
}

impl SensorCatalog {
    /// Build the catalog appropriate for `system`.
    ///
    /// The per-source sample rates are calibrated so that analytic daily
    /// volumes (see [`crate::rates`]) land in the bands the paper
    /// reports: ~0.5 TB/day of power/thermal data for the Frontier-like
    /// system and 4.2-4.5 TB/day for the facility in total.
    pub fn for_system(system: &SystemModel) -> SensorCatalog {
        let mut b = CatalogBuilder::default();
        // Out-of-band collection runs at 1 Hz on both generations.
        let fast = 1_000;
        // Out-of-band power & temperature. Highest-value streams in the
        // paper (Fig. 3 shows L4-L5 use in facility management and R&D).
        b.push(
            "node_power_w",
            SensorKind::Power,
            DataSource::PowerTemp,
            Attachment::PerNode,
            fast,
            0.01,
            0.002,
        );
        b.push(
            "node_inlet_temp_c",
            SensorKind::Temperature,
            DataSource::PowerTemp,
            Attachment::PerNode,
            fast,
            0.005,
            0.002,
        );
        b.push(
            "node_outlet_temp_c",
            SensorKind::Temperature,
            DataSource::PowerTemp,
            Attachment::PerNode,
            fast,
            0.005,
            0.002,
        );
        b.push(
            "cpu_power_w",
            SensorKind::Power,
            DataSource::PowerTemp,
            Attachment::PerCpu,
            2_000,
            0.01,
            0.003,
        );
        b.push(
            "gpu_power_w",
            SensorKind::Power,
            DataSource::PowerTemp,
            Attachment::PerGpu,
            5_000,
            0.01,
            0.004,
        );
        b.push(
            "gpu_temp_c",
            SensorKind::Temperature,
            DataSource::PowerTemp,
            Attachment::PerGpu,
            10_000,
            0.005,
            0.004,
        );
        if system.liquid_cooled {
            b.push(
                "loop_flow_lpm",
                SensorKind::Flow,
                DataSource::PowerTemp,
                Attachment::PerCabinet,
                fast,
                0.01,
                0.001,
            );
            b.push(
                "loop_supply_temp_c",
                SensorKind::Temperature,
                DataSource::PowerTemp,
                Attachment::PerCabinet,
                fast,
                0.005,
                0.001,
            );
            b.push(
                "loop_return_temp_c",
                SensorKind::Temperature,
                DataSource::PowerTemp,
                Attachment::PerCabinet,
                fast,
                0.005,
                0.001,
            );
        }
        // Resource utilization (in-band agent, coarser).
        b.push(
            "cpu_util",
            SensorKind::Utilization,
            DataSource::ResourceUtil,
            Attachment::PerCpu,
            10_000,
            0.02,
            0.005,
        );
        b.push(
            "gpu_util",
            SensorKind::Utilization,
            DataSource::ResourceUtil,
            Attachment::PerGpu,
            10_000,
            0.02,
            0.005,
        );
        b.push(
            "mem_use",
            SensorKind::MemoryUse,
            DataSource::ResourceUtil,
            Attachment::PerNode,
            10_000,
            0.02,
            0.005,
        );
        b.push(
            "gpu_mem_use",
            SensorKind::MemoryUse,
            DataSource::ResourceUtil,
            Attachment::PerGpu,
            10_000,
            0.02,
            0.005,
        );
        // Hardware performance counters (highest rate, in-band, lowest
        // maturity in Fig. 3 - L0 everywhere).
        b.push(
            "instr_retired",
            SensorKind::PerfCounter,
            DataSource::PerfCounters,
            Attachment::PerCpu,
            30_000,
            0.0,
            0.01,
        );
        b.push(
            "llc_misses",
            SensorKind::PerfCounter,
            DataSource::PerfCounters,
            Attachment::PerCpu,
            30_000,
            0.0,
            0.01,
        );
        b.push(
            "gpu_occupancy",
            SensorKind::PerfCounter,
            DataSource::PerfCounters,
            Attachment::PerGpu,
            30_000,
            0.0,
            0.01,
        );
        // Parallel-filesystem client counters.
        b.push(
            "fs_read_bytes",
            SensorKind::ByteCounter,
            DataSource::StorageClient,
            Attachment::PerNode,
            60_000,
            0.0,
            0.005,
        );
        b.push(
            "fs_write_bytes",
            SensorKind::ByteCounter,
            DataSource::StorageClient,
            Attachment::PerNode,
            60_000,
            0.0,
            0.005,
        );
        b.push(
            "fs_meta_ops",
            SensorKind::OpCounter,
            DataSource::StorageClient,
            Attachment::PerNode,
            60_000,
            0.0,
            0.005,
        );
        // Interconnect client counters.
        b.push(
            "nic_tx_bytes",
            SensorKind::ByteCounter,
            DataSource::InterconnectClient,
            Attachment::PerNode,
            60_000,
            0.0,
            0.005,
        );
        b.push(
            "nic_rx_bytes",
            SensorKind::ByteCounter,
            DataSource::InterconnectClient,
            Attachment::PerNode,
            60_000,
            0.0,
            0.005,
        );
        // Facility plant.
        b.push(
            "plant_supply_temp_c",
            SensorKind::Temperature,
            DataSource::Facility,
            Attachment::FacilityWide,
            1_000,
            0.005,
            0.001,
        );
        b.push(
            "plant_return_temp_c",
            SensorKind::Temperature,
            DataSource::Facility,
            Attachment::FacilityWide,
            1_000,
            0.005,
            0.001,
        );
        b.push(
            "plant_flow_lpm",
            SensorKind::Flow,
            DataSource::Facility,
            Attachment::FacilityWide,
            1_000,
            0.01,
            0.001,
        );
        b.push(
            "substation_power_w",
            SensorKind::Power,
            DataSource::Facility,
            Attachment::FacilityWide,
            1_000,
            0.005,
            0.001,
        );
        b.push(
            "bus_voltage_v",
            SensorKind::Voltage,
            DataSource::Facility,
            Attachment::FacilityWide,
            1_000,
            0.002,
            0.001,
        );
        let _ = system;
        SensorCatalog { specs: b.specs }
    }

    /// All specs, ordered by id.
    pub fn specs(&self) -> &[SensorSpec] {
        &self.specs
    }

    /// Look up a spec by id.
    pub fn get(&self, id: u16) -> Option<&SensorSpec> {
        self.specs.get(usize::from(id))
    }

    /// Look up a spec by name.
    pub fn by_name(&self, name: &str) -> Option<&SensorSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Look up a spec by name, failing with
    /// [`TelemetryError::UnknownSensor`] (naming the missing sensor)
    /// instead of forcing an `unwrap()` at the call site.
    pub fn require(&self, name: &str) -> Result<&SensorSpec, TelemetryError> {
        self.by_name(name)
            .ok_or_else(|| TelemetryError::UnknownSensor(name.to_string()))
    }

    /// The id of the named sensor, or [`TelemetryError::UnknownSensor`].
    pub fn sensor_id(&self, name: &str) -> Result<u16, TelemetryError> {
        self.require(name).map(|s| s.id)
    }

    /// Specs reporting under `source`.
    pub fn by_source(&self, source: DataSource) -> impl Iterator<Item = &SensorSpec> {
        self.specs.iter().filter(move |s| s.source == source)
    }

    /// Number of logical sensors.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the catalog is empty (never, for built-in systems).
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The device instances a spec materializes on, for a given system.
    pub fn devices_for(&self, spec: &SensorSpec, system: &SystemModel) -> Vec<Device> {
        match spec.attachment {
            Attachment::PerNode => vec![Device::Node],
            Attachment::PerCpu => (0..system.cpus_per_node).map(Device::Cpu).collect(),
            Attachment::PerGpu => (0..system.gpus_per_node).map(Device::Gpu).collect(),
            Attachment::PerCabinet => vec![Device::CoolingLoop(0)],
            Attachment::FacilityWide => vec![Device::Facility],
        }
    }
}

#[derive(Default)]
struct CatalogBuilder {
    specs: Vec<SensorSpec>,
}

impl CatalogBuilder {
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        name: &str,
        kind: SensorKind,
        source: DataSource,
        attachment: Attachment,
        period_ms: u32,
        noise_rel: f64,
        dropout: f64,
    ) {
        let id = self.specs.len() as u16;
        // Power/thermal and facility-plant streams arrive out-of-band via
        // the management network (§IV-B); everything else needs an
        // in-band agent on the host.
        let out_of_band = matches!(source, DataSource::PowerTemp | DataSource::Facility);
        self.specs.push(SensorSpec {
            id,
            name: name.to_string(),
            kind,
            source,
            attachment,
            period_ms,
            noise_rel,
            dropout,
            out_of_band,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_ids_are_indices() {
        let cat = SensorCatalog::for_system(&SystemModel::compass());
        for (i, spec) in cat.specs().iter().enumerate() {
            assert_eq!(usize::from(spec.id), i);
        }
    }

    #[test]
    fn lookup_by_name() {
        let cat = SensorCatalog::for_system(&SystemModel::mountain());
        let spec = cat.by_name("node_power_w").unwrap();
        assert_eq!(spec.kind, SensorKind::Power);
        assert_eq!(spec.source, DataSource::PowerTemp);
        assert!(cat.by_name("nonexistent").is_none());
    }

    #[test]
    fn instance_counts_scale_with_topology() {
        let compass = SystemModel::compass();
        let cat = SensorCatalog::for_system(&compass);
        let node_power = cat.by_name("node_power_w").unwrap();
        assert_eq!(
            node_power.instances(&compass),
            u64::from(compass.node_count())
        );
        let gpu_power = cat.by_name("gpu_power_w").unwrap();
        assert_eq!(gpu_power.instances(&compass), compass.gpu_count());
    }

    #[test]
    fn samples_per_day_consistent() {
        let sys = SystemModel::tiny();
        let cat = SensorCatalog::for_system(&sys);
        let spec = cat.by_name("node_power_w").unwrap();
        // 8 nodes at 1 Hz for a day.
        assert_eq!(spec.samples_per_day(&sys), 8 * 86_400);
    }

    #[test]
    fn out_of_band_flags_follow_collection_path() {
        let cat = SensorCatalog::for_system(&SystemModel::compass());
        assert!(cat.by_name("node_power_w").unwrap().out_of_band);
        assert!(cat.by_name("plant_flow_lpm").unwrap().out_of_band);
        assert!(!cat.by_name("cpu_util").unwrap().out_of_band);
        assert!(!cat.by_name("fs_read_bytes").unwrap().out_of_band);
    }

    #[test]
    fn every_source_with_sensors_is_in_fig3_taxonomy() {
        let cat = SensorCatalog::for_system(&SystemModel::compass());
        for spec in cat.specs() {
            assert!(DataSource::ALL.contains(&spec.source), "{}", spec.name);
        }
    }
}
