//! The Fig. 1 operational feedback control loop, closed end-to-end.
//!
//! "This life cycle centers around a manual operational feedback
//! control loop ... powered by batches of data generated from real-time
//! data streams." One iteration here: **collect** (facility ticks →
//! STREAM), **engineer** (streaming Bronze→Silver query), **analyze**
//! (reduce Silver to facility health indicators), **decide** (rule on
//! the indicators), **adjust** (turn a real actuator — the coolant
//! supply set point — so the *next* iteration's telemetry changes).

use crate::error::OdaError;
use crate::facility::Facility;
use crate::ingest::topics;
use oda_pipeline::checkpoint::CheckpointStore;
use oda_pipeline::medallion::{observation_decoder, streaming_silver_transform};
use oda_pipeline::streaming::{MemorySink, StreamingQuery};
use oda_stream::Consumer;
use serde::{Deserialize, Serialize};

/// Decision produced by one loop iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Adjustment {
    /// Thermal headroom available: raise the coolant supply set point
    /// to save cooling energy (warm-water operation).
    RaiseSupply {
        /// New set point (C).
        to_c: f64,
    },
    /// Thermal margin exhausted: lower the set point.
    LowerSupply {
        /// New set point (C).
        to_c: f64,
    },
    /// Within band: no change.
    Hold,
}

/// Indicators and outcome of one iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopReport {
    /// Silver rows analyzed this iteration.
    pub silver_rows: usize,
    /// Mean node outlet temperature (C).
    pub mean_outlet_c: f64,
    /// Peak node outlet temperature (C).
    pub peak_outlet_c: f64,
    /// Mean node power (W).
    pub mean_node_power_w: f64,
    /// Decision taken.
    pub adjustment: Adjustment,
}

/// The loop driver for one system of a facility.
pub struct OperationalLoop {
    query: StreamingQuery,
    system_index: usize,
    /// Outlet temperature the loop tries to sit just below (C).
    pub target_outlet_c: f64,
    /// Dead band around the target (C).
    pub dead_band_c: f64,
    /// Set-point step per adjustment (C).
    pub step_c: f64,
}

impl OperationalLoop {
    /// Attach a loop to `facility`'s system `system_index`.
    pub fn attach(
        facility: &Facility,
        system_index: usize,
        window_ms: i64,
    ) -> Result<OperationalLoop, OdaError> {
        let system = facility.systems()[system_index].clone();
        let (bronze, _, _) = topics(&system.name);
        let consumer = Consumer::subscribe(facility.broker(), "ops-loop", &bronze)?;
        let catalog = oda_telemetry::SensorCatalog::for_system(&system);
        let query = StreamingQuery::builder()
            .source(consumer)
            .decoder(observation_decoder(catalog))
            .transform(streaming_silver_transform(window_ms, 0))
            .checkpoints(CheckpointStore::new())
            .build()?;
        Ok(OperationalLoop {
            query,
            system_index,
            target_outlet_c: 32.0,
            dead_band_c: 2.0,
            step_c: 1.0,
        })
    }

    /// Run one full loop iteration: collect `ticks` facility ticks,
    /// engineer Silver, analyze, decide, and apply the adjustment.
    pub fn iterate(
        &mut self,
        facility: &mut Facility,
        ticks: usize,
    ) -> Result<LoopReport, OdaError> {
        // Collect.
        facility.run(ticks);
        // Engineer: drain the stream into Silver.
        let mut sink = MemorySink::new();
        self.query.run_to_completion(&mut sink)?;
        let silver = sink.concat()?;
        // Analyze: thermal + power indicators from Silver.
        let sensors = silver.cat("sensor")?;
        let means = silver.f64s("mean")?;
        let mut outlet_sum = 0.0;
        let mut outlet_n = 0usize;
        let mut outlet_peak = f64::NEG_INFINITY;
        let mut power_sum = 0.0;
        let mut power_n = 0usize;
        for (i, &mean) in means.iter().enumerate() {
            match sensors.get(i) {
                "node_outlet_temp_c" if mean.is_finite() => {
                    outlet_sum += mean;
                    outlet_n += 1;
                    outlet_peak = outlet_peak.max(mean);
                }
                "node_power_w" if mean.is_finite() => {
                    power_sum += mean;
                    power_n += 1;
                }
                _ => {}
            }
        }
        let mean_outlet = outlet_sum / outlet_n.max(1) as f64;
        let peak_outlet = if outlet_n == 0 { f64::NAN } else { outlet_peak };
        // Decide.
        let generator = facility.generator_mut(self.system_index);
        let current = generator.coolant_supply_c();
        let adjustment = if outlet_n == 0 {
            Adjustment::Hold
        } else if peak_outlet < self.target_outlet_c - self.dead_band_c {
            Adjustment::RaiseSupply {
                to_c: current + self.step_c,
            }
        } else if peak_outlet > self.target_outlet_c + self.dead_band_c {
            Adjustment::LowerSupply {
                to_c: current - self.step_c,
            }
        } else {
            Adjustment::Hold
        };
        // Adjust the actuator.
        match adjustment {
            Adjustment::RaiseSupply { to_c } | Adjustment::LowerSupply { to_c } => {
                generator.set_coolant_supply_c(to_c);
            }
            Adjustment::Hold => {}
        }
        Ok(LoopReport {
            silver_rows: silver.rows(),
            mean_outlet_c: mean_outlet,
            peak_outlet_c: peak_outlet,
            mean_node_power_w: power_sum / power_n.max(1) as f64,
            adjustment,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FacilityConfig;

    #[test]
    fn loop_closes_and_actuates() {
        let mut facility = Facility::build(FacilityConfig::tiny(7));
        let mut ops = OperationalLoop::attach(&facility, 0, 15_000).unwrap();
        let before = facility.generator_mut(0).coolant_supply_c();
        let mut raised = false;
        for _ in 0..4 {
            let report = ops.iterate(&mut facility, 45).unwrap();
            assert!(report.silver_rows > 0, "no silver rows flowed");
            assert!(report.mean_node_power_w > 0.0);
            if matches!(report.adjustment, Adjustment::RaiseSupply { .. }) {
                raised = true;
            }
        }
        let after = facility.generator_mut(0).coolant_supply_c();
        // The tiny system idles cool, so the loop should raise the set
        // point for energy efficiency — and the actuator must move.
        assert!(raised, "expected at least one raise decision");
        assert!(after > before, "set point {before} -> {after}");
    }

    #[test]
    fn adjustment_feeds_back_into_telemetry() {
        let mut facility = Facility::build(FacilityConfig::tiny(9));
        let mut ops = OperationalLoop::attach(&facility, 0, 15_000).unwrap();
        let r1 = ops.iterate(&mut facility, 45).unwrap();
        // Force a big raise and observe the next iteration's outlet temps.
        facility.generator_mut(0).set_coolant_supply_c(35.0);
        // Let thermal state settle across a couple of iterations.
        ops.iterate(&mut facility, 45).unwrap();
        let r2 = ops.iterate(&mut facility, 45).unwrap();
        assert!(
            r2.mean_outlet_c > r1.mean_outlet_c + 5.0,
            "outlet {} -> {} did not follow the actuator",
            r1.mean_outlet_c,
            r2.mean_outlet_c
        );
    }
}
