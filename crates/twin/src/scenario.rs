//! What-if scenarios: "study 'what-if' scenarios, system optimizations,
//! and virtual prototyping of future systems" (§VIII-C).

use crate::cooling::{CoolingParams, CoolingPlant, CoolingState};
use crate::power::{PowerSample, PowerSim};
use oda_telemetry::jobs::{ApplicationArchetype, Job};
use oda_telemetry::system::SystemModel;
use serde::{Deserialize, Serialize};

/// A what-if configuration delta applied to the twin.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name.
    pub name: String,
    /// Fraction of the machine loaded (0..1].
    pub load_fraction: f64,
    /// Coolant supply set point (C).
    pub supply_setpoint_c: f64,
    /// Ambient wet bulb (C).
    pub wet_bulb_c: f64,
    /// Run duration (hours).
    pub hours: f64,
}

impl Scenario {
    /// The baseline: full-machine HPL at design conditions.
    pub fn baseline() -> Scenario {
        Scenario {
            name: "baseline".into(),
            load_fraction: 1.0,
            supply_setpoint_c: 21.0,
            wet_bulb_c: 18.0,
            hours: 2.0,
        }
    }
}

/// Result of running one scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// The scenario that produced this outcome.
    pub scenario: Scenario,
    /// Mean facility power (W).
    pub mean_facility_w: f64,
    /// Peak facility power (W).
    pub peak_facility_w: f64,
    /// Total energy (kWh).
    pub energy_kwh: f64,
    /// Mean conversion + rectification losses (W).
    pub mean_losses_w: f64,
    /// Power usage effectiveness: facility power (compute + losses +
    /// modeled cooling-plant power) over IT power.
    pub pue: f64,
    /// Final cooling state.
    pub final_cooling: CoolingState,
    /// Peak secondary return temperature (C).
    pub peak_return_c: f64,
}

/// A full-system HPL job (the Fig. 11 workload).
pub fn hpl_run(system: &SystemModel, load_fraction: f64, hours: f64) -> Job {
    let nodes =
        ((f64::from(system.node_count()) * load_fraction) as u32).clamp(1, system.node_count());
    Job {
        id: 1,
        user: 0,
        project: "HPL".into(),
        program: 0,
        archetype: ApplicationArchetype::Hpl,
        nodes: (0..nodes).collect(),
        submit_ms: 0,
        start_ms: 0,
        end_ms: (hours * 3_600_000.0) as i64,
        phase: 0.0,
    }
}

/// Run a scenario at 60 s resolution.
pub fn run_scenario(system: &SystemModel, scenario: &Scenario) -> ScenarioOutcome {
    let job = hpl_run(system, scenario.load_fraction, scenario.hours);
    let sim = PowerSim::new(system.clone(), vec![job]);
    let mut params = CoolingParams::sized_for(system.peak_mw);
    params.supply_setpoint_c = scenario.supply_setpoint_c;
    params.wet_bulb_c = scenario.wet_bulb_c;
    let mut plant = CoolingPlant::new(params);

    let end_ms = (scenario.hours * 3_600_000.0) as i64;
    let dt_ms = 60_000;
    let mut samples: Vec<PowerSample> = Vec::new();
    let mut peak_return: f64 = f64::NEG_INFINITY;
    let mut t = 0;
    while t < end_ms {
        let s = sim.sample(t);
        let state = plant.step(s.heat_to_coolant_w(), dt_ms as f64 / 1_000.0);
        peak_return = peak_return.max(state.t_secondary_return_c);
        samples.push(s);
        t += dt_ms;
    }
    let n = samples.len().max(1) as f64;
    let mean_w = samples.iter().map(|s| s.facility_w).sum::<f64>() / n;
    let mean_it_w = samples.iter().map(|s| s.it_w).sum::<f64>() / n;
    // Cooling-plant electrical power: pumps + tower fans, modeled as a
    // load-dependent fraction of rejected heat (~3.5% at design point
    // for warm-water plants).
    let mean_cooling_w = samples.iter().map(|s| s.heat_to_coolant_w()).sum::<f64>() / n * 0.035;
    ScenarioOutcome {
        scenario: scenario.clone(),
        mean_facility_w: mean_w,
        peak_facility_w: samples.iter().map(|s| s.facility_w).fold(0.0, f64::max),
        energy_kwh: mean_w * scenario.hours / 1_000.0,
        mean_losses_w: samples
            .iter()
            .map(|s| s.rectifier_loss_w + s.conversion_loss_w)
            .sum::<f64>()
            / n,
        pue: (mean_w + mean_cooling_w) / mean_it_w.max(1e-9),
        final_cooling: plant.state(),
        peak_return_c: peak_return,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_load_draws_less_than_full() {
        let sys = SystemModel::tiny();
        let full = run_scenario(&sys, &Scenario::baseline());
        let half = run_scenario(
            &sys,
            &Scenario {
                load_fraction: 0.5,
                name: "half".into(),
                ..Scenario::baseline()
            },
        );
        assert!(half.mean_facility_w < full.mean_facility_w);
        assert!(half.peak_return_c < full.peak_return_c);
    }

    #[test]
    fn warmer_setpoint_raises_return_temp() {
        let sys = SystemModel::tiny();
        let base = run_scenario(&sys, &Scenario::baseline());
        let warm = run_scenario(
            &sys,
            &Scenario {
                supply_setpoint_c: 30.0,
                name: "warm-water".into(),
                ..Scenario::baseline()
            },
        );
        assert!(warm.peak_return_c > base.peak_return_c);
        // Power is unchanged — the electrical side does not see coolant.
        assert!((warm.mean_facility_w - base.mean_facility_w).abs() < 1.0);
    }

    #[test]
    fn pue_is_plausible_for_warm_water_plant() {
        let sys = SystemModel::tiny();
        let o = run_scenario(&sys, &Scenario::baseline());
        // Warm-water liquid-cooled plants run PUE ~1.03-1.2.
        assert!(
            o.pue > 1.02 && o.pue < 1.25,
            "PUE {} outside the plausible band",
            o.pue
        );
        // Lighter load worsens PUE (fixed losses amortize worse)... at
        // least it must never drop below 1.
        let half = run_scenario(
            &sys,
            &Scenario {
                load_fraction: 0.5,
                name: "half".into(),
                ..Scenario::baseline()
            },
        );
        assert!(half.pue >= 1.0);
    }

    #[test]
    fn energy_consistent_with_mean_power() {
        let sys = SystemModel::tiny();
        let o = run_scenario(&sys, &Scenario::baseline());
        let expect = o.mean_facility_w * o.scenario.hours / 1_000.0;
        assert!((o.energy_kwh - expect).abs() < 1e-9);
        assert!(o.mean_losses_w > 0.0);
    }

    #[test]
    fn extrapolates_beyond_observed_states() {
        // The white-box claim: a wet bulb never present in telemetry
        // still produces physically sensible results.
        let sys = SystemModel::tiny();
        let heatwave = run_scenario(
            &sys,
            &Scenario {
                wet_bulb_c: 32.0,
                name: "heatwave".into(),
                ..Scenario::baseline()
            },
        );
        let base = run_scenario(&sys, &Scenario::baseline());
        assert!(heatwave.final_cooling.t_primary_c > base.final_cooling.t_primary_c + 5.0);
        assert!(heatwave.peak_return_c < 95.0, "still physical");
    }
}
