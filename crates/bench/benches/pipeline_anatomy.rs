//! Experiment F4b (paper Fig. 4-b): the anatomy of an ODA pipeline.
//!
//! Times each SQL clause of the Bronze→Silver plan separately on the
//! same 1M-row Bronze batch. The paper's claim to reproduce: the
//! GROUP BY (window) + PIVOT + JOIN block dominates cost — "a series of
//! group-by aggregations, pivots, and joins that necessitate
//! considerable I/O ... to achieve a more compact Silver stage" —
//! while WHERE/SELECT are comparatively free.

use criterion::{criterion_group, criterion_main, Criterion};
use oda_bench::{bronze_with_rows, job_fleet};
use oda_pipeline::expr::Expr;
use oda_pipeline::medallion::job_context_frame;
use oda_pipeline::ops::{group_by, pivot, Agg, AggSpec};
use oda_pipeline::plan::{PipelinePlan, Stage};
use oda_pipeline::window::assign_window;
use std::hint::black_box;

const ROWS: usize = 1_000_000;

fn bench_clauses(c: &mut Criterion) {
    let bronze = bronze_with_rows(11, ROWS);
    let jobs = job_fleet(50, 20, 8, 3_600_000);
    let ctx = job_context_frame(&jobs);

    // Pre-compute each stage's input so stages are timed in isolation.
    let mask = Expr::col("quality")
        .eq_(Expr::LitI(0))
        .and(Expr::col("value").is_nan().not())
        .eval_mask(&bronze)
        .unwrap();
    let filtered = bronze.filter_mask(&mask);
    let windowed = assign_window(&filtered, "ts_ms", 15_000).unwrap();
    let grouped = group_by(
        &windowed,
        &["window", "node", "sensor"],
        &[AggSpec::new("value", Agg::Mean, "value")],
    )
    .unwrap();
    let pivoted = pivot(&grouped, &["window", "node"], "sensor", "value", Agg::Mean).unwrap();

    let mut group = c.benchmark_group("f4b_clause");
    group.sample_size(10);
    group.bench_function("where", |b| {
        b.iter(|| {
            let mask = Expr::col("quality")
                .eq_(Expr::LitI(0))
                .and(Expr::col("value").is_nan().not())
                .eval_mask(&bronze)
                .unwrap();
            black_box(bronze.filter_mask(&mask))
        })
    });
    group.bench_function("window", |b| {
        b.iter(|| black_box(assign_window(&filtered, "ts_ms", 15_000).unwrap()))
    });
    group.bench_function("group_by", |b| {
        b.iter(|| {
            black_box(
                group_by(
                    &windowed,
                    &["window", "node", "sensor"],
                    &[AggSpec::new("value", Agg::Mean, "value")],
                )
                .unwrap(),
            )
        })
    });
    group.bench_function("pivot", |b| {
        b.iter(|| {
            black_box(pivot(&grouped, &["window", "node"], "sensor", "value", Agg::Mean).unwrap())
        })
    });
    group.bench_function("join", |b| {
        b.iter(|| black_box(oda_pipeline::ops::join_inner(&pivoted, &ctx, &["node"]).unwrap()))
    });
    group.bench_function("select", |b| {
        b.iter(|| black_box(pivoted.select(&["window", "node", "node_power_w"]).unwrap()))
    });
    group.finish();

    // The composed plan, with the per-stage report printed once.
    let plan = PipelinePlan::new()
        .then(Stage::Where(
            Expr::col("quality")
                .eq_(Expr::LitI(0))
                .and(Expr::col("value").is_nan().not()),
        ))
        .then(Stage::Window {
            ts_col: "ts_ms".into(),
            width_ms: 15_000,
        })
        .then(Stage::GroupBy {
            keys: vec!["window".into(), "node".into(), "sensor".into()],
            aggs: vec![AggSpec::new("value", Agg::Mean, "value")],
        })
        .then(Stage::Pivot {
            index: vec!["window".into(), "node".into()],
            pivot_col: "sensor".into(),
            value_col: "value".into(),
            agg: Agg::Mean,
        })
        .then(Stage::Join {
            right: ctx,
            on: vec!["node".into()],
        });
    let (_, timings) = plan.execute_timed(bronze.clone()).unwrap();
    println!("\n=== F4b: clause cost breakdown ({ROWS} bronze rows) ===");
    let total: f64 = timings.iter().map(|t| t.seconds).sum();
    for t in &timings {
        println!(
            "  {:<9} {:>9.1} ms ({:>4.1}%) -> {:>8} rows",
            t.stage,
            t.seconds * 1e3,
            t.seconds / total * 100.0,
            t.rows_out
        );
    }
    let heavy: f64 = timings
        .iter()
        .filter(|t| matches!(t.stage.as_str(), "GROUP BY" | "PIVOT" | "JOIN"))
        .map(|t| t.seconds)
        .sum();
    println!(
        "  group-by+pivot+join share: {:.1}% (paper: these dominate Bronze->Silver)\n",
        heavy / total * 100.0
    );

    let mut group = c.benchmark_group("f4b_full_plan");
    group.sample_size(10);
    group.bench_function("bronze_to_silver_1M", |b| {
        b.iter(|| black_box(plan.execute(bronze.clone()).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_clauses);
criterion_main!(benches);
