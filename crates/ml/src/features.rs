//! Power-profile featurization.
//!
//! Profiles arrive with different lengths, scales, and gaps ("unknown
//! future data, low-yield features, rare events, and missing data" —
//! §VIII-A). Featurization makes them comparable: gap-fill by linear
//! interpolation, resample to a fixed length, normalize to [0, 1] by
//! the profile's own range, and append shape summary statistics.

/// Number of resampled shape points in a feature vector.
pub const SHAPE_POINTS: usize = 28;
/// Total feature dimension: shape points + 8 summary statistics.
pub const FEATURE_DIM: usize = SHAPE_POINTS + 8;

/// Linearly interpolate interior NaN gaps; leading/trailing NaNs take
/// the nearest finite value. All-NaN input becomes all zeros.
pub fn fill_gaps(samples: &[f64]) -> Vec<f64> {
    let n = samples.len();
    let mut out = samples.to_vec();
    let finite_idx: Vec<usize> = (0..n).filter(|&i| samples[i].is_finite()).collect();
    if finite_idx.is_empty() {
        return vec![0.0; n];
    }
    // Leading and trailing edges take the nearest finite value.
    let first = finite_idx[0];
    let last = finite_idx[finite_idx.len() - 1];
    out[..first].fill(samples[first]);
    out[last + 1..].fill(samples[last]);
    // Interior gaps.
    for w in finite_idx.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b > a + 1 {
            let va = samples[a];
            let vb = samples[b];
            for (i, slot) in out.iter_mut().enumerate().take(b).skip(a + 1) {
                let t = (i - a) as f64 / (b - a) as f64;
                *slot = va + t * (vb - va);
            }
        }
    }
    out
}

/// Resample to `points` values by linear interpolation.
pub fn resample(samples: &[f64], points: usize) -> Vec<f64> {
    assert!(points > 0);
    if samples.is_empty() {
        return vec![0.0; points];
    }
    if samples.len() == 1 {
        return vec![samples[0]; points];
    }
    (0..points)
        .map(|i| {
            let pos = i as f64 * (samples.len() - 1) as f64 / (points - 1).max(1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(samples.len() - 1);
            let t = pos - lo as f64;
            samples[lo] * (1.0 - t) + samples[hi] * t
        })
        .collect()
}

/// Full featurization: gap-fill → resample → peak-normalize → append
/// summary statistics.
///
/// The shape is normalized by the profile's *peak* (not its range):
/// absolute levels across systems cancel, but relative levels survive —
/// a flat medium-load profile stays distinguishable from a flat
/// low-load one. The statistics capture level (mean/peak, trough/peak,
/// coefficient of variation), dynamics (jump rate, crossings, duty
/// cycle), and shape position (peak location).
pub fn featurize(samples: &[f64]) -> Vec<f64> {
    let filled = fill_gaps(samples);
    // Jump rate on the native-resolution signal: resampling aliases
    // high-frequency sawtooths/squares, so measure dynamics first.
    let peak_raw = filled
        .iter()
        .copied()
        .fold(0.0f64, |a, b| a.max(b.abs()))
        .max(1e-9);
    let raw_norm: Vec<f64> = filled.iter().map(|v| v / peak_raw).collect();
    let jump = if raw_norm.len() > 1 {
        raw_norm
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .sum::<f64>()
            / (raw_norm.len() - 1) as f64
    } else {
        0.0
    };
    let crossings = if raw_norm.len() > 1 {
        raw_norm
            .windows(2)
            .filter(|w| (w[0] - 0.7) * (w[1] - 0.7) < 0.0)
            .count() as f64
            / (raw_norm.len() - 1) as f64
    } else {
        0.0
    };

    let shape: Vec<f64> = resample(&raw_norm, SHAPE_POINTS);
    let mean = raw_norm.iter().sum::<f64>() / raw_norm.len().max(1) as f64;
    let var =
        raw_norm.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / raw_norm.len().max(1) as f64;
    let trough = if raw_norm.is_empty() {
        0.0
    } else {
        raw_norm.iter().copied().fold(f64::INFINITY, f64::min)
    };
    let cv = var.sqrt() / mean.abs().max(1e-9);
    // Duty cycle: fraction of time near peak load.
    let duty = raw_norm.iter().filter(|&&v| v > 0.7).count() as f64 / raw_norm.len().max(1) as f64;
    let peak_pos = raw_norm
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i as f64 / raw_norm.len() as f64)
        .unwrap_or(0.0);

    let mut features = shape;
    features.extend([
        mean,
        var.sqrt(),
        jump * 10.0,
        crossings * 10.0,
        trough,
        cv,
        duty,
        peak_pos,
    ]);
    features
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_gaps_interpolates_interior() {
        let filled = fill_gaps(&[1.0, f64::NAN, f64::NAN, 4.0]);
        assert_eq!(filled, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fill_gaps_extends_edges() {
        let filled = fill_gaps(&[f64::NAN, 2.0, f64::NAN]);
        assert_eq!(filled, vec![2.0, 2.0, 2.0]);
        assert_eq!(fill_gaps(&[f64::NAN, f64::NAN]), vec![0.0, 0.0]);
    }

    #[test]
    fn resample_preserves_endpoints() {
        let r = resample(&[0.0, 10.0], 5);
        assert_eq!(r.first(), Some(&0.0));
        assert_eq!(r.last(), Some(&10.0));
        assert_eq!(r[2], 5.0);
        // Upsample and downsample lengths.
        assert_eq!(resample(&[1.0; 100], 7).len(), 7);
        assert_eq!(resample(&[3.0], 4), vec![3.0; 4]);
        assert_eq!(resample(&[], 3), vec![0.0; 3]);
    }

    #[test]
    fn featurize_has_fixed_dim_and_unit_range() {
        for input in [
            vec![1.0, 2.0, 3.0],
            vec![500.0; 100],
            (0..1_000)
                .map(|i| (i as f64 * 0.01).sin())
                .collect::<Vec<_>>(),
        ] {
            let f = featurize(&input);
            assert_eq!(f.len(), FEATURE_DIM);
            for &v in &f[..SHAPE_POINTS] {
                assert!((-1.0..=1.0).contains(&v), "shape point {v} out of range");
            }
            assert!(f.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn scale_invariance() {
        // Same shape at different absolute power levels → same shape features.
        let base: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin() + 2.0).collect();
        let scaled: Vec<f64> = base.iter().map(|v| v * 1_000.0).collect();
        let fa = featurize(&base);
        let fb = featurize(&scaled);
        for (a, b) in fa.iter().zip(&fb) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn jump_rate_separates_square_from_smooth() {
        let square: Vec<f64> = (0..100)
            .map(|i| if (i / 10) % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let smooth: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let jump_sq = featurize(&square)[SHAPE_POINTS + 2];
        let jump_sm = featurize(&smooth)[SHAPE_POINTS + 2];
        assert!(
            jump_sq > 2.0 * jump_sm,
            "square {jump_sq} vs smooth {jump_sm}"
        );
    }
}
